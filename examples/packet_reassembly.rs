//! TCP packet reassembly for content inspection (paper Section 5.4.2).
//!
//! Crafts deliberately out-of-order TCP streams (the attack the paper
//! motivates: a signature split across reordered segments), reassembles
//! them through VPNM with the five-access-per-chunk discipline, and shows
//! the scanner sees each stream fully in order — including a "signature"
//! string that straddles a reordered segment boundary.
//!
//! Run with: `cargo run --release --example packet_reassembly`

use vpnm::apps::reassembly::ReassemblyEngine;
use vpnm::core::{VpnmConfig, VpnmController};
use vpnm::workloads::OutOfOrderSegments;

// Each connection's hole-buffer cell is a fixed (hot) address costing two
// bank accesses per chunk; one bank sustains only R/B requests per cycle,
// so line rate needs the per-flow rate diluted across many concurrent
// connections — as in any real traffic mix.
const CHUNK: usize = 64;
const FLOWS: u32 = 64;
const STREAM_CHUNKS: usize = 64;

fn main() -> Result<(), String> {
    let mem = VpnmController::new(VpnmConfig::paper_optimal(), 99)?;
    let mut engine = ReassemblyEngine::new(mem, FLOWS, 4096, CHUNK);

    // Build one stream per flow; hide a "signature" across a segment
    // boundary in flow 0.
    let mut streams: Vec<Vec<u8>> = (0..FLOWS)
        .map(|f| vpnm::workloads::packets::payload_bytes(f, 0, STREAM_CHUNKS * CHUNK))
        .collect();
    let signature = b"EVIL_SIGNATURE_SPLIT_ACROSS_SEGMENTS";
    let boundary = 4 * CHUNK * 4; // lands on a segment boundary (segments are 4 chunks)
    streams[0][boundary - 16..boundary - 16 + signature.len()].copy_from_slice(signature);

    // Deliver segments out of order (shuffled within 8-segment windows).
    let mut segment_sources: Vec<OutOfOrderSegments> = streams
        .iter()
        .enumerate()
        .map(|(f, s)| OutOfOrderSegments::new(s, 4 * CHUNK, 8, f as u64 + 100))
        .collect();
    let mut total_segments = 0u64;
    loop {
        let mut progressed = false;
        for (f, src) in segment_sources.iter_mut().enumerate() {
            if let Some(seg) = src.next_segment() {
                engine.submit_segment(f as u32, seg.offset, &seg.data);
                total_segments += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    engine.drain();

    // Verify every stream was scanned fully in order.
    for (f, stream) in streams.iter().enumerate() {
        assert_eq!(engine.scanned(f as u32), &stream[..], "flow {f} must be scanned in order");
    }
    // The scanner sees the signature contiguously despite the reordering.
    let scanned0 = engine.scanned(0);
    let found = scanned0.windows(signature.len()).any(|w| w == signature);
    assert!(found, "signature must be visible to an in-order scanner");

    let stats = *engine.stats();
    let cycles = engine.cycles();
    let chunks = stats.chunks_ingested;
    let cycles_per_chunk = cycles as f64 / chunks as f64;
    // Paper: 400 MHz RDRAM, 5 accesses per 64 B chunk → 40 Gbps.
    let gbps = (CHUNK as f64 * 8.0) / cycles_per_chunk * 0.4;
    println!("flows:             {FLOWS}");
    println!("segments ingested: {total_segments} (out of order)");
    println!("chunks:            {chunks}, accesses: {}", stats.accesses);
    println!("stall retries:     {}", stats.stall_retries);
    println!("cycles/chunk:      {cycles_per_chunk:.2} (paper model: 5)");
    println!("throughput:        {gbps:.1} Gbps at 400 MHz (paper claim: 40)");
    println!("signature detected in-order despite reordering ✓");
    Ok(())
}
