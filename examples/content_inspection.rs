//! End-to-end intrusion detection on VPNM: reassembly feeding content
//! inspection — the exact pipeline of paper Section 5.4.2 ("packet
//! reassembly provides a strong front end to effective content
//! inspection"), with both stages' memory traffic going through virtually
//! pipelined controllers.
//!
//! An attacker splits signatures across deliberately reordered TCP
//! segments; the reassembler restores byte order, the inspector's Bloom
//! prefilter flags suspect windows, and the VPNM-resident verification
//! table confirms every real signature with zero false negatives.
//!
//! Run with: `cargo run --release --example content_inspection`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm::apps::inspect::InspectionEngine;
use vpnm::apps::reassembly::ReassemblyEngine;
use vpnm::core::{VpnmConfig, VpnmController};
use vpnm::workloads::OutOfOrderSegments;

const CHUNK: usize = 64;
const FLOWS: u32 = 16;
const STREAM_CHUNKS: usize = 64;

fn main() -> Result<(), String> {
    // signature database: 64 rules of 8 bytes each
    let mut rng = StdRng::seed_from_u64(13);
    let mut signatures = Vec::new();
    for rule in 1u32..=64 {
        let mut s = [0u8; 8];
        rng.fill(&mut s);
        signatures.push((s.to_vec(), rule));
    }

    // streams with signatures planted across segment boundaries
    let mut streams: Vec<Vec<u8>> = (0..FLOWS)
        .map(|f| vpnm::workloads::packets::payload_bytes(f, 3, STREAM_CHUNKS * CHUNK))
        .collect();
    let mut planted = Vec::new(); // (flow, offset, rule)
    for (f, stream) in streams.iter_mut().enumerate() {
        let mut used = std::collections::HashSet::new();
        while used.len() < 3 {
            let idx = rng.gen_range(0..signatures.len());
            // straddle a 4-chunk segment boundary on purpose
            let boundary = (rng.gen_range(1..STREAM_CHUNKS / 4)) * 4 * CHUNK;
            if !used.insert(boundary) {
                continue; // don't overwrite an earlier plant
            }
            let offset = boundary - 4; // 4 bytes before, 4 after the cut
            stream[offset..offset + 8].copy_from_slice(&signatures[idx].0);
            planted.push((f as u32, offset as u64, signatures[idx].1));
        }
    }

    // stage 1: reassembly over VPNM
    let mem1 = VpnmController::new(VpnmConfig::paper_optimal(), 101)?;
    let mut reasm = ReassemblyEngine::new(mem1, FLOWS, 1 << 12, CHUNK);
    for (f, stream) in streams.iter().enumerate() {
        let mut segs = OutOfOrderSegments::new(stream, 4 * CHUNK, 8, 600 + f as u64);
        while let Some(seg) = segs.next_segment() {
            reasm.submit_segment(f as u32, seg.offset, &seg.data);
        }
    }
    reasm.drain();

    // stage 2: inspection over a second VPNM (the verification table)
    let mem2 = VpnmController::new(VpnmConfig::paper_optimal(), 202)?;
    let mut inspector = InspectionEngine::new(mem2, &signatures, 64);
    let mut found = Vec::new();
    for f in 0..FLOWS {
        let scanned = reasm.scanned(f).to_vec();
        assert_eq!(scanned, streams[f as usize], "flow {f} must reassemble in order");
        for m in inspector.scan(&scanned) {
            found.push((f, m.offset, m.rule));
        }
    }

    // every planted signature must be confirmed at its exact offset
    for want in &planted {
        assert!(found.contains(want), "missing planted match {want:?}");
    }
    println!("flows:              {FLOWS} ({STREAM_CHUNKS} chunks each, segments reordered)");
    println!("signature rules:    {}", signatures.len());
    println!("planted matches:    {} — all confirmed at exact offsets ✓", planted.len());
    println!(
        "total matches:      {} (extras are legitimate random collisions, all verified)",
        found.len()
    );
    println!(
        "windows scanned:    {} ({} Bloom-positive -> memory-verified)",
        inspector.windows_scanned(),
        inspector.suspects()
    );
    println!(
        "reassembly:         {:.2} cycles/chunk; inspection: {:.2} cycles/window",
        reasm.cycles() as f64 / reasm.stats().chunks_ingested as f64,
        inspector.cycles() as f64 / inspector.windows_scanned() as f64,
    );
    println!("signatures split across reordered segments cannot evade the scanner ✓");
    Ok(())
}
