//! Packet buffering at line rate on VPNM (paper Section 5.4.1).
//!
//! Stands up a 1024-queue packet buffer where only head/tail *pointers*
//! live in SRAM and every 64-byte cell goes to DRAM through the virtual
//! pipeline. Drives one write + one read per two cycles (the OC-3072
//! pattern) with uniformly random queue choices, then reports sustained
//! throughput, stall counts, and the SRAM budget versus the special-
//! purpose baselines.
//!
//! Run with: `cargo run --release --example packet_buffering`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm::apps::packet_buffer::{BufferError, BufferEvent, VpnmPacketBuffer};
use vpnm::core::VpnmConfig;
use vpnm::workloads::packets::payload_bytes;

const QUEUES: u32 = 1024;
const CELLS_PER_QUEUE: u64 = 1 << 12;
const SLOTS: u64 = 200_000;

fn main() -> Result<(), String> {
    let config = VpnmConfig::paper_optimal();
    let mut buf = VpnmPacketBuffer::new(config, QUEUES, CELLS_PER_QUEUE, 42)?;
    println!(
        "packet buffer: {} queues, pointer SRAM {:.1} KiB, dequeue latency D = {} cycles",
        QUEUES,
        buf.pointer_sram_bytes() as f64 / 1024.0,
        buf.delay()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let mut seqs = vec![0u64; QUEUES as usize]; // next sequence to write, per queue
    let mut expect = vec![0u64; QUEUES as usize]; // next sequence to read, per queue
    let mut delivered = 0u64;
    let mut verified = 0u64;
    let mut rejected = 0u64;

    for slot in 0..SLOTS {
        let event = if slot % 2 == 0 {
            // write slot: enqueue a cell to a random queue
            let q = rng.gen_range(0..QUEUES);
            let seq = seqs[q as usize];
            Some(BufferEvent::Enqueue { queue: q, cell: payload_bytes(q, seq, 64) })
        } else {
            // read slot: dequeue from a random backlogged queue
            (0..8)
                .map(|_| rng.gen_range(0..QUEUES))
                .find(|&q| buf.occupancy(q) > 0)
                .map(|q| BufferEvent::Dequeue { queue: q })
        };
        let is_enq = matches!(event, Some(BufferEvent::Enqueue { .. }));
        let enq_q =
            if let Some(BufferEvent::Enqueue { queue, .. }) = &event { Some(*queue) } else { None };
        match buf.tick(event) {
            Ok(cell) => {
                if is_enq {
                    seqs[enq_q.expect("enqueue has a queue") as usize] += 1;
                }
                if let Some(c) = cell {
                    let want = payload_bytes(c.queue, expect[c.queue as usize], 64);
                    assert_eq!(c.data, want, "FIFO data mismatch on queue {}", c.queue);
                    expect[c.queue as usize] += 1;
                    delivered += 1;
                    verified += 1;
                }
            }
            Err(BufferError::MemoryStall(_)) => rejected += 1,
            Err(BufferError::QueueEmpty | BufferError::QueueFull) => rejected += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    delivered += buf.drain().len() as u64;

    let stats = *buf.stats();
    let utilization = (stats.enqueued + stats.dequeued) as f64 / SLOTS as f64;
    // One cell moves per two slots at full rate; 64 B cells at 1 GHz.
    let gbps = utilization / 2.0 * 64.0 * 8.0;
    println!("slots driven:        {SLOTS}");
    println!("cells enqueued:      {}", stats.enqueued);
    println!("cells delivered:     {delivered} ({verified} payload-verified)");
    println!("memory stalls:       {}", stats.memory_stalls);
    println!("rejected slots:      {rejected}");
    println!("slot utilization:    {:.2}%", utilization * 100.0);
    println!("sustained rate:      {gbps:.0} Gbps-equivalent at 1 GHz (paper target: 160)");
    assert!(gbps > 160.0, "must sustain the OC-3072 target");
    Ok(())
}
