//! Quickstart: the deterministic-latency abstraction in ~60 lines.
//!
//! Builds a VPNM controller, throws a mixed read/write workload at it, and
//! shows that (a) every read completes after exactly `D` cycles, (b) data
//! round-trips, and (c) the merge machinery quietly absorbs redundant
//! reads.
//!
//! Run with: `cargo run --example quickstart`

use vpnm::core::{LineAddr, Request, VpnmConfig, VpnmController};

fn main() -> Result<(), String> {
    // The paper's optimal design point: B=32 banks, Q=64, K=128, R=1.3.
    let config = VpnmConfig::paper_optimal();
    let mut mem = VpnmController::new(config, 0xC0FFEE)?;
    println!(
        "controller ready: D = {} interface cycles (≈ {} ns at 1 GHz)",
        mem.delay(),
        mem.delay()
    );

    // Write a few cells…
    for i in 0..8u64 {
        let out =
            mem.tick(Some(Request::write(LineAddr(0x1000 + i), format!("cell #{i}").into_bytes())));
        assert!(out.accepted());
    }

    // …read them back, including one address three times (redundant reads
    // merge into a single bank access — paper Section 3.4).
    for addr in [0x1000u64, 0x1001, 0x1002, 0x1002, 0x1002, 0x1003] {
        let out = mem.tick(Some(Request::read(LineAddr(addr))));
        assert!(out.accepted());
    }

    // Collect the responses: each arrives exactly D cycles after issue.
    let responses = mem.drain();
    for r in &responses {
        println!(
            "  {} -> {:?} (latency {} cycles)",
            r.addr,
            String::from_utf8_lossy(&r.data[..8.min(r.data.len())]).trim_end_matches('\0'),
            r.latency()
        );
        assert_eq!(r.latency(), mem.delay());
    }

    let m = mem.metrics();
    println!(
        "reads: {} ({} merged), writes: {}, stalls: {}",
        m.reads_accepted,
        m.reads_merged,
        m.writes_accepted,
        m.total_stalls()
    );
    assert_eq!(m.reads_merged, 2, "the repeated address merges twice");
    assert_eq!(m.total_stalls(), 0);
    println!("deterministic latency upheld for all {} reads ✓", responses.len());
    Ok(())
}
