//! Longest-prefix-match route lookup on VPNM — the data-plane-algorithm
//! direction the paper's conclusion points to ("in the future we will
//! explore the potential of mapping other data plane algorithms into
//! DRAM including packet classification…").
//!
//! Builds a multibit trie over a synthetic routing table, loads it into
//! the virtually pipelined memory with **zero** bank-aware planning, and
//! pipelines thousands of dependent trie walks: one memory access per
//! cycle in steady state, every result verified against a software
//! oracle.
//!
//! Run with: `cargo run --release --example route_lookup`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm::apps::lpm::{LpmEngine, RoutePrefix, RouteTable, LEVELS};
use vpnm::core::{VpnmConfig, VpnmController};

fn main() -> Result<(), String> {
    // A synthetic table: a default route, some /8 carriers, and a spread
    // of more-specific prefixes underneath them.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut routes = vec![RoutePrefix { prefix: 0, len: 0, next_hop: 9999 }];
    for carrier in 1u32..=8 {
        routes.push(RoutePrefix { prefix: carrier << 24, len: 8, next_hop: carrier });
    }
    for _ in 0..400 {
        let len = *[16u8, 24, 32].get(rng.gen_range(0..3)).expect("in range");
        let carrier = rng.gen_range(1u32..=8) << 24;
        let rest = rng.gen::<u32>() & 0x00FF_FFFF;
        let mask = if len == 32 { u32::MAX } else { !((1u32 << (32 - len)) - 1) };
        routes.push(RoutePrefix {
            prefix: (carrier | rest) & mask,
            len,
            next_hop: rng.gen_range(10..5000),
        });
    }
    let table = RouteTable::from_routes(&routes);
    println!("routing table: {} routes -> {} trie nodes", routes.len(), table.num_nodes());

    let mem = VpnmController::new(VpnmConfig::paper_optimal(), 4242)?;
    let mut engine = LpmEngine::new(mem, table, 64);
    println!("trie loaded into VPNM (64 B cells, no bank-aware layout)");

    // Pipeline a large batch of lookups.
    let queries: Vec<u32> = (0..20_000).map(|_| rng.gen()).collect();
    let c0 = engine.cycles();
    let results = engine.lookup_batch(&queries);
    let cycles = engine.cycles() - c0;

    // Verify every answer against the software oracle.
    for (q, got) in queries.iter().zip(&results) {
        assert_eq!(*got, engine.table().lookup(*q), "query {q:#010x}");
    }

    let accesses = engine.accesses();
    let per_lookup = cycles as f64 / queries.len() as f64;
    println!("lookups:        {}", queries.len());
    println!(
        "trie accesses:  {accesses} ({:.2} per lookup, max {LEVELS})",
        accesses as f64 / queries.len() as f64
    );
    println!("cycles:         {cycles} ({per_lookup:.2} per lookup)");
    println!("stall retries:  {}", engine.stall_retries());
    println!(
        "lookup rate:    {:.0} M lookups/s at 1 GHz — all answers oracle-verified ✓",
        1000.0 / per_lookup
    );
    assert!(per_lookup < LEVELS as f64 + 1.0, "must sustain ~1 access/cycle");
    Ok(())
}
