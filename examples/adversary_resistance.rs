//! Adversarial resistance (paper Sections 3.2, 4, 5).
//!
//! Three attackers against two bank mappings:
//!
//! 1. a **stride** attacker (classic bank-conflict exploit),
//! 2. a **replay** attacker probing with mutated repeats,
//! 3. an **omniscient** attacker that somehow knows the hash key.
//!
//! Against conventional low-bit banking the stride attack wrecks
//! throughput; against VPNM's keyed universal hash, stride and replay
//! perform no better than random traffic, and only the (unrealistic)
//! leaked-key attacker gets through — which is why the paper prescribes
//! re-keying if repeated stalls are ever observed.
//!
//! Run with: `cargo run --release --example adversary_resistance`

use vpnm::core::{HashKind, LineAddr, Request, VpnmConfig, VpnmController};
use vpnm::hash::BankHasher;
use vpnm::workloads::generators::AddressGenerator;
use vpnm::workloads::{OmniscientAdversary, ReplayAdversary, StrideAdversary, UniformAddresses};

const REQUESTS: u64 = 50_000;
const ADDR_SPACE: u64 = 1 << 24;

fn run<G: AddressGenerator>(mut mem: VpnmController, gen: &mut G) -> (u64, f64) {
    let mut stalls = 0u64;
    for _ in 0..REQUESTS {
        let out = mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
        stalls += u64::from(!out.accepted());
    }
    (stalls, stalls as f64 / REQUESTS as f64)
}

fn controller(hash: HashKind, seed: u64) -> VpnmController {
    // A deliberately tight configuration so differences show up within
    // 50k requests (the paper-scale config stalls ~once per 1e13).
    let config = VpnmConfig {
        banks: 16,
        bank_latency: 10,
        queue_entries: 8,
        storage_rows: 16,
        bus_ratio: 1.2,
        addr_bits: 24,
        ..VpnmConfig::paper_optimal()
    }
    .with_hash(hash);
    VpnmController::new(config, seed).expect("valid config")
}

fn main() {
    println!("{REQUESTS} read requests per scenario; stall fraction reported\n");
    println!("{:<34} {:>10} {:>10}", "scenario", "stalls", "rate");

    // Baseline: uniform random traffic on the universal hash.
    let (s, r) = run(controller(HashKind::H3, 1), &mut UniformAddresses::new(ADDR_SPACE, 11));
    println!("{:<34} {:>10} {:>10.5}", "uniform traffic / H3", s, r);
    let baseline = s;

    // Stride attack vs. conventional banking: catastrophic.
    let (s, r) = run(controller(HashKind::LowBits, 2), &mut StrideAdversary::new(16, ADDR_SPACE));
    println!("{:<34} {:>10} {:>10.5}", "stride attack / low-bit banking", s, r);
    assert!(s > REQUESTS / 4, "stride must devastate low-bit banking");

    // Stride attack vs. VPNM: no better than random.
    let (s, r) = run(controller(HashKind::H3, 3), &mut StrideAdversary::new(16, ADDR_SPACE));
    println!("{:<34} {:>10} {:>10.5}", "stride attack / VPNM (H3)", s, r);
    assert!(
        s <= baseline * 3 + 30,
        "stride vs H3 ({s}) must look like random traffic ({baseline})"
    );

    // Replay attack vs. VPNM: still no better than random.
    let (s, r) =
        run(controller(HashKind::H3, 4), &mut ReplayAdversary::new(512, ADDR_SPACE, 8, 12));
    println!("{:<34} {:>10} {:>10.5}", "replay attack / VPNM (H3)", s, r);
    assert!(s <= baseline * 3 + 30, "replay vs H3 ({s}) must look random");

    // Leaked key: the omniscient attacker aims everything at bank 0 with
    // distinct addresses (merging can't help) — stalls galore.
    let mem = controller(HashKind::H3, 5);
    let hash = mem.hash().clone();
    let mut omni = OmniscientAdversary::new(ADDR_SPACE, 0, 4096, |a| hash.bank_of(a));
    let (s, r) = run(mem, &mut omni);
    println!("{:<34} {:>10} {:>10.5}", "LEAKED KEY / VPNM (H3)", s, r);
    assert!(s > REQUESTS / 4, "a leaked key must defeat the scheme ({s})");

    // …and re-keying (a fresh seed) restores random-chance behaviour.
    let (s, r) = run(controller(HashKind::H3, 999), &mut omni);
    println!("{:<34} {:>10} {:>10.5}", "same attack after re-key", s, r);
    assert!(s <= baseline * 3 + 30, "re-keying must neutralize the attack ({s})");

    println!("\nuniversal hashing + latency normalization hold: only a leaked key wins ✓");
}
