//! Design-space exploration (paper Section 5.3, Figure 7 / Table 2).
//!
//! Sweeps `(B, Q, K, R)` configurations through the MTS analyses and the
//! calibrated hardware model, prints the Pareto frontier of Mean Time to
//! Stall versus controller area, and picks the cheapest design meeting
//! the paper's "one second / one hour / one day" MTS budgets at 1 GHz.
//!
//! Run with: `cargo run --release --example design_space`

use vpnm::analysis::design_space::{cheapest_at_least, pareto_frontier};
use vpnm::analysis::{sweep, SweepConfig};

fn main() {
    let config = SweepConfig::paper_figure7();
    println!("sweeping {} configurations …", config.len());
    let points = sweep(&config);

    let frontier = pareto_frontier(&points);
    println!("\nPareto frontier (MTS vs. total controller area):");
    println!(
        "{:>8} {:>6} {:>6} {:>6} {:>5} {:>12} {:>10}",
        "area mm²", "B", "Q", "K", "R", "MTS cycles", "energy nJ"
    );
    for p in frontier.iter().filter(|p| p.mts_total > 1e3) {
        println!(
            "{:>8.1} {:>6} {:>6} {:>6} {:>5.1} {:>12.2e} {:>10.1}",
            p.area_mm2,
            p.banks,
            p.queue_entries,
            p.storage_rows,
            p.bus_ratio,
            p.mts_total,
            p.energy_nj
        );
    }

    // The paper's MTS budgets at an aggressive 1 GHz clock.
    println!("\ncheapest designs meeting the paper's MTS budgets:");
    for (label, budget) in
        [("1 second (1e9)", 1e9), ("1 hour (3.6e12)", 3.6e12), ("1 day (8.6e13)", 8.64e13)]
    {
        match cheapest_at_least(&points, budget) {
            Some(p) => println!(
                "  {label:<18} -> B={} Q={} K={} R={} : {:.1} mm², MTS {:.2e}",
                p.banks, p.queue_entries, p.storage_rows, p.bus_ratio, p.area_mm2, p.mts_total
            ),
            None => println!("  {label:<18} -> not reachable in this grid"),
        }
    }

    // Paper headline: B = 32 is the knee; fewer banks cannot reach a
    // useful MTS at any K/Q in the grid.
    let best_16: f64 =
        points.iter().filter(|p| p.banks == 16).map(|p| p.mts_total).fold(0.0, f64::max);
    let best_32: f64 =
        points.iter().filter(|p| p.banks == 32).map(|p| p.mts_total).fold(0.0, f64::max);
    println!("\nbest MTS with B=16: {best_16:.2e}   with B=32: {best_32:.2e}");
    assert!(best_32 > best_16 * 1e3, "B=32 must dominate (paper Section 5.2)");
}
