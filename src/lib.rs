//! # Virtually Pipelined Network Memory — workspace facade
//!
//! A full reproduction of Agrawal & Sherwood, *"Virtually Pipelined
//! Network Memory"* (MICRO-39, 2006): a memory controller that presents
//! banked commodity DRAM as a flat pipeline with **fully deterministic
//! latency** under any access pattern, by combining universal-hash bank
//! randomization, per-bank latency-normalizing queues, and redundant-
//! request merging.
//!
//! This crate re-exports every subsystem of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `vpnm-core` | the VPNM controller, configs, the [`core::PipelinedMemory`] abstraction |
//! | [`dram`] | `vpnm-dram` | banked DRAM device simulator |
//! | [`hash`] | `vpnm-hash` | universal hash families, GF(2) linear algebra |
//! | [`sim`] | `vpnm-sim` | clocks, dual-rate domains, statistics, tracing |
//! | [`analysis`] | `vpnm-analysis` | mean-time-to-stall mathematics, design-space search |
//! | [`hw`] | `vpnm-hw` | area/energy model (0.13 µm calibration) |
//! | [`workloads`] | `vpnm-workloads` | traffic generators and adversaries |
//! | [`apps`] | `vpnm-apps` | packet buffering (+ baselines) and TCP reassembly |
//!
//! # Quick start
//!
//! ```
//! use vpnm::core::{Request, LineAddr, VpnmConfig, VpnmController};
//!
//! let mut mem = VpnmController::new(VpnmConfig::small_test(), 7)?;
//! mem.tick(Some(Request::write(LineAddr(1), vec![42])));
//! mem.tick(Some(Request::read(LineAddr(1))));
//! let responses = mem.drain();
//! assert_eq!(responses[0].data[0], 42);
//! assert_eq!(responses[0].latency(), mem.delay());
//! # Ok::<(), String>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/vpnm-bench` for the
//! binaries that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use vpnm_analysis as analysis;
pub use vpnm_apps as apps;
pub use vpnm_core as core;
pub use vpnm_dram as dram;
pub use vpnm_hash as hash;
pub use vpnm_hw as hw;
pub use vpnm_sim as sim;
pub use vpnm_workloads as workloads;
