//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion 0.5 the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `group.throughput(Throughput::Elements(..))`, `bench_function` with
//! `&str` or [`BenchmarkId`] names, and `Bencher::{iter, iter_batched}` —
//! with real wall-clock measurement (median of timed batches) printed in
//! a compact one-line-per-benchmark format.
//!
//! It has no statistical regression machinery; the goal is honest
//! mean-time and throughput numbers so perf trajectories can be tracked
//! from `BENCH_*.json` artifacts, not criterion's full HTML reporting.
//!
//! Environment knobs: `BENCH_MEASURE_MS` (per-benchmark measurement
//! budget, default 300) and `BENCH_WARMUP_MS` (default 100).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per routine invocation.
    Elements(u64),
    /// `n` bytes processed per routine invocation.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; advisory only in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches.
    SmallInput,
    /// Large per-iteration inputs; one input per measured call.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A parameterized benchmark name, e.g. `from_parameter(32)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark name from a function name plus parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Benchmark name that is just the parameter's `Display` form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One completed measurement, exposed so harnesses can export JSON.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` path.
    pub id: String,
    /// Median wall-clock time per routine invocation, in nanoseconds.
    pub ns_per_iter: f64,
    /// Configured throughput denominator, if any.
    pub throughput: Option<u64>,
    /// Elements (or bytes) per second, when throughput was configured.
    pub per_second: Option<f64>,
}

/// The benchmark driver.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
    /// Every measurement this driver has completed, in run order.
    pub measurements: Vec<Measurement>,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: env_ms("BENCH_MEASURE_MS", 300),
            warmup: env_ms("BENCH_WARMUP_MS", 100),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Compatibility no-op (this shim has no CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { crit: self, name: name.into(), throughput: None }
    }

    /// Benchmarks `routine` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup { crit: self, name: String::new(), throughput: None };
        group.bench_function(id, routine);
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup: repeatedly invoke the routine until the warmup budget
        // elapses, so caches/branch predictors settle and one-time lazy
        // init is excluded from measurement.
        let warm_deadline = Instant::now() + self.warmup;
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            b.total = Duration::ZERO;
            b.iters = 0;
            routine(&mut b);
        }

        // Measurement: collect one ns/iter sample per routine() call until
        // the budget elapses, then report the median sample. The median is
        // robust to scheduler-noise bursts that would inflate a plain mean
        // (and distort ratios between benchmarks measured minutes apart).
        let deadline = Instant::now() + self.measure;
        let mut samples: Vec<f64> = Vec::new();
        loop {
            b.total = Duration::ZERO;
            b.iters = 0;
            routine(&mut b);
            if b.iters > 0 {
                samples.push(b.total.as_nanos() as f64 / b.iters as f64);
            }
            if Instant::now() >= deadline && !samples.is_empty() {
                break;
            }
        }

        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let ns_per_iter = samples[samples.len() / 2];
        let (denom, per_second) = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / ns_per_iter;
                (Some(n), Some(rate))
            }
            None => (None, None),
        };
        match per_second {
            Some(rate) => {
                println!("bench: {id:<50} {:>12.1} ns/iter {:>14.0} elem/s", ns_per_iter, rate)
            }
            None => println!("bench: {id:<50} {:>12.1} ns/iter", ns_per_iter),
        }
        self.measurements.push(Measurement { id, ns_per_iter, throughput: denom, per_second });
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-invocation work amount used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Compatibility no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.crit.measure = d;
        self
    }

    /// Benchmarks `routine` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() { id.id } else { format!("{}/{}", self.name, id.id) };
        let throughput = self.throughput;
        self.crit.run_one(full, throughput, routine);
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Times the benchmark routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // A fixed inner batch keeps timer overhead negligible relative to
        // the routine for all but sub-nanosecond bodies.
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += BATCH;
    }

    /// Times `routine` on inputs built by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        const BATCH: u64 = 4;
        for _ in 0..BATCH {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += BATCH;
    }
}

/// Prevents the optimizer from eliding a value; re-export shape matches
/// criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("BENCH_MEASURE_MS", "5");
        std::env::set_var("BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0u64..100).sum::<u64>());
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
        assert_eq!(c.measurements.len(), 2);
        assert_eq!(c.measurements[0].id, "demo/sum");
        assert_eq!(c.measurements[1].id, "demo/7");
        assert!(c.measurements[0].ns_per_iter > 0.0);
        assert!(c.measurements[0].per_second.unwrap() > 0.0);
        std::env::remove_var("BENCH_MEASURE_MS");
        std::env::remove_var("BENCH_WARMUP_MS");
    }
}
