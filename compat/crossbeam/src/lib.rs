//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` + `Scope::spawn` for
//! fork-join parallelism over borrowed data. Since Rust 1.63,
//! `std::thread::scope` provides the same guarantee (all spawned threads
//! join before the closure returns, so borrows of stack data are sound),
//! so this shim wraps it behind crossbeam's 0.8 API shape: `spawn` passes
//! an (unused) `&Scope` argument, and `scope` returns a `Result` —
//! always `Ok` here because the std implementation resumes unwinding of
//! child panics in the parent instead of collecting them.

use std::marker::PhantomData;
use std::thread;

/// Error type for [`scope`]; never actually produced by this shim.
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// A scope for spawning threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` for
    /// API compatibility with crossbeam (callers in this workspace
    /// ignore it).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        let handle = inner_scope.spawn(move || {
            let scope = Scope { inner: inner_scope };
            f(&scope)
        });
        ScopedJoinHandle { inner: handle, _marker: PhantomData }
    }
}

/// Creates a scope in which threads can borrow non-`'static` data.
///
/// All threads spawned within the scope are joined before this returns.
/// Always returns `Ok`: child panics propagate by unwinding the parent
/// (std semantics) rather than being collected into the `Err` variant.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| {
        let scope = Scope { inner: s };
        f(&scope)
    }))
}

/// `crossbeam::thread` module alias, mirroring the real crate layout.
pub mod thread_mod {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn fork_join_over_borrowed_data() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mid = data.len() / 2;
        let (lo, hi) = data.split_at(mid);
        let total = super::scope(|scope| {
            let a = scope.spawn(|_| lo.iter().sum::<u64>());
            let b = scope.spawn(|_| hi.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .expect("scope");
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
