//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest 1.x the workspace uses: the [`Strategy`] trait
//! with `prop_map`, [`Just`], [`any`], integer-range and tuple strategies,
//! `proptest::collection::vec`, `proptest::option::of`,
//! `proptest::sample::subsequence`, the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros, and `ProptestConfig`.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded
//! from the test's name, overridable count via `PROPTEST_CASES`).
//! Failing inputs are reported with their `Debug` form. Unlike real
//! proptest there is **no shrinking** — the first failing input is
//! reported as-is — and no persistence of failure seeds. For a CI gate
//! that is a reporting-quality difference, not a soundness one.

// Lets this crate's own tests (and macro expansions that spell out
// `proptest::...`) refer to the crate by its public name.
extern crate self as proptest;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values of type `Self::Value`.
///
/// Object-safe core (`new_value`) plus sized combinators, mirroring the
/// parts of proptest's `Strategy` the workspace calls.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values satisfying `f`; cases whose draws fail the filter
    /// are rejected and retried (bounded by the runner's reject budget).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn new_value(&self, rng: &mut StdRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy yielding a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`]. Draws are retried locally (up to a
/// bound) until the predicate passes.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive draws", self.whence);
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// Internal strategy combinators referenced by macro expansions.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Weighted union over type-erased arms; produced by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element` values; produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }

    /// Generates `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Inclusive bounds on subsequence length.
    #[derive(Debug, Clone, Copy)]
    pub struct SubseqSize {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SubseqSize {
        fn from(n: usize) -> Self {
            SubseqSize { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SubseqSize {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SubseqSize { lo: r.start, hi: r.end - 1 }
        }
    }

    /// Strategy produced by [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        size: SubseqSize,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<T> {
            let k = rng.gen_range(self.size.lo..=self.size.hi.min(self.values.len()));
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            idx.as_mut_slice().shuffle(rng);
            idx.truncate(k);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// Generates order-preserving subsequences of `values` whose length
    /// falls in `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SubseqSize>,
    ) -> SubsequenceStrategy<T> {
        let size = size.into();
        assert!(size.lo <= values.len(), "subsequence size exceeds source length");
        SubsequenceStrategy { values, size }
    }
}

/// Test-runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-block configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            Config { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's input does not satisfy the test's assumptions;
        /// drawn again without counting against `cases`.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the `Fail` variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the `Reject` variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type the generated test closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the fully qualified test name: stable across runs
        // and processes, distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` inputs drawn from `strategy`.
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing or
    /// panicking input, reporting the input's `Debug` form. Rejections
    /// (`prop_assume!`) retry with fresh input, within a budget.
    pub fn run_cases<S, F>(config: &Config, name: &str, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut rng = StdRng::seed_from_u64(seed_for(name));
        let reject_budget = 64 * u64::from(config.cases).max(1024);
        let mut rejects: u64 = 0;
        let mut passed: u32 = 0;
        while passed < config.cases {
            let value = strategy.new_value(&mut rng);
            let desc = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    if rejects > reject_budget {
                        panic!(
                            "{name}: too many rejected cases ({rejects}) — \
                             assumptions too strict for this generator"
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "{name}: property failed after {passed} passing case(s)\n\
                         input: {desc}\n{msg}"
                    );
                }
                Err(payload) => {
                    eprintln!("{name}: panic on input: {desc} (after {passed} passing case(s))");
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            @cfg(<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(@cfg($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body without panicking the
/// runner (the failing input is reported instead).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
}

/// Rejects the current case (retried with fresh input) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses among several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Read(u8),
        Skip,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Read),
            1 => Just(Op::Skip),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds; tuples compose.
        #[test]
        fn ranges_and_tuples(a in 3u32..17, (b, c) in (any::<u16>(), 1u64..=4)) {
            prop_assert!((3..17).contains(&a));
            let _ = b;
            prop_assert!((1..=4).contains(&c));
        }

        /// Vec sizes respect bounds; assume retries work.
        #[test]
        fn vecs_and_assume(v in proptest::collection::vec(op(), 1..50)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 50);
        }

        /// Subsequences preserve relative order.
        #[test]
        fn subsequence_ordered(s in proptest::sample::subsequence((0usize..20).collect::<Vec<_>>(), 10)) {
            prop_assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            prop_assert_eq!(s, sorted);
        }

        /// Option strategy produces both variants over enough draws.
        #[test]
        fn options_mix(xs in proptest::collection::vec(proptest::option::of(0u32..10), 64..65)) {
            let somes = xs.iter().filter(|x| x.is_some()).count();
            prop_assert!(somes > 0 && somes < xs.len());
        }
    }

    #[test]
    fn failing_property_panics_with_input() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &ProptestConfig::with_cases(16),
                "doc::always_fails",
                &(0u32..10),
                |v| {
                    prop_assert!(v >= 10, "v was {}", v);
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("input:"), "{msg}");
    }
}
