//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements — API-compatibly — the subset of `rand` 0.8 that the VPNM
//! workspace actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`rngs::StdRng`] (xoshiro256++ behind the same construction API), and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed, which
//! is all the simulator requires; no cryptographic claims are made.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed (splitmix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`; `high` exclusive.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`; `high` inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_exclusive(rng, low, high)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over the type's domain, or
    /// `[0,1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1], got {p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    #[inline]
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded per `rand`'s `StdRng` construction API.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it the way
            // the reference implementation recommends.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u32..=8);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_and_shuffle() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 9];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        v.as_mut_slice().shuffle(&mut r);
        assert_ne!(v, orig);
        v.sort_unstable();
        assert_eq!(v, orig);
    }

    #[test]
    fn float_gen_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
