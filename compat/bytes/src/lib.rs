//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes` 1.x this workspace uses: the
//! cheaply-cloneable immutable byte container [`Bytes`] with
//! `From<Vec<u8>>`, [`Bytes::copy_from_slice`], `Deref<Target = [u8]>`,
//! slicing, and equality against byte slices and `Vec<u8>`. Backed by an
//! `Arc<[u8]>` plus a window, so `clone()` is a reference-count bump — the
//! property the simulator's zero-allocation data path relies on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::ptr::NonNull;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
///
/// Stored as a raw view pointer + length plus an optional owning
/// `Arc<[u8]>` keeping the allocation alive — 32 bytes total, with
/// `as_slice` a single pointer reconstruction. Views of `'static` data
/// (and empty views) have no owner, so cloning or dropping them never
/// touches a reference count — the property the simulator's shared
/// all-zeroes DRAM cell relies on.
pub struct Bytes {
    /// First byte of the view: into `owner`'s allocation when `owner` is
    /// `Some`, into `'static` data (or dangling, when `len == 0`)
    /// otherwise. The allocation outlives the view either way, which is
    /// what makes `as_slice` sound. `NonNull` so `Option<Bytes>` stays 32
    /// bytes via the pointer niche.
    ptr: NonNull<u8>,
    len: usize,
    owner: Option<Arc<[u8]>>,
}

// SAFETY: `Bytes` is an immutable view whose backing memory is either
// `'static` or owned by the `Arc` it carries; both are safe to share and
// send across threads.
unsafe impl Send for Bytes {}
unsafe impl Sync for Bytes {}

impl Bytes {
    /// Creates a new empty `Bytes` (no allocation).
    #[inline]
    pub const fn new() -> Self {
        Bytes { ptr: NonNull::dangling(), len: 0, owner: None }
    }

    /// Creates `Bytes` by copying `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates `Bytes` from a static slice without copying. Clones of the
    /// result never touch a reference count.
    #[inline]
    pub const fn from_static(data: &'static [u8]) -> Self {
        // SAFETY: a slice's data pointer is never null.
        let ptr = unsafe { NonNull::new_unchecked(data.as_ptr().cast_mut()) };
        Bytes { ptr, len: data.len(), owner: None }
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-view of `self` for the given range (zero-copy; bumps
    /// the reference count).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len;
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds: {begin}..{end} of {len}");
        // SAFETY: `begin <= self.len`, so the offset stays inside (or one
        // past the end of) the backing allocation.
        let ptr = unsafe { self.ptr.add(begin) };
        Bytes { ptr, len: end - begin, owner: self.owner.clone() }
    }

    /// The bytes as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr..ptr + len` is inside the backing allocation (see
        // the field invariant), which lives at least as long as `self`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Copies the view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Clone for Bytes {
    #[inline]
    fn clone(&self) -> Self {
        Bytes { ptr: self.ptr, len: self.len, owner: self.owner.clone() }
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from(v.into_boxed_slice())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let owner: Arc<[u8]> = Arc::from(b);
        // SAFETY: an `Arc<[u8]>`'s data pointer is never null, and the
        // heap allocation it points into is stable across moves of the
        // `Arc` handle itself.
        let ptr = unsafe { NonNull::new_unchecked(owner.as_ptr().cast_mut()) };
        Bytes { ptr, len: owner.len(), owner: Some(owner) }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], b);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b[1], 2);
        let c = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b, c);
    }

    #[test]
    fn clone_is_shallow_and_slice_windows() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
        let s = b.slice(2..5);
        assert_eq!(s, [2u8, 3, 4]);
        assert_eq!(s.slice(1..), [3u8, 4]);
    }

    #[test]
    fn from_static_is_zero_copy() {
        static DATA: [u8; 4] = [9u8, 8, 7, 6];
        let b = Bytes::from_static(&DATA);
        assert_eq!(b.as_slice().as_ptr(), DATA.as_ptr());
        let c = b.clone();
        assert_eq!(c.as_slice().as_ptr(), DATA.as_ptr());
        assert_eq!(c.slice(1..3), [8u8, 7]);
    }

    #[test]
    fn layout_is_32_bytes() {
        // The simulator moves `Bytes` through grant/playback/response
        // structs every cycle; the compact layout is load-bearing.
        assert_eq!(std::mem::size_of::<Bytes>(), 32);
        assert_eq!(std::mem::size_of::<Option<Bytes>>(), 32, "niche in `owner`'s Arc");
    }

    #[test]
    fn empty_is_allocation_free() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e, Vec::<u8>::new());
        let d = Bytes::default();
        assert_eq!(e, d);
    }
}
