//! Property-based integration tests: for *arbitrary* request streams, the
//! VPNM controller is observationally equivalent to the ideal pipelined
//! memory (whenever it accepts), upholds the constant-latency invariant,
//! and conserves requests.

use proptest::prelude::*;
use vpnm::core::{IdealMemory, LineAddr, PipelinedMemory, Request, VpnmConfig, VpnmController};

#[derive(Debug, Clone)]
enum Op {
    Read(u16),
    Write(u16, u8),
    Idle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u16>().prop_map(Op::Read),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        1 => Just(Op::Idle),
    ]
}

fn to_request(op: &Op) -> Option<Request> {
    match op {
        Op::Read(a) => Some(Request::Read { addr: LineAddr(u64::from(*a)) }),
        Op::Write(a, v) => Some(Request::write(LineAddr(u64::from(*a)), vec![*v])),
        Op::Idle => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observational equivalence with the perfect pipeline on accepted
    /// streams, for arbitrary interleavings of reads, writes, and idles.
    #[test]
    fn vpnm_matches_ideal_on_arbitrary_streams(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut vpnm = VpnmController::new(VpnmConfig::test_roomy(), 42).unwrap();
        let mut ideal = IdealMemory::new(vpnm.delay(), 8);
        let mut v_rs = Vec::new();
        let mut i_rs = Vec::new();
        for op in &ops {
            let req = to_request(op);
            let out = vpnm.tick(req.clone());
            // test_roomy at this scale should never stall; if it ever
            // does, skip the comparison for that request on both sides.
            prop_assume!(out.accepted());
            v_rs.extend(out.response);
            i_rs.extend(ideal.tick(req).response);
        }
        while vpnm.outstanding() > 0 || ideal.outstanding() > 0 {
            v_rs.extend(vpnm.tick(None).response);
            i_rs.extend(ideal.tick(None).response);
        }
        prop_assert_eq!(v_rs.len(), i_rs.len());
        for (v, i) in v_rs.iter().zip(&i_rs) {
            prop_assert_eq!(v.addr, i.addr);
            prop_assert_eq!(v.completed_at, i.completed_at);
            prop_assert_eq!(&v.data[..1], &i.data[..1]);
        }
    }

    /// Conservation: reads accepted == responses delivered, each at
    /// exactly D.
    #[test]
    fn reads_conserved_with_constant_latency(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut mem = VpnmController::new(VpnmConfig::small_test(), 7).unwrap();
        let d = mem.delay();
        let mut accepted_reads = 0u64;
        let mut responses = 0u64;
        for op in &ops {
            let is_read = matches!(op, Op::Read(_));
            let out = mem.tick(to_request(op));
            if out.accepted() && is_read {
                accepted_reads += 1;
            }
            if let Some(r) = out.response {
                prop_assert_eq!(r.latency(), d);
                responses += 1;
            }
        }
        responses += mem.drain().len() as u64;
        prop_assert_eq!(accepted_reads, responses);
        prop_assert_eq!(mem.metrics().deadline_misses, 0);
    }

    /// Read-your-writes: after quiescence, reading any written address
    /// returns the last written value.
    #[test]
    fn read_your_writes_after_quiescence(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60),
    ) {
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 3).unwrap();
        let mut last = std::collections::HashMap::new();
        for (a, v) in &writes {
            let out = mem.tick(Some(Request::write(LineAddr(u64::from(*a)), vec![*v])));
            prop_assume!(out.accepted());
            last.insert(u64::from(*a), *v);
        }
        let mut expected = Vec::new();
        for (&a, &v) in &last {
            let out = mem.tick(Some(Request::Read { addr: LineAddr(a) }));
            prop_assume!(out.accepted());
            expected.push((a, v));
            if let Some(r) = out.response {
                let want = last[&r.addr.0];
                prop_assert_eq!(r.data[0], want);
            }
        }
        for r in mem.drain() {
            let want = last[&r.addr.0];
            prop_assert_eq!(r.data[0], want);
        }
    }
}
