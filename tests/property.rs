//! Property-based integration tests: for *arbitrary* request streams, the
//! VPNM controller is observationally equivalent to the ideal pipelined
//! memory (whenever it accepts), upholds the constant-latency invariant,
//! and conserves requests.

//! The fabric layer gets the same treatment: the channel-select stage
//! composed with the per-channel address carve must be a bijection over
//! the whole address space (no aliasing, no lost cells), and uniform
//! traffic must spread over the channels within binomial bounds.

use proptest::prelude::*;
use vpnm::core::fabric::{ChannelSelect, FabricConfig};
use vpnm::core::{
    IdealMemory, LineAddr, PipelinedMemory, Request, VpnmConfig, VpnmController, VpnmFabric,
};
use vpnm::hash::channel::ChannelSelector;

#[derive(Debug, Clone)]
enum Op {
    Read(u16),
    Write(u16, u8),
    Idle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u16>().prop_map(Op::Read),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        1 => Just(Op::Idle),
    ]
}

fn to_request(op: &Op) -> Option<Request> {
    match op {
        Op::Read(a) => Some(Request::read(LineAddr(u64::from(*a)))),
        Op::Write(a, v) => Some(Request::write(LineAddr(u64::from(*a)), vec![*v])),
        Op::Idle => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observational equivalence with the perfect pipeline on accepted
    /// streams, for arbitrary interleavings of reads, writes, and idles.
    #[test]
    fn vpnm_matches_ideal_on_arbitrary_streams(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut vpnm = VpnmController::new(VpnmConfig::test_roomy(), 42).unwrap();
        let mut ideal = IdealMemory::new(vpnm.delay(), 8);
        let mut v_rs = Vec::new();
        let mut i_rs = Vec::new();
        for op in &ops {
            let req = to_request(op);
            let out = vpnm.tick(req.clone());
            // test_roomy at this scale should never stall; if it ever
            // does, skip the comparison for that request on both sides.
            prop_assume!(out.accepted());
            v_rs.extend(out.response);
            i_rs.extend(ideal.tick(req).response);
        }
        while vpnm.outstanding() > 0 || ideal.outstanding() > 0 {
            v_rs.extend(vpnm.tick(None).response);
            i_rs.extend(ideal.tick(None).response);
        }
        prop_assert_eq!(v_rs.len(), i_rs.len());
        for (v, i) in v_rs.iter().zip(&i_rs) {
            prop_assert_eq!(v.addr, i.addr);
            prop_assert_eq!(v.completed_at, i.completed_at);
            prop_assert_eq!(&v.data[..1], &i.data[..1]);
        }
    }

    /// Conservation: reads accepted == responses delivered, each at
    /// exactly D.
    #[test]
    fn reads_conserved_with_constant_latency(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut mem = VpnmController::new(VpnmConfig::small_test(), 7).unwrap();
        let d = mem.delay();
        let mut accepted_reads = 0u64;
        let mut responses = 0u64;
        for op in &ops {
            let is_read = matches!(op, Op::Read(_));
            let out = mem.tick(to_request(op));
            if out.accepted() && is_read {
                accepted_reads += 1;
            }
            if let Some(r) = out.response {
                prop_assert_eq!(r.latency(), d);
                responses += 1;
            }
        }
        responses += mem.drain().len() as u64;
        prop_assert_eq!(accepted_reads, responses);
        prop_assert_eq!(mem.metrics().deadline_misses, 0);
    }

    /// The channel-select stage is a bijection: `route` maps the full
    /// `2^addr_bits` space onto distinct `(channel, local)` pairs with
    /// `local` inside the carved per-channel space, and `unroute` inverts
    /// it exactly — for every select policy, geometry and key.
    #[test]
    fn channel_routing_is_a_bijection(
        seed in any::<u64>(),
        addr_bits in 4u32..=12,
        channel_bits in 0u32..=3,
    ) {
        prop_assume!(channel_bits < addr_bits);
        for kind in [ChannelSelect::LowBits, ChannelSelect::HighBits, ChannelSelect::UniversalHash] {
            let sel = ChannelSelector::new(kind, addr_bits, channel_bits, seed).unwrap();
            let local_space = 1u64 << sel.local_bits();
            let mut seen = vec![false; 1 << addr_bits];
            for addr in 0..(1u64 << addr_bits) {
                let (channel, local) = sel.route(addr);
                prop_assert!(channel < sel.channels());
                prop_assert!(local < local_space, "{kind:?}: local {local} escapes the carve");
                let slot = ((u64::from(channel) << sel.local_bits()) | local) as usize;
                prop_assert!(!seen[slot], "{kind:?}: two addresses alias to {channel}/{local}");
                seen[slot] = true;
                prop_assert_eq!(sel.unroute(channel, local), addr, "{kind:?}: unroute is not the inverse");
            }
        }
    }

    /// End-to-end losslessness of the composed pipeline (channel select,
    /// then the per-channel keyed bank hash, then DRAM storage): writing a
    /// distinct value to *every* address of the fabric's space and reading
    /// them all back returns exactly what was written — no two addresses
    /// can collapse onto the same cell of the same channel.
    #[test]
    fn fabric_split_plus_bank_hash_loses_no_address(seed in any::<u64>()) {
        let config = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig { addr_bits: 8, ..VpnmConfig::test_roomy() },
            qos: None,
        };
        let mut fab = VpnmFabric::new(config, seed).unwrap();
        let space = 1u64 << 8;
        for a in 0..space {
            let mut out = fab.tick(Some(Request::write(LineAddr(a), vec![a as u8, (a >> 4) as u8])));
            let mut budget = 4 * fab.delay();
            while !out.accepted() && budget > 0 {
                out = fab.tick(Some(Request::write(LineAddr(a), vec![a as u8, (a >> 4) as u8])));
                budget -= 1;
            }
            prop_assert!(out.accepted(), "write to {a} never accepted");
        }
        PipelinedMemory::drain(&mut fab);
        let mut read_back = 0u64;
        let mut check = |r: vpnm::core::Response| {
            assert_eq!(r.data[0], r.addr.0 as u8, "address {} corrupted", r.addr);
            assert_eq!(r.data[1], (r.addr.0 >> 4) as u8, "address {} corrupted", r.addr);
            read_back += 1;
        };
        for a in 0..space {
            let mut out = fab.tick(Some(Request::read(LineAddr(a))));
            let mut budget = 4 * fab.delay();
            while !out.accepted() && budget > 0 {
                out.response.map(&mut check);
                out = fab.tick(Some(Request::read(LineAddr(a))));
                budget -= 1;
            }
            prop_assert!(out.accepted(), "read of {a} never accepted");
            out.response.map(&mut check);
        }
        for r in PipelinedMemory::drain(&mut fab) {
            check(r);
        }
        prop_assert_eq!(read_back, space, "every address must read back exactly once");
    }

    /// Uniform traffic spreads over the channels within binomial bounds:
    /// with N requests over C channels each count is within six standard
    /// deviations of N/C (a bound a correct split fails with probability
    /// ~1e-9, so a failure means the selector is biased).
    #[test]
    fn uniform_traffic_balances_across_channels(seed in any::<u64>()) {
        use vpnm::workloads::generators::AddressGenerator;
        const N: u64 = 4000;
        let config = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::test_roomy(),
            qos: None,
        };
        let mut fab = VpnmFabric::new(config, seed).unwrap();
        let mut gen = vpnm::workloads::UniformAddresses::new(1 << 16, seed ^ 0xABCD);
        let mut accepted = 0u64;
        for _ in 0..N {
            accepted += u64::from(
                fab.tick(Some(Request::read(LineAddr(gen.next_addr())))).accepted(),
            );
        }
        let p = 0.25f64;
        let sigma = (accepted as f64 * p * (1.0 - p)).sqrt();
        let expect = accepted as f64 * p;
        let mut total = 0u64;
        for c in 0..4u32 {
            let got = fab.channel(c).metrics().reads_accepted;
            total += got;
            prop_assert!(
                (got as f64 - expect).abs() <= 6.0 * sigma,
                "channel {c} took {got} of {accepted} (expected {expect:.0} ± {:.0})",
                6.0 * sigma
            );
        }
        prop_assert_eq!(total, accepted, "per-channel counts must sum to the total");
    }

    /// Read-your-writes: after quiescence, reading any written address
    /// returns the last written value.
    #[test]
    fn read_your_writes_after_quiescence(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60),
    ) {
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 3).unwrap();
        let mut last = std::collections::HashMap::new();
        for (a, v) in &writes {
            let out = mem.tick(Some(Request::write(LineAddr(u64::from(*a)), vec![*v])));
            prop_assume!(out.accepted());
            last.insert(u64::from(*a), *v);
        }
        let mut expected = Vec::new();
        for (&a, &v) in &last {
            let out = mem.tick(Some(Request::read(LineAddr(a))));
            prop_assume!(out.accepted());
            expected.push((a, v));
            if let Some(r) = out.response {
                let want = last[&r.addr.0];
                prop_assert_eq!(r.data[0], want);
            }
        }
        for r in mem.drain() {
            let want = last[&r.addr.0];
            prop_assert_eq!(r.data[0], want);
        }
    }
}
