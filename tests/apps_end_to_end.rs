//! End-to-end application integration: the packet buffer and the
//! reassembler running on full-size controllers against generated
//! traffic, plus a three-way baseline shoot-out on one workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm::apps::baselines::{CfdsBuffer, NikologiannisBuffer, PacketBufferModel, RadsBuffer};
use vpnm::apps::packet_buffer::{BufferError, BufferEvent, VpnmPacketBuffer};
use vpnm::apps::reassembly::ReassemblyEngine;
use vpnm::core::{VpnmConfig, VpnmController};
use vpnm::dram::DramConfig;
use vpnm::workloads::packets::{payload_bytes, PacketTrace, PacketTraceConfig, SizeDistribution};
use vpnm::workloads::OutOfOrderSegments;

#[test]
fn packet_buffer_full_scale_mixed_traffic() {
    let mut buf = VpnmPacketBuffer::new(VpnmConfig::paper_optimal(), 256, 1 << 10, 3).unwrap();
    let mut trace = PacketTrace::new(PacketTraceConfig {
        num_flows: 256,
        sizes: SizeDistribution::Fixed(64),
        seed: 4,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let mut expect = vec![0u64; 256];
    let mut delivered = 0u64;
    for slot in 0..40_000u64 {
        let event = if slot % 2 == 0 {
            let p = trace.next_packet();
            Some(BufferEvent::Enqueue { queue: p.flow, cell: p.payload.to_vec() })
        } else {
            (0..16)
                .map(|_| rng.gen_range(0..256u32))
                .find(|&q| buf.occupancy(q) > 0)
                .map(|q| BufferEvent::Dequeue { queue: q })
        };
        match buf.tick(event) {
            Ok(Some(cell)) => {
                let want = payload_bytes(cell.queue, expect[cell.queue as usize], 64);
                assert_eq!(cell.data, want, "queue {}", cell.queue);
                expect[cell.queue as usize] += 1;
                delivered += 1;
            }
            Ok(None) => {}
            Err(BufferError::QueueEmpty | BufferError::QueueFull) => {}
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    for cell in buf.drain() {
        let want = payload_bytes(cell.queue, expect[cell.queue as usize], 64);
        assert_eq!(cell.data, want);
        expect[cell.queue as usize] += 1;
        delivered += 1;
    }
    assert!(delivered > 15_000, "delivered {delivered}");
    assert_eq!(buf.stats().memory_stalls, 0, "paper-scale config must not stall");
}

/// One uniform enqueue/dequeue workload driven through all four buffer
/// architectures; everyone must preserve FIFO data, and the harness
/// records relative acceptance so the Table 3 ordering is measured.
#[test]
fn baseline_shootout_preserves_fifo_everywhere() {
    const QUEUES: u32 = 16;
    const SLOTS: u64 = 8_000;
    let make_models = || -> Vec<Box<dyn PacketBufferModel>> {
        let dram = DramConfig {
            num_banks: 32,
            rows_per_bank: 1 << 12,
            cells_per_row: 64,
            cell_bytes: 64,
            timing: vpnm::dram::timing::TimingModel::simple(20),
        };
        vec![
            Box::new(
                VpnmPacketBuffer::new(
                    VpnmConfig { addr_bits: 24, ..VpnmConfig::paper_optimal() },
                    QUEUES,
                    1 << 12,
                    9,
                )
                .unwrap(),
            ),
            Box::new(CfdsBuffer::new(dram.clone(), QUEUES, 1 << 12, 64, 2).unwrap()),
            Box::new(NikologiannisBuffer::new(dram.clone(), QUEUES, 1 << 12, 64).unwrap()),
            // batch of 16 cells per 20-cycle DRAM batch access: 0.8
            // cells/cycle of channel capacity for a 0.5 cells/cycle load
            Box::new(RadsBuffer::new(QUEUES, 1 << 12, 16, 20, 64).unwrap()),
        ]
    };
    for mut model in make_models() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut seqs = vec![0u64; QUEUES as usize];
        let mut expect = vec![0u64; QUEUES as usize];
        let mut occupancy = vec![0u64; QUEUES as usize];
        let mut accepted = 0u64;
        let mut checked = 0u64;
        for slot in 0..SLOTS {
            let event = if slot % 2 == 0 {
                let q = rng.gen_range(0..QUEUES);
                Some(BufferEvent::Enqueue {
                    queue: q,
                    cell: payload_bytes(q, seqs[q as usize], 64),
                })
            } else {
                (0..QUEUES)
                    .find(|&q| occupancy[q as usize] > 0)
                    .map(|q| BufferEvent::Dequeue { queue: q })
            };
            let is_enq = matches!(event, Some(BufferEvent::Enqueue { .. }));
            let q_of = match &event {
                Some(BufferEvent::Enqueue { queue, .. }) | Some(BufferEvent::Dequeue { queue }) => {
                    Some(*queue)
                }
                None => None,
            };
            if let Ok(cell_opt) = model.tick(event) {
                if let Some(q) = q_of {
                    if is_enq {
                        seqs[q as usize] += 1;
                        occupancy[q as usize] += 1;
                        accepted += 1;
                    } else {
                        occupancy[q as usize] -= 1;
                        accepted += 1;
                    }
                }
                if let Some(cell) = cell_opt {
                    let want = payload_bytes(cell.queue, expect[cell.queue as usize], 64);
                    assert_eq!(
                        cell.data,
                        want,
                        "{}: FIFO violation on queue {}",
                        model.name(),
                        cell.queue
                    );
                    expect[cell.queue as usize] += 1;
                    checked += 1;
                }
            }
        }
        assert!(accepted > SLOTS / 4, "{} accepted only {accepted}/{SLOTS}", model.name());
        assert!(checked > 100, "{} verified only {checked} cells", model.name());
        assert!(model.sram_bytes() > 0);
    }
}

#[test]
fn reassembly_paper_scale_out_of_order() {
    const CHUNK: usize = 64;
    let mem = VpnmController::new(VpnmConfig::paper_optimal(), 31).unwrap();
    let mut engine = ReassemblyEngine::new(mem, 32, 1 << 12, CHUNK);
    let streams: Vec<Vec<u8>> = (0..32).map(|f| payload_bytes(f, 9, 64 * CHUNK)).collect();
    let mut sources: Vec<OutOfOrderSegments> = streams
        .iter()
        .enumerate()
        .map(|(f, s)| OutOfOrderSegments::new(s, 4 * CHUNK, 8, 500 + f as u64))
        .collect();
    loop {
        let mut progressed = false;
        for (f, src) in sources.iter_mut().enumerate() {
            if let Some(seg) = src.next_segment() {
                engine.submit_segment(f as u32, seg.offset, &seg.data);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    engine.drain();
    for (f, stream) in streams.iter().enumerate() {
        assert_eq!(engine.scanned(f as u32), &stream[..], "flow {f}");
    }
    // 5 accesses per chunk at ~1/cycle
    let per_chunk = engine.cycles() as f64 / engine.stats().chunks_ingested as f64;
    assert!(per_chunk < 6.5, "cycles per chunk {per_chunk:.2}");
}
