//! Simulation-vs-mathematics cross-validation of the Mean Time to Stall
//! analyses (the paper's "Simulation (for functionality), Mathematical
//! (for MTS)" methodology, Section 5).
//!
//! The paper-scale MTS (~10¹³) cannot be observed directly, but for small
//! `(B, Q, K)` the predicted MTS drops to 10²–10⁵ cycles, where direct
//! simulation measures it. These tests check the Markov model against the
//! executable controller within a small factor.

use vpnm::analysis::{combined_mts, dsb_mts, BankQueueModel};
use vpnm::core::{HashKind, LineAddr, Request, SchedulerKind, VpnmConfig, VpnmController};
use vpnm::workloads::generators::AddressGenerator;
use vpnm::workloads::UniformAddresses;

/// Measures the mean time to first stall over `trials` independent
/// controller instances under uniform random read traffic.
fn simulate_mean_first_stall(config: &VpnmConfig, trials: u64, max_cycles: u64) -> f64 {
    let mut total = 0.0;
    for trial in 0..trials {
        let mut mem = VpnmController::new(config.clone(), 7000 + trial).expect("valid config");
        let mut gen = UniformAddresses::new(1u64 << config.addr_bits, 31 * trial + 1);
        let mut first = max_cycles;
        for t in 0..max_cycles {
            let out = mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
            if !out.accepted() {
                first = t + 1;
                break;
            }
        }
        total += first as f64;
    }
    total / trials as f64
}

#[test]
fn markov_model_predicts_simulated_queue_stalls() {
    // A configuration dominated by bank-access-queue stalls: tiny Q,
    // plentiful K. `L = B` makes the Markov model's service time (L
    // cycles per entry) coincide exactly with the controller's
    // round-robin grant period (one grant per B memory cycles), so the
    // two are directly comparable.
    let config = VpnmConfig {
        banks: 4,
        bank_latency: 4,
        queue_entries: 3,
        storage_rows: 64,
        bus_ratio: 1.5,
        delay_override: None,
        addr_bits: 16,
        cell_bytes: 8,
        hash: HashKind::H3,
        write_buffer_entries: None,
        trace_capacity: 0,
        forensics_capacity: 0,
        scheduler: SchedulerKind::RoundRobin,
        merging: true,
    };
    let predicted = BankQueueModel::new(4, 4, 3, 1.5).mean_absorption_cycles() / 1.5;
    let simulated = simulate_mean_first_stall(&config, 300, 100_000);
    let ratio = simulated / predicted;
    assert!(
        (0.2..5.0).contains(&ratio),
        "simulated {simulated:.0} vs predicted {predicted:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn markov_model_tracks_q_scaling() {
    // Growing Q must stretch both the predicted and the simulated MTS,
    // and by comparable factors.
    let base = VpnmConfig {
        banks: 4,
        bank_latency: 4, // = B, aligning model service time with grants
        queue_entries: 2,
        storage_rows: 64,
        bus_ratio: 1.5,
        delay_override: None,
        addr_bits: 16,
        cell_bytes: 8,
        hash: HashKind::H3,
        write_buffer_entries: None,
        trace_capacity: 0,
        forensics_capacity: 0,
        scheduler: SchedulerKind::RoundRobin,
        merging: true,
    };
    let mut sims = Vec::new();
    let mut preds = Vec::new();
    for q in [2usize, 4, 8] {
        let config = VpnmConfig { queue_entries: q, ..base.clone() };
        preds.push(BankQueueModel::new(4, 4, q as u64, 1.5).mean_absorption_cycles());
        sims.push(simulate_mean_first_stall(&config, 200, 200_000));
    }
    for w in preds.windows(2) {
        assert!(w[1] > w[0], "prediction must grow with Q: {preds:?}");
    }
    for w in sims.windows(2) {
        assert!(w[1] > w[0], "simulation must grow with Q: {sims:?}");
    }
    assert!(
        sims[2] > 4.0 * sims[0],
        "doubling Q twice must stretch survival substantially: {sims:?} (predicted {preds:?})"
    );
}

#[test]
fn dsb_formula_orders_match_queue_formula_regimes() {
    // In a combined configuration, the total MTS must not exceed either
    // component, and must be dominated by the smaller one.
    let d = 60;
    let dsb = dsb_mts(4, 6, d);
    let queue = BankQueueModel::new(4, 3, 4, 1.0).mts_cycles();
    let total = combined_mts(&[dsb, queue]);
    assert!(total <= dsb && total <= queue);
    assert!(total >= 0.5 * dsb.min(queue) * 0.5);
}

#[test]
fn storage_dominated_config_stalls_on_storage() {
    // K barely above Q forces delay-storage stalls to appear; the
    // controller must report them as such.
    let config = VpnmConfig {
        banks: 4,
        bank_latency: 3,
        queue_entries: 6,
        storage_rows: 6,
        bus_ratio: 1.0,
        delay_override: None,
        addr_bits: 16,
        cell_bytes: 8,
        hash: HashKind::H3,
        write_buffer_entries: None,
        trace_capacity: 0,
        forensics_capacity: 0,
        scheduler: SchedulerKind::RoundRobin,
        merging: true,
    };
    let mut mem = VpnmController::new(config, 3).unwrap();
    let mut gen = UniformAddresses::new(1 << 16, 4);
    for _ in 0..100_000 {
        mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
    }
    let m = mem.metrics();
    assert!(m.total_stalls() > 0, "cramped config must stall within 100k cycles");
    assert!(
        m.delay_storage_stalls > 0,
        "storage stalls expected: ds={} q={}",
        m.delay_storage_stalls,
        m.access_queue_stalls
    );
}

#[test]
fn paper_scale_config_never_stalls_in_reachable_horizons() {
    // The optimal design point predicts MTS ~1e13; a million-cycle run
    // must therefore be stall-free.
    let mut mem = VpnmController::new(VpnmConfig::paper_optimal(), 17).unwrap();
    let mut gen = UniformAddresses::new(1u64 << 32, 18);
    for _ in 0..1_000_000u64 {
        let out = mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
        assert!(out.accepted(), "paper config stalled — MTS model violated");
    }
    let queue_mts = BankQueueModel::new(32, 20, 64, 1.3).mts_cycles();
    assert!(queue_mts > 1e12);
}
