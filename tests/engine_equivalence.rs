//! Differential equivalence suite for the hot-path engine rework.
//!
//! `VpnmController` (ready-bank index, shared delay ring, idle
//! fast-forward, incremental metrics) must be **cycle-for-cycle and
//! byte-for-byte identical** to `ReferenceController`, the faithful
//! retention of the original O(B)-per-cycle formulation. Every tick's
//! `TickOutput` (response bytes, timing, stall kind), the final metrics
//! (including the per-cycle occupancy distributions), the DRAM statistics
//! and the drain behaviour are compared on:
//!
//! * property-based request streams (reads/writes/idle, narrow and wide
//!   address ranges),
//! * both scheduler kinds, merging on and off,
//! * integral and fractional memory/interface clock ratios,
//! * an adversarial single-bank flood under the degenerate low-bits hash
//!   (heavy stalling), and a bursty stream with long idle gaps (the idle
//!   fast-forward path).

//!
//! The same harness, generic over [`PipelinedMemory`], also checks the
//! multi-channel [`VpnmFabric`]: at `channels = 1` the fabric is
//! byte-identical to the bare controller (including the serialized
//! snapshot), and at `channels = 4` a fast-engine fabric matches a
//! reference-engine fabric under every channel-select policy.

use proptest::prelude::*;
use vpnm::core::fabric::{ChannelSelect, FabricConfig};
use vpnm::core::{
    LineAddr, PipelinedMemory, ReferenceController, Request, SchedulerKind, VpnmConfig,
    VpnmController, VpnmFabric,
};

#[derive(Debug, Clone)]
enum Op {
    Read(u16),
    Write(u16, u8),
    Idle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u16>().prop_map(Op::Read),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        1 => Just(Op::Idle),
    ]
}

fn to_request(op: &Op, addr_mask: u64) -> Option<Request> {
    match op {
        Op::Read(a) => Some(Request::read(LineAddr(u64::from(*a) & addr_mask))),
        Op::Write(a, v) => Some(Request::write(LineAddr(u64::from(*a) & addr_mask), vec![*v])),
        Op::Idle => None,
    }
}

/// Drives two [`PipelinedMemory`] engines through the same stream and
/// asserts every externally observable trait signal is identical, every
/// cycle — including the serialized metrics snapshot, when both engines
/// keep one.
fn assert_engines_equivalent<A: PipelinedMemory, B: PipelinedMemory>(
    fast: &mut A,
    reference: &mut B,
    stream: &[Option<Request>],
) {
    for (i, req) in stream.iter().enumerate() {
        let out_fast = fast.tick(req.clone());
        let out_ref = reference.tick(req.clone());
        assert_eq!(out_fast, out_ref, "tick {i} diverged (request {req:?})");
        assert_eq!(fast.now(), reference.now(), "interface clocks diverged at tick {i}");
        assert_eq!(
            fast.outstanding(),
            reference.outstanding(),
            "outstanding counts diverged at tick {i}"
        );
    }
    let drained_fast = fast.drain();
    let drained_ref = reference.drain();
    assert_eq!(drained_fast, drained_ref, "drain responses diverged");
    assert_eq!(fast.now(), reference.now(), "drain lengths diverged");
    // The observability layer rides on the same metrics: both engines
    // must serialize byte-identical snapshots.
    assert_eq!(
        fast.snapshot().map(|s| s.to_json()),
        reference.snapshot().map(|s| s.to_json()),
        "metrics snapshots diverged"
    );
}

/// Drives both bare engines through the same stream and asserts every
/// externally observable signal is identical, every cycle.
fn assert_equivalent(cfg: VpnmConfig, seed: u64, stream: &[Option<Request>]) {
    let mut fast = VpnmController::new(cfg.clone(), seed).expect("valid config");
    let mut reference = ReferenceController::new(cfg, seed).expect("valid config");
    assert_engines_equivalent(&mut fast, &mut reference, stream);
    assert_eq!(fast.metrics(), reference.metrics(), "metrics diverged");
    assert_eq!(fast.dram_stats(), reference.dram_stats(), "DRAM stats diverged");
}

fn configs_under_test() -> Vec<VpnmConfig> {
    let mut cfgs = Vec::new();
    for scheduler in [SchedulerKind::RoundRobin, SchedulerKind::WorkConserving] {
        for merging in [true, false] {
            cfgs.push(VpnmConfig { scheduler, merging, ..VpnmConfig::small_test() });
        }
    }
    // fractional clock ratio: the idle fast-forward must respect the
    // Bresenham accumulator mid-window
    cfgs.push(VpnmConfig::small_test().with_bus_ratio(1.3));
    cfgs.push(VpnmConfig {
        scheduler: SchedulerKind::WorkConserving,
        ..VpnmConfig::small_test().with_bus_ratio(1.7)
    });
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary streams over a wide address range, all config corners.
    #[test]
    fn engines_agree_on_arbitrary_streams(
        ops in proptest::collection::vec(op_strategy(), 1..600),
        seed in 0u64..1000,
    ) {
        let stream: Vec<Option<Request>> =
            ops.iter().map(|op| to_request(op, (1 << 16) - 1)).collect();
        for cfg in configs_under_test() {
            assert_equivalent(cfg, seed, &stream);
        }
    }

    /// Narrow address range: exercises merging, write invalidation and
    /// delay-storage duplicate rows (merging off) far more densely.
    #[test]
    fn engines_agree_on_hot_address_sets(
        ops in proptest::collection::vec(op_strategy(), 1..600),
        seed in 0u64..1000,
    ) {
        let stream: Vec<Option<Request>> =
            ops.iter().map(|op| to_request(op, 0xF)).collect();
        for cfg in configs_under_test() {
            assert_equivalent(cfg, seed, &stream);
        }
    }
}

#[test]
fn engines_agree_under_adversarial_single_bank_flood() {
    // Degenerate low-bits mapping + stride-B addresses: every request
    // lands in one bank, stalling heavily. Stall streams must match too.
    use vpnm::core::HashKind;
    for scheduler in [SchedulerKind::RoundRobin, SchedulerKind::WorkConserving] {
        let cfg = VpnmConfig { scheduler, ..VpnmConfig::small_test() }.with_hash(HashKind::LowBits);
        let stream: Vec<Option<Request>> =
            (0..2000u64).map(|i| Some(Request::read(LineAddr(i * 4 % (1 << 16))))).collect();
        assert_equivalent(cfg, 0, &stream);
    }
}

#[test]
fn engines_agree_across_long_idle_gaps() {
    // Bursts separated by idle stretches much longer than D: the fast
    // engine takes the fast-forward path almost every cycle; the
    // reference grinds through every memory cycle. Outputs must match
    // exactly, including the per-cycle occupancy samples.
    for ratio in [1.0, 1.3, 2.0] {
        let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
        let mut stream: Vec<Option<Request>> = Vec::new();
        for burst in 0..5u64 {
            for i in 0..20 {
                let addr = LineAddr((burst * 977 + i * 13) % (1 << 16));
                stream.push(Some(if i % 4 == 0 {
                    Request::write(addr, vec![i as u8])
                } else {
                    Request::read(addr)
                }));
            }
            stream.extend(std::iter::repeat_with(|| None).take(500));
        }
        assert_equivalent(cfg, 7, &stream);
    }
}

/// A deterministic mixed read/write/idle stream for the fabric suites
/// (an LCG so the tests need no proptest machinery).
fn mixed_stream(n: u64, addr_mask: u64) -> Vec<Option<Request>> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = LineAddr((state >> 17) & addr_mask);
            match i % 7 {
                6 => None,
                0 | 3 => Some(Request::write(addr, vec![i as u8])),
                _ => Some(Request::read(addr)),
            }
        })
        .collect()
}

#[test]
fn single_channel_fabric_matches_both_bare_engines() {
    // channels = 1 must reproduce the bare controller exactly — same tick
    // outputs and a byte-identical serialized snapshot (the fabric merge
    // of one part is the identity).
    let stream = mixed_stream(1500, (1 << 16) - 1);
    let cfg = VpnmConfig::small_test();

    let mut fabric = VpnmFabric::new(FabricConfig::single(cfg.clone()), 3).expect("valid");
    let mut bare = VpnmController::new(cfg.clone(), 3).expect("valid");
    assert_engines_equivalent(&mut fabric, &mut bare, &stream);

    let mut fabric =
        VpnmFabric::new_reference(FabricConfig::single(cfg.clone()), 3).expect("valid");
    let mut bare = ReferenceController::new(cfg, 3).expect("valid");
    assert_engines_equivalent(&mut fabric, &mut bare, &stream);
}

#[test]
fn fabric_engines_agree_at_four_channels() {
    // The fast-engine fabric and the reference-engine fabric must stay in
    // lockstep under every channel-select policy, exactly as the bare
    // engines do at one channel.
    let stream = mixed_stream(2000, (1 << 16) - 1);
    for select in [ChannelSelect::LowBits, ChannelSelect::HighBits, ChannelSelect::UniversalHash] {
        let cfg = FabricConfig { channels: 4, select, base: VpnmConfig::small_test(), qos: None };
        let mut fast = VpnmFabric::new(cfg.clone(), 11).expect("valid");
        let mut reference = VpnmFabric::new_reference(cfg, 11).expect("valid");
        assert_engines_equivalent(&mut fast, &mut reference, &stream);
    }
}

#[test]
fn fabric_runs_are_deterministic_at_four_channels() {
    // Same config, seed and stream twice over: identical responses and an
    // identical merged snapshot, independent of any host state.
    let stream = mixed_stream(1200, (1 << 16) - 1);
    let run = || {
        let cfg = FabricConfig {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::small_test(),
            qos: None,
        };
        let mut fabric = VpnmFabric::new(cfg, 21).expect("valid");
        let mut responses = Vec::new();
        for req in &stream {
            responses.extend(fabric.tick(req.clone()).response);
        }
        responses.extend(PipelinedMemory::drain(&mut fabric));
        (responses, fabric.merged_snapshot().expect("fabric keeps metrics").to_json())
    };
    assert_eq!(run(), run());
}

/// Merged snapshot serialization with the one sanctioned epoch/tick
/// divergence — the `cycles_skipped` drive-mode counter — masked off
/// (the same convention the `run_batch` equivalence tests use).
fn snapshot_sans_skips<M: PipelinedMemory>(fab: &VpnmFabric<M>) -> String {
    let mut snap = fab.merged_snapshot().expect("fabric keeps metrics");
    snap.cycles_skipped = 0;
    snap.to_json()
}

/// Full-rate bursts separated by idle stretches much longer than `D` —
/// the per-channel idle fast-forward path fires constantly.
fn bursty_idle_stream(bursts: u64, addr_mask: u64) -> Vec<Option<Request>> {
    let mut stream = Vec::new();
    for burst in 0..bursts {
        for i in 0..25u64 {
            let addr = LineAddr((burst * 977 + i * 13) & addr_mask);
            stream.push(Some(if i % 4 == 0 {
                Request::write(addr, vec![i as u8])
            } else {
                Request::read(addr)
            }));
        }
        stream.extend(std::iter::repeat_with(|| None).take(400));
    }
    stream
}

/// Every address is a multiple of `channels`, so a low-bits channel
/// select funnels the whole stream into channel 0 — one channel stalls
/// heavily while the rest idle (the worst case for epoch batching).
fn channel_flood_stream(n: u64, channels: u64) -> Vec<Option<Request>> {
    (0..n).map(|i| Some(Request::read(LineAddr((i * 13 % (1 << 12)) * channels)))).collect()
}

#[test]
fn fabric_epoch_path_is_worker_count_invariant_and_matches_tick() {
    // The tentpole contract: for every trace shape and every worker
    // count, the epoch-batched path produces byte-identical responses
    // (in exact cycle order), drains, and merged snapshots — equal to
    // each other AND to the sequential per-tick path (modulo the
    // `cycles_skipped` drive-mode counter).
    let traces: Vec<(&str, ChannelSelect, Vec<Option<Request>>)> = vec![
        ("uniform", ChannelSelect::UniversalHash, mixed_stream(2000, (1 << 16) - 1)),
        ("bursty-idle", ChannelSelect::UniversalHash, bursty_idle_stream(5, (1 << 16) - 1)),
        ("adversarial", ChannelSelect::LowBits, channel_flood_stream(1500, 8)),
    ];
    for (name, select, stream) in traces {
        let cfg = FabricConfig { channels: 8, select, base: VpnmConfig::small_test(), qos: None };

        let mut ticked = VpnmFabric::new(cfg.clone(), 17).expect("valid");
        let mut tick_responses = Vec::new();
        for req in &stream {
            tick_responses.extend(ticked.tick(req.clone()).response);
        }
        let tick_drain = PipelinedMemory::drain(&mut ticked);
        let tick_snap = snapshot_sans_skips(&ticked);

        for workers in [1usize, 2, 8] {
            let mut fab = VpnmFabric::new(cfg.clone(), 17).expect("valid");
            fab.set_workers(workers);
            let mut responses = Vec::new();
            // A prime epoch length, so epoch seams never align with the
            // trace's own periodicity.
            for span in stream.chunks(257) {
                responses.extend(fab.run_epoch(span).responses);
            }
            assert_eq!(responses, tick_responses, "{name}, {workers} workers: responses");
            assert_eq!(
                PipelinedMemory::drain(&mut fab),
                tick_drain,
                "{name}, {workers} workers: drain"
            );
            assert_eq!(
                snapshot_sans_skips(&fab),
                tick_snap,
                "{name}, {workers} workers: merged snapshot"
            );
        }
    }
}

#[test]
fn boxed_engines_run_the_same_stream_through_one_call_site() {
    // The widened trait is object-safe: one loop drives a bare fast
    // engine, a bare reference engine and a four-channel fabric through
    // the same stream, and the two bare engines agree byte-for-byte.
    let stream = mixed_stream(800, (1 << 16) - 1);
    let cfg = VpnmConfig::small_test();
    let mut engines: Vec<Box<dyn PipelinedMemory>> = vec![
        Box::new(VpnmController::new(cfg.clone(), 5).expect("valid")),
        Box::new(ReferenceController::new(cfg.clone(), 5).expect("valid")),
        Box::new(
            VpnmFabric::new(
                FabricConfig {
                    channels: 4,
                    select: ChannelSelect::UniversalHash,
                    base: cfg,
                    qos: None,
                },
                5,
            )
            .expect("valid"),
        ),
    ];
    let mut delivered = Vec::new();
    for mem in &mut engines {
        let mut n = 0u64;
        for req in &stream {
            n += u64::from(mem.tick(req.clone()).response.is_some());
        }
        n += mem.drain().len() as u64;
        delivered.push(n);
    }
    assert_eq!(delivered[0], delivered[1], "bare engines must deliver identically");
    assert!(delivered[2] > 0, "the fabric must deliver responses too");
}

#[test]
fn engines_agree_on_paper_scale_config() {
    // A short run at the paper's full-scale geometry (many banks, long
    // delay) so the equivalence isn't only checked on toy sizes.
    let cfg = VpnmConfig { trace_capacity: 0, ..VpnmConfig::paper_compact() };
    let stream: Vec<Option<Request>> = (0..3000u64)
        .map(|i| {
            if i % 11 == 0 {
                None
            } else if i % 5 == 0 {
                Some(Request::write(LineAddr(i * 7919 % (1 << 20)), vec![i as u8]))
            } else {
                Some(Request::read(LineAddr(i * 6151 % (1 << 20))))
            }
        })
        .collect();
    assert_equivalent(cfg, 42, &stream);
}
