//! Cross-crate integration: the deterministic-latency abstraction holds
//! across hash families, clock ratios, and traffic shapes, and VPNM is
//! observationally equivalent to the ideal pipelined memory whenever it
//! accepts the stream.

use vpnm::core::{
    HashKind, IdealMemory, LineAddr, PipelinedMemory, Request, VpnmConfig, VpnmController,
};
use vpnm::workloads::burst::BurstShaper;
use vpnm::workloads::generators::AddressGenerator;
use vpnm::workloads::{RequestKind, RequestMix, RequestStream, UniformAddresses};

fn to_request(kind: RequestKind) -> Request {
    match kind {
        RequestKind::Read { addr } => Request::read(LineAddr(addr)),
        RequestKind::Write { addr, data } => Request::write(LineAddr(addr), data),
    }
}

/// Runs `n` mixed requests through both memories in lockstep and checks
/// byte-for-byte, cycle-for-cycle equivalence.
fn differential_run(hash: HashKind, seed: u64, n: u64) {
    let config = VpnmConfig::test_roomy().with_hash(hash);
    let mut vpnm = VpnmController::new(config, seed).expect("valid config");
    let mut ideal = IdealMemory::new(vpnm.delay(), 8);
    let gen = UniformAddresses::new(1 << 16, seed ^ 0x9999);
    let mut stream =
        RequestStream::new(gen, RequestMix { read_fraction: 0.7, write_bytes: 8 }, seed);
    let mut v_rs = Vec::new();
    let mut i_rs = Vec::new();
    for _ in 0..n {
        let req = to_request(stream.next_request());
        let out_v = vpnm.tick(Some(req.clone()));
        assert!(out_v.accepted(), "roomy config must not stall on uniform traffic");
        v_rs.extend(out_v.response);
        i_rs.extend(ideal.tick(Some(req)).response);
    }
    while vpnm.outstanding() > 0 || ideal.outstanding() > 0 {
        v_rs.extend(vpnm.tick(None).response);
        i_rs.extend(ideal.tick(None).response);
    }
    assert_eq!(v_rs.len(), i_rs.len());
    for (v, i) in v_rs.iter().zip(&i_rs) {
        assert_eq!(v.addr, i.addr, "hash {hash}");
        assert_eq!(v.issued_at, i.issued_at);
        assert_eq!(v.completed_at, i.completed_at);
        assert_eq!(v.data, i.data, "data mismatch at {} ({hash})", v.addr);
    }
    assert_eq!(vpnm.metrics().deadline_misses, 0);
}

#[test]
fn vpnm_equals_ideal_under_h3() {
    differential_run(HashKind::H3, 1, 4000);
}

#[test]
fn vpnm_equals_ideal_under_multiply_shift() {
    differential_run(HashKind::MultiplyShift, 2, 4000);
}

#[test]
fn vpnm_equals_ideal_under_tabulation() {
    differential_run(HashKind::Tabulation, 3, 4000);
}

#[test]
fn vpnm_equals_ideal_under_affine_permutation() {
    differential_run(HashKind::Affine, 4, 4000);
}

#[test]
fn bursty_traffic_preserves_latency() {
    // Full-rate bursts with idle gaps: every response still lands exactly
    // D cycles after its issue.
    let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 9).unwrap();
    let d = mem.delay();
    let mut shaper = BurstShaper::new(200, 50);
    let mut gen = UniformAddresses::new(1 << 16, 10);
    let mut responses = 0u64;
    let mut issued = 0u64;
    for _ in 0..20_000 {
        let req = shaper.tick().then(|| Request::read(LineAddr(gen.next_addr())));
        issued += u64::from(req.is_some());
        let out = mem.tick(req);
        assert!(out.accepted());
        if let Some(r) = out.response {
            assert_eq!(r.latency(), d);
            responses += 1;
        }
    }
    responses += mem.drain().len() as u64;
    assert_eq!(issued, responses);
}

#[test]
fn every_bus_ratio_upholds_the_invariant() {
    for &r in &[1.0, 1.1, 1.25, 1.3, 1.5, 2.0] {
        let config = VpnmConfig {
            bus_ratio: r,
            queue_entries: 16,
            storage_rows: 32,
            ..VpnmConfig::test_roomy()
        };
        let mut mem = VpnmController::new(config, 5).unwrap();
        let d = mem.delay();
        let mut gen = UniformAddresses::new(1 << 16, 6);
        for _ in 0..2000 {
            let out = mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
            if let Some(resp) = out.response {
                assert_eq!(resp.latency(), d, "R = {r}");
            }
        }
        for resp in mem.drain() {
            assert_eq!(resp.latency(), d, "R = {r}");
        }
        assert_eq!(mem.metrics().deadline_misses, 0, "R = {r}");
    }
}

#[test]
fn merging_bounds_redundant_pattern_resources() {
    // The "A,B,A,B,…" pattern holds exactly two storage rows no matter
    // how long it runs (paper Section 3.4).
    let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 11).unwrap();
    mem.tick(Some(Request::write(LineAddr(0xA), vec![1])));
    mem.tick(Some(Request::write(LineAddr(0xB), vec![2])));
    let mut pattern = vpnm::workloads::RedundantPattern::new(vec![0xA, 0xB]);
    for _ in 0..2000 {
        let out = mem.tick(Some(Request::read(LineAddr(pattern.next_addr()))));
        assert!(out.accepted(), "merging must absorb the pattern");
    }
    let m = mem.metrics();
    assert!(m.reads_merged >= 1990);
    assert_eq!(m.total_stalls(), 0);
    assert!(
        m.storage_occupancy_hist.max().unwrap_or(0) <= 4,
        "A,B pattern must hold ≤2 rows (plus transients), saw {}",
        m.storage_occupancy_hist.max().unwrap_or(0)
    );
    for r in mem.drain() {
        let want = if r.addr.0 == 0xA { 1 } else { 2 };
        assert_eq!(r.data[0], want);
    }
}

#[test]
fn parallel_fabric_upholds_the_latency_invariant() {
    // The deterministic-latency contract survives the epoch-batched
    // parallel path: whatever the worker count, every accepted read is
    // answered after exactly D fabric cycles, and the full observable
    // output (responses in cycle order, merged snapshot) is byte-identical
    // to the single-worker run.
    use vpnm::core::fabric::{ChannelSelect, FabricConfig};
    use vpnm::core::VpnmFabric;

    let cfg = FabricConfig {
        channels: 8,
        select: ChannelSelect::UniversalHash,
        base: VpnmConfig::test_roomy(),
        qos: None,
    };
    let mut shaper = BurstShaper::new(300, 80);
    let mut gen = UniformAddresses::new(1 << 16, 23);
    let stream: Vec<Option<Request>> = (0..6000)
        .map(|_| shaper.tick().then(|| Request::read(LineAddr(gen.next_addr()))))
        .collect();

    let run = |workers: usize| {
        let mut fab = VpnmFabric::new(cfg.clone(), 31).expect("valid fabric");
        fab.set_workers(workers);
        let d = fab.delay();
        let mut responses = Vec::new();
        for span in stream.chunks(1013) {
            let report = fab.run_epoch(span);
            assert_eq!(report.stalled, 0, "roomy config must not stall on uniform traffic");
            responses.extend(report.responses);
        }
        responses.extend(PipelinedMemory::drain(&mut fab));
        for r in &responses {
            assert_eq!(r.latency(), d, "workers = {workers}");
        }
        (responses, fab.merged_snapshot().expect("fabric keeps metrics").to_json())
    };
    let baseline = run(1);
    assert!(!baseline.0.is_empty());
    for workers in [2, 8] {
        assert_eq!(run(workers), baseline, "workers = {workers}");
    }
}

#[test]
fn epoch_advance_is_uniform_across_trait_objects() {
    // `run_epoch` is part of the object-safe trait surface: the default
    // tick-loop (IdealMemory), the controller's `run_batch` override, and
    // the fabric's channel-major path all answer the same epoch through
    // `Box<dyn PipelinedMemory>` with identical response streams.
    use vpnm::core::fabric::{ChannelSelect, FabricConfig};
    use vpnm::core::VpnmFabric;

    let base = VpnmConfig::test_roomy();
    let mut gen = UniformAddresses::new(1 << 16, 41);
    let epoch: Vec<Option<Request>> =
        (0..800).map(|i| (i % 3 != 2).then(|| Request::read(LineAddr(gen.next_addr())))).collect();

    let mut vpnm: Box<dyn PipelinedMemory> =
        Box::new(VpnmController::new(base.clone(), 2).expect("valid"));
    let mut ideal: Box<dyn PipelinedMemory> = Box::new(IdealMemory::new(vpnm.delay(), 8));
    let mut fabric: Box<dyn PipelinedMemory> = Box::new(
        VpnmFabric::new(
            FabricConfig { channels: 1, select: ChannelSelect::LowBits, base, qos: None },
            2,
        )
        .expect("valid"),
    );
    let mut outputs = Vec::new();
    for mem in [&mut vpnm, &mut ideal, &mut fabric] {
        let mut responses = mem.run_epoch(&epoch).responses;
        responses.extend(mem.drain());
        outputs.push(responses);
    }
    assert_eq!(outputs[0].len(), outputs[1].len());
    for (v, i) in outputs[0].iter().zip(&outputs[1]) {
        assert_eq!((v.addr, v.issued_at, v.completed_at), (i.addr, i.issued_at, i.completed_at));
    }
    assert_eq!(outputs[0], outputs[2], "one-channel fabric epochs match the bare controller");
}

#[test]
fn rekeying_changes_the_mapping() {
    // Two controllers with different seeds map the same addresses to
    // different banks (with overwhelming probability over 64 addresses).
    use vpnm::hash::BankHasher;
    let a = VpnmController::new(VpnmConfig::test_roomy(), 100).unwrap();
    let b = VpnmController::new(VpnmConfig::test_roomy(), 101).unwrap();
    let differing = (0..64u64).filter(|&x| a.hash().bank_of(x) != b.hash().bank_of(x)).count();
    assert!(differing > 16, "re-keying must reshuffle the mapping ({differing}/64)");
}
