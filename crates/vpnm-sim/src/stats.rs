//! Counters, running statistics, and histograms for simulation accounting.

use std::fmt;

/// A named saturating event counter.
///
/// ```
/// use vpnm_sim::Counter;
/// let mut c = Counter::new("bank_conflicts");
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a static name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value = self.value.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Streaming mean/variance/min/max over `u64` samples (Welford's method).
///
/// ```
/// use vpnm_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 4.571428).abs() < 1e-3); // sample variance
/// assert_eq!(s.min(), Some(2));
/// assert_eq!(s.max(), Some(9));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<u64>,
    max: Option<u64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let v = value as f64;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0.0` for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample seen, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A histogram with logarithmic (power-of-two) buckets for latency and
/// occupancy distributions.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 counts `0..2`.
///
/// ```
/// use vpnm_sim::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(3);
/// h.record(1000);
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.bucket_count(0), 2); // values 0 and 1
/// assert_eq!(h.bucket_count(1), 1); // value 3
/// assert_eq!(h.bucket_count(9), 1); // value 1000 in [512, 1024)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    total: u64,
    stats: RunningStatsMirror,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 64], total: 0, stats: RunningStatsMirror::default() }
    }
}

/// Small embedded copy of min/max/sum for the histogram without pulling in
/// the full Welford state (mean is recoverable from buckets only
/// approximately). Sentinel encoding (`min = u64::MAX`, `max = 0` when
/// empty; `total == 0` discriminates) keeps the per-sample update
/// branchless — `record` sits on simulation hot paths that run once per
/// modeled cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunningStatsMirror {
    min: u64,
    max: u64,
    sum: u64,
}

impl Default for RunningStatsMirror {
    fn default() -> Self {
        RunningStatsMirror { min: u64::MAX, max: 0, sum: 0 }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. The sum saturates at `u64::MAX` (unreachable
    /// for the cycle-occupancy ranges simulations produce).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value) & 63] += 1;
        self.total += 1;
        self.stats.sum = self.stats.sum.saturating_add(value);
        self.stats.min = self.stats.min.min(value);
        self.stats.max = self.stats.max.max(value);
    }

    /// Records `n` identical samples in O(1).
    ///
    /// Exactly equivalent to calling [`record`](Self::record) `n` times:
    /// bucket counts and totals are plain integer adds, and the saturating
    /// sum is monotone, so `sum.saturating_add(value * n)` lands on the
    /// same value as `n` saturating single-sample adds (both reach
    /// `u64::MAX` precisely when the true sum would overflow).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value) & 63] += n;
        self.total += n;
        self.stats.sum = self.stats.sum.saturating_add(value.saturating_mul(n));
        self.stats.min = self.stats.min.min(value);
        self.stats.max = self.stats.max.max(value);
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all recorded samples.
    ///
    /// Exposed so exact (non-lossy) histogram state can be serialized and
    /// reconstructed via [`from_parts`](Self::from_parts), e.g. for
    /// campaign checkpoints.
    pub fn sum(&self) -> u64 {
        self.stats.sum
    }

    /// Count in bucket `i` (`[2^i, 2^(i+1))`, with bucket 0 = `[0,2)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Exact mean of all recorded samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.stats.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.stats.min)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.stats.max)
        }
    }

    /// Approximate quantile `q` in `[0,1]`, resolved to bucket upper bounds.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // upper bound of bucket i
                return Some(if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 });
            }
        }
        self.max()
    }

    /// Iterates over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// The inclusive lower bound of bucket `i` (0 for bucket 0, else `2^i`).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Reconstructs a histogram from serialized parts: `(bucket index,
    /// count)` pairs plus the exact sum/min/max sidecar.
    ///
    /// Inverse of reading [`iter`](Self::iter)/[`sum`](Self::sum)/
    /// [`min`](Self::min)/[`max`](Self::max) back out; a checkpointed
    /// histogram round-trips bit-for-bit so merged resume runs equal
    /// uninterrupted ones. Empty histograms (`min`/`max` of `None`) use
    /// the sentinel encoding automatically.
    ///
    /// # Panics
    ///
    /// Panics if a bucket index is ≥ 64.
    pub fn from_parts(
        bucket_counts: &[(usize, u64)],
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Self {
        let mut h = Histogram::new();
        for &(i, c) in bucket_counts {
            h.buckets[i] += c;
            h.total += c;
        }
        h.stats.sum = sum;
        h.stats.min = min.unwrap_or(u64::MAX);
        h.stats.max = max.unwrap_or(0);
        h
    }

    /// Merges another histogram into this one (used when measurements are
    /// sharded across controller instances or worker threads).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.total += other.total;
        self.stats.sum = self.stats.sum.saturating_add(other.stats.sum);
        // The sentinels (`MAX`/`0` when empty) are identities of min/max.
        self.stats.min = self.stats.min.min(other.stats.min);
        self.stats.max = self.stats.max.max(other.stats.max);
    }
}

fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Sub-bucket precision bits of [`FineHistogram`]: each power-of-two
/// decade is split into `2^FINE_SUB_BITS` linear sub-buckets.
const FINE_SUB_BITS: u32 = 4;
const FINE_SUBS: usize = 1 << FINE_SUB_BITS; // 16
/// Values below this are stored exactly (one bucket per value).
const FINE_EXACT: u64 = 2 * FINE_SUBS as u64; // 32
/// First power-of-two decade that uses sub-bucketing.
const FINE_FIRST_DECADE: u32 = FINE_EXACT.trailing_zeros(); // 5
const FINE_BUCKETS: usize = FINE_EXACT as usize + (64 - FINE_FIRST_DECADE as usize) * FINE_SUBS;

/// A log-linear histogram with ~6% worst-case relative quantile error —
/// fine enough for operations-grade p99/p999 readouts.
///
/// [`Histogram`]'s pure power-of-two buckets resolve a quantile only to a
/// factor of 2, which is fine for occupancy forensics but too blunt for a
/// serving SLO ("p999 latency-to-deterministic-return"). `FineHistogram`
/// splits each power-of-two decade into 16 linear sub-buckets (the
/// HDR-histogram trick): values below 32 are exact, and above that a
/// reported quantile overshoots the true one by at most `1/16` of the
/// decade width. Memory stays fixed at 976 counters.
///
/// ```
/// use vpnm_sim::FineHistogram;
/// let mut h = FineHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p99 = h.quantile(0.99).unwrap();
/// assert!((990..=1023).contains(&p99)); // within one sub-bucket of 990
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FineHistogram {
    buckets: Vec<u64>,
    total: u64,
    stats: RunningStatsMirror,
}

impl Default for FineHistogram {
    fn default() -> Self {
        FineHistogram {
            buckets: vec![0; FINE_BUCKETS],
            total: 0,
            stats: RunningStatsMirror::default(),
        }
    }
}

impl FineHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn index(value: u64) -> usize {
        if value < FINE_EXACT {
            value as usize
        } else {
            let decade = 63 - value.leading_zeros();
            let sub = (value >> (decade - FINE_SUB_BITS)) as usize & (FINE_SUBS - 1);
            FINE_EXACT as usize + (decade - FINE_FIRST_DECADE) as usize * FINE_SUBS + sub
        }
    }

    /// The inclusive lower bound of bucket `i`.
    fn lower_bound(i: usize) -> u64 {
        if i < FINE_EXACT as usize {
            i as u64
        } else {
            let b = i - FINE_EXACT as usize;
            let decade = FINE_FIRST_DECADE + (b / FINE_SUBS) as u32;
            let sub = (b % FINE_SUBS) as u64;
            (1u64 << decade) + (sub << (decade - FINE_SUB_BITS))
        }
    }

    /// The inclusive upper bound of bucket `i`.
    fn upper_bound(i: usize) -> u64 {
        if i + 1 >= FINE_BUCKETS {
            u64::MAX
        } else {
            Self::lower_bound(i + 1) - 1
        }
    }

    /// Records one sample. The sum saturates at `u64::MAX`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in O(1); exactly equivalent to `n`
    /// single [`record`](Self::record) calls.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index(value)] += n;
        self.total += n;
        self.stats.sum = self.stats.sum.saturating_add(value.saturating_mul(n));
        self.stats.min = self.stats.min.min(value);
        self.stats.max = self.stats.max.max(value);
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.stats.sum
    }

    /// Exact mean of all recorded samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.stats.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.stats.min)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.stats.max)
        }
    }

    /// Quantile `q` in `[0,1]`, resolved to sub-bucket upper bounds
    /// (clamped to the exact max): ≤ ~6% relative error, exact for
    /// values below 32. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::upper_bound(i).min(self.stats.max));
            }
        }
        self.max()
    }

    /// Iterates over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::lower_bound(i), c))
    }

    /// Merges another histogram into this one (exact: bucket-wise sum
    /// plus saturating sidecars, same contract as [`Histogram::merge`]).
    pub fn merge(&mut self, other: &FineHistogram) {
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.total += other.total;
        self.stats.sum = self.stats.sum.saturating_add(other.stats.sum);
        self.stats.min = self.stats.min.min(other.stats.min);
        self.stats.max = self.stats.max.max(other.stats.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::new("x");
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x = 3");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("s");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn running_stats_single_sample() {
        let mut s = RunningStats::new();
        s.record(10);
        assert_eq!(s.mean(), 10.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(10));
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let samples: Vec<u64> = (0..100).map(|i| (i * 37) % 91).collect();
        let mut all = RunningStats::new();
        for &v in &samples {
            all.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &samples[..40] {
            a.record(v);
        }
        for &v in &samples[40..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_mean_and_extremes() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.total(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(4));
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5).unwrap() >= 500 / 2); // coarse: bucketed
        assert!(h.quantile(1.0).unwrap() >= 999);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let samples: Vec<u64> = (0..200).map(|i| (i * 13) % 97).collect();
        let mut all = Histogram::new();
        for &v in &samples {
            all.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &samples[..70] {
            a.record(v);
        }
        for &v in &samples[70..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a, all);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        let mut loop_h = Histogram::new();
        for (v, n) in [(0u64, 3u64), (5, 17), (1023, 1), (7, 0), (u64::MAX, 2)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_h.record(v);
            }
        }
        assert_eq!(bulk, loop_h);
        // Saturation corner: both paths pin the sum at u64::MAX.
        assert_eq!(bulk.sum(), u64::MAX);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 900, 1 << 40] {
            h.record(v);
        }
        let counts: Vec<(usize, u64)> =
            (0..64).filter(|&i| h.bucket_count(i) > 0).map(|i| (i, h.bucket_count(i))).collect();
        let rebuilt = Histogram::from_parts(&counts, h.sum(), h.min(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(Histogram::from_parts(&[], 0, None, None), Histogram::new());
    }

    #[test]
    fn histogram_bucket_lower_bounds() {
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(1), 2);
        assert_eq!(Histogram::bucket_lower_bound(6), 64);
        assert_eq!(Histogram::bucket_lower_bound(63), 1u64 << 63);
    }

    #[test]
    fn fine_histogram_index_bounds_are_consistent() {
        // Every probe value must land in a bucket whose [lower, upper]
        // range contains it, and indices must be monotone in the value.
        let probes: Vec<u64> = (0..200u64)
            .chain((5..64).flat_map(|d| {
                let base = 1u64.checked_shl(d).unwrap_or(u64::MAX);
                [base.saturating_sub(1), base, base.saturating_add(base / 3), u64::MAX]
            }))
            .collect();
        let mut last = 0usize;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for &v in &sorted {
            let i = FineHistogram::index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            assert!(FineHistogram::lower_bound(i) <= v, "lower bound exceeds {v}");
            assert!(v <= FineHistogram::upper_bound(i), "upper bound below {v}");
        }
        assert_eq!(FineHistogram::index(u64::MAX), FINE_BUCKETS - 1);
    }

    #[test]
    fn fine_histogram_quantile_error_is_bounded() {
        let mut h = FineHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 50_000u64), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.quantile(q).unwrap() as f64;
            let rel = (got - exact as f64) / exact as f64;
            assert!((0.0..=0.0625).contains(&rel), "q={q} got={got} exact={exact}");
        }
        assert_eq!(h.quantile(1.0), Some(100_000));
        assert_eq!(FineHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn fine_histogram_exact_below_32() {
        let mut h = FineHistogram::new();
        for v in 0..32u64 {
            h.record_n(v, v + 1);
        }
        // With exact buckets the quantile is the true order statistic.
        assert_eq!(h.total(), 32 * 33 / 2);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.sum(), (0..32u64).map(|v| v * (v + 1)).sum::<u64>());
    }

    #[test]
    fn fine_histogram_merge_matches_sequential() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 7919) % 12_345).collect();
        let mut all = FineHistogram::new();
        let mut a = FineHistogram::new();
        let mut b = FineHistogram::new();
        for (k, &v) in samples.iter().enumerate() {
            all.record(v);
            if k % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
        a.merge(&FineHistogram::new());
        assert_eq!(a, all);
    }

    #[test]
    fn fine_histogram_record_n_matches_repeated_record() {
        let mut bulk = FineHistogram::new();
        let mut loop_h = FineHistogram::new();
        for (v, n) in [(0u64, 3u64), (33, 17), (1023, 1), (7, 0), (1 << 40, 2)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_h.record(v);
            }
        }
        assert_eq!(bulk, loop_h);
    }

    #[test]
    fn histogram_iter_skips_empty() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(100);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (64, 1));
    }
}
