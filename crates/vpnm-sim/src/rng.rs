//! Deterministic seed derivation.
//!
//! Every randomized component in the workspace (hash key material, workload
//! generators, adversaries) takes its randomness from a seed derived off a
//! single root seed through [`SeedSequence`], so an entire experiment is
//! reproducible from one `u64` and independent components never share RNG
//! streams by accident.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, labeled child seeds from a root seed.
///
/// Derivation uses the SplitMix64 finalizer over `(root, label-hash,
/// counter)`, which is the standard method for decorrelating seed streams.
///
/// ```
/// use vpnm_sim::SeedSequence;
/// let mut seq = SeedSequence::new(42);
/// let a = seq.derive("hash-keys");
/// let b = seq.derive("workload");
/// assert_ne!(a, b);
/// // Deterministic: re-deriving from a fresh sequence yields the same seeds.
/// let mut seq2 = SeedSequence::new(42);
/// assert_eq!(seq2.derive("hash-keys"), a);
/// assert_eq!(seq2.derive("workload"), b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    root: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root, counter: 0 }
    }

    /// Derives the next child seed, mixed with a human-readable `label`.
    ///
    /// The label participates in the derivation, so reordering differently
    /// labeled derivations yields different seeds (catching accidental
    /// stream reuse), while the counter guarantees uniqueness for repeated
    /// labels.
    pub fn derive(&mut self, label: &str) -> u64 {
        let mut h = self.root;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        self.counter += 1;
        splitmix64(h ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives a ready-to-use [`StdRng`] for the given label.
    pub fn rng(&mut self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }
}

// Canonical implementation lives in vpnm-hash (one mixer for the whole
// workspace); re-exported here because all historical call sites import
// it from this module. Bit-identical to the previous in-crate copy.
pub use vpnm_hash::fast::{splitmix64, splitmix64_batch};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derivation_is_deterministic() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(7);
        for label in ["x", "y", "x", "z"] {
            assert_eq!(a.derive(label), b.derive(label));
        }
    }

    #[test]
    fn different_roots_differ() {
        let mut a = SeedSequence::new(1);
        let mut b = SeedSequence::new(2);
        assert_ne!(a.derive("l"), b.derive("l"));
    }

    #[test]
    fn repeated_labels_get_distinct_seeds() {
        let mut s = SeedSequence::new(0);
        let a = s.derive("same");
        let b = s.derive("same");
        assert_ne!(a, b);
    }

    #[test]
    fn rng_streams_are_independent() {
        let mut s = SeedSequence::new(99);
        let mut r1 = s.rng("one");
        let mut r2 = s.rng("two");
        let v1: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        let v2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn splitmix_mixes_low_bits() {
        // consecutive inputs should produce well-spread outputs
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }
}
