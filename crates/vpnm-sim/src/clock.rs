//! Cycle counters and the dual-rate clock domain of the VPNM paper.
//!
//! The VPNM memory controller straddles two clock domains (paper Section 4):
//! the *interface* side accepts at most one request per interface cycle,
//! while the *memory* side runs at a frequency `R` times higher (the *bus
//! scaling ratio*, `R > 1`) so that queued work drains faster than it
//! arrives. [`DualClock`] drives a simulation on the memory clock and tells
//! the caller on which memory cycles an interface cycle boundary falls.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in cycles of some clock domain.
///
/// `Cycle` is a transparent newtype over `u64`; which domain it refers to
/// (interface or memory) is by convention of the surrounding API.
///
/// ```
/// use vpnm_sim::Cycle;
/// let t = Cycle::new(10) + 5;
/// assert_eq!(t, Cycle::new(15));
/// assert_eq!(t - Cycle::new(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle — simulated time origin.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(value: u64) -> Self {
        Cycle(value)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - rhs`, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Distance in cycles between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

/// A single monotonically advancing clock.
///
/// ```
/// use vpnm_sim::Clock;
/// let mut clk = Clock::new();
/// assert_eq!(clk.now().as_u64(), 0);
/// clk.tick();
/// clk.advance(9);
/// assert_eq!(clk.now().as_u64(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        Clock { now: Cycle::ZERO }
    }

    /// The current cycle.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle and returns the new time.
    #[inline]
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `n` cycles.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.now += n;
    }
}

/// What happened on one memory-clock tick of a [`DualClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTick {
    /// The memory cycle that just elapsed (1-based count of completed ticks).
    pub memory_cycle: Cycle,
    /// `true` when an interface-clock edge falls on this memory cycle; the
    /// caller should run one interface cycle of work (accept a request,
    /// advance the circular delay buffer, emit a response).
    pub interface_tick: bool,
    /// The interface cycle count after this tick (number of completed
    /// interface cycles).
    pub interface_cycle: Cycle,
}

/// The VPNM dual clock: a memory clock running `R`× faster than the
/// interface clock.
///
/// Simulation is driven on the memory clock. Interface edges are scheduled
/// by an integer accumulator (Bresenham style) so that after `n` memory
/// ticks exactly `floor(n / R)` interface ticks have occurred, with no
/// floating-point drift: `R` is stored as a rational `num/den` derived from
/// its decimal expansion.
///
/// For `R = 1.0`, every memory tick is also an interface tick.
///
/// ```
/// use vpnm_sim::DualClock;
/// let mut d = DualClock::new(1.5);
/// let ticks: u32 = (0..15).map(|_| d.tick_memory().interface_tick as u32).sum();
/// assert_eq!(ticks, 10); // 15 memory cycles / 1.5 = 10 interface cycles
/// ```
#[derive(Debug, Clone)]
pub struct DualClock {
    /// `R` as a rational number `num/den` (memory ticks per interface tick).
    num: u64,
    den: u64,
    /// Accumulator for the Bresenham schedule, in units of `1/den` memory
    /// cycles. An interface edge fires whenever `acc >= num`.
    acc: u64,
    memory: Clock,
    interface: Clock,
}

impl DualClock {
    /// Creates a dual clock with bus scaling ratio `r` (memory frequency /
    /// interface frequency).
    ///
    /// `r` is converted to a rational with three decimal digits of
    /// precision, which is exact for all ratios used in the paper
    /// (1.0, 1.1, 1.2, 1.3, 1.4, 1.5).
    ///
    /// # Panics
    ///
    /// Panics if `r < 1.0` (the memory side must be at least as fast as the
    /// interface side) or `r` is not finite.
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite() && r >= 1.0, "bus scaling ratio must be >= 1.0, got {r}");
        let num = (r * 1000.0).round() as u64;
        let den = 1000;
        let g = gcd(num, den);
        DualClock {
            num: num / g,
            den: den / g,
            acc: 0,
            memory: Clock::new(),
            interface: Clock::new(),
        }
    }

    /// Creates a dual clock from an exact rational ratio `num / den`
    /// (memory ticks per interface tick).
    ///
    /// Unlike [`DualClock::new`], no decimal rounding is applied — the
    /// schedule is exact for any rational ratio. [`WallPacer`] uses this
    /// with `num` = nanoseconds per second and `den` = interface cycles
    /// per second, so wall-time pacing accrues zero drift over arbitrarily
    /// long runs.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num < den` (the memory side must be at
    /// least as fast as the interface side).
    pub fn from_rational(num: u64, den: u64) -> Self {
        assert!(den > 0, "ratio denominator must be non-zero");
        assert!(num >= den, "bus scaling ratio must be >= 1.0, got {num}/{den}");
        let g = gcd(num, den);
        DualClock {
            num: num / g,
            den: den / g,
            acc: 0,
            memory: Clock::new(),
            interface: Clock::new(),
        }
    }

    /// The configured ratio `R` as a float.
    pub fn ratio(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Advances the memory clock by one cycle, reporting whether an
    /// interface edge fell on this cycle.
    #[inline]
    pub fn tick_memory(&mut self) -> MemoryTick {
        self.memory.tick();
        self.acc += self.den;
        let interface_tick = self.acc >= self.num;
        if interface_tick {
            self.acc -= self.num;
            self.interface.tick();
        }
        MemoryTick {
            memory_cycle: self.memory.now(),
            interface_tick,
            interface_cycle: self.interface.now(),
        }
    }

    /// Advances the memory clock directly to the next interface edge,
    /// returning how many memory cycles elapsed (always `>= 1`).
    ///
    /// This is the idle fast-forward primitive: when a simulation knows no
    /// memory-domain work can happen before the next interface edge (no
    /// bank has queued requests, so every bus grant would be a no-op), it
    /// can skip the intermediate memory ticks in O(1) instead of looping
    /// [`DualClock::tick_memory`]. The resulting clock state — memory
    /// cycle, interface cycle, and Bresenham accumulator — is bit-for-bit
    /// identical to calling `tick_memory` repeatedly until
    /// `interface_tick` is true.
    ///
    /// ```
    /// use vpnm_sim::DualClock;
    /// let mut a = DualClock::new(1.3);
    /// let mut b = a.clone();
    /// let m = a.advance_to_interface();
    /// let mut n = 0;
    /// while !b.tick_memory().interface_tick {
    ///     n += 1;
    /// }
    /// assert_eq!(m, n + 1);
    /// assert_eq!(a.memory_now(), b.memory_now());
    /// assert_eq!(a.interface_now(), b.interface_now());
    /// ```
    pub fn advance_to_interface(&mut self) -> u64 {
        // The edge fires on the m-th tick where acc + m*den >= num, i.e.
        // m = ceil((num - acc) / den). The invariant acc < num between
        // calls guarantees m >= 1; afterwards acc' = acc + m*den - num,
        // which minimality of m keeps below den (hence below num).
        let d = self.num - self.acc;
        let m = d.div_ceil(self.den);
        self.acc = (self.den - d % self.den) % self.den;
        self.memory.advance(m);
        self.interface.tick();
        m
    }

    /// Advances past the next `n` interface edges in O(1), returning how
    /// many memory cycles elapsed.
    ///
    /// Equivalent to calling [`advance_to_interface`] `n` times: the n-th
    /// edge fires on the m-th memory tick where `acc + m*den >= n*num`,
    /// so `m = ceil((n*num - acc) / den)` and the accumulator lands on
    /// `acc + m*den - n*num`, exactly where the sequential walk leaves it
    /// (each intermediate edge subtracts one `num`; the sum telescopes,
    /// and `den <= num` means at most one edge fires per memory tick, so
    /// minimal total `m` equals the sum of the per-edge minimal steps).
    /// This is the event-horizon skip primitive: a simulation that knows
    /// the next `n` interface cycles are pure idle (no arrivals, no
    /// delay-ring retirements, no queued bank work) can jump the clock
    /// there without looping.
    ///
    /// `n = 0` is a no-op returning 0.
    ///
    /// [`advance_to_interface`]: Self::advance_to_interface
    pub fn advance_interfaces(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // The accumulator lands on m*den - d = (den - d % den) % den — the
        // remainder form avoids materializing m*den, which can exceed u64
        // even when the target does not. Stay in u64 on the hot path and
        // fall back to u128 when n*num itself overflows (a WallPacer
        // catching up after a long stall asks for billions of edges with
        // num = 1e9).
        let m = match n.checked_mul(self.num) {
            Some(target) => {
                let d = target - self.acc;
                self.acc = (self.den - d % self.den) % self.den;
                d.div_ceil(self.den)
            }
            None => {
                let d = u128::from(n) * u128::from(self.num) - u128::from(self.acc);
                let den = u128::from(self.den);
                self.acc = ((den - d % den) % den) as u64;
                d.div_ceil(den) as u64
            }
        };
        self.memory.advance(m);
        self.interface.advance(n);
        m
    }

    /// The largest `n` such that [`DualClock::advance_interfaces`]`(n)`
    /// would consume at most `m` memory cycles — i.e. how many whole
    /// interface cycles fit inside the next `m` memory ticks.
    ///
    /// Used by busy-horizon skips: a simulation that has computed "the
    /// next state-changing memory tick is `m + 1` ticks away" can skip
    /// exactly the interface cycles whose memory ticks all precede it,
    /// then step normally into the event. Returns 0 when not even one
    /// interface edge falls within `m` memory ticks.
    pub fn interfaces_within_memory(&self, m: u64) -> u64 {
        // advance_interfaces(n) consumes ceil((n*num - acc)/den) memory
        // ticks, which is <= m iff n*num <= m*den + acc. This sits on the
        // busy-horizon skip's hot path, so stay in u64 for the short
        // horizons skips actually see (den <= 1000 by construction).
        match m.checked_mul(self.den).and_then(|md| md.checked_add(self.acc)) {
            Some(md) => md / self.num,
            None => {
                ((u128::from(m) * u128::from(self.den) + u128::from(self.acc))
                    / u128::from(self.num)) as u64
            }
        }
    }

    /// Current memory-domain time.
    pub fn memory_now(&self) -> Cycle {
        self.memory.now()
    }

    /// Current interface-domain time.
    pub fn interface_now(&self) -> Cycle {
        self.interface.now()
    }
}

/// Maps elapsed wall-clock time to a budget of interface cycles — the
/// serving-side face of the paper's dual clock domain.
///
/// The offline bins drive the [`DualClock`] purely in simulated time; a
/// live serving loop instead has to answer "given that `t` nanoseconds of
/// wall time have passed, how many interface cycles is the line card
/// allowed to have accepted?" `WallPacer` reuses the same drift-free
/// Bresenham schedule by treating nanoseconds as the fast domain and
/// interface cycles as the slow domain: the ratio is the exact rational
/// `1e9 / cycles_per_sec`, so pacing accrues zero rounding error no
/// matter how long the server runs.
///
/// The pacer is deliberately pure — callers pass in elapsed nanoseconds
/// (from `Instant::elapsed()` or a test scalar), so the library stays
/// deterministic and the pacing schedule is unit-testable without
/// touching a real clock.
///
/// ```
/// use vpnm_sim::WallPacer;
/// let mut p = WallPacer::new(4_000_000); // 4M interface cycles per second
/// assert_eq!(p.cycles_due(1_000), 4);    // 1 us -> 4 cycles
/// assert_eq!(p.cycles_due(1_000), 0);    // no wall progress, no budget
/// assert_eq!(p.cycles_due(1_000_000_000), 4_000_000_000 / 1_000 - 4);
/// ```
#[derive(Debug, Clone)]
pub struct WallPacer {
    clock: DualClock,
    cycles_per_sec: u64,
}

/// One nanosecond tick per wall second — the fast-domain rate of
/// [`WallPacer`]'s internal [`DualClock`].
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl WallPacer {
    /// Creates a pacer issuing `cycles_per_sec` interface cycles per wall
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_sec` is zero or above 1e9 (one cycle per
    /// nanosecond is the finest schedule wall time can express here).
    pub fn new(cycles_per_sec: u64) -> Self {
        assert!(
            cycles_per_sec > 0 && cycles_per_sec <= NANOS_PER_SEC,
            "cycles_per_sec must be in 1..=1e9, got {cycles_per_sec}"
        );
        WallPacer { clock: DualClock::from_rational(NANOS_PER_SEC, cycles_per_sec), cycles_per_sec }
    }

    /// The configured interface-cycle rate, in cycles per wall second.
    pub fn cycles_per_sec(&self) -> u64 {
        self.cycles_per_sec
    }

    /// Given total elapsed wall nanoseconds since the pacer was created,
    /// returns how many further interface cycles have become due and
    /// marks them issued.
    ///
    /// Monotone and exact: summing the returns over any call pattern with
    /// the same final `elapsed_nanos` yields the same total. A stale
    /// `elapsed_nanos` (less than a previous call's) is treated as no
    /// progress and returns 0.
    pub fn cycles_due(&mut self, elapsed_nanos: u64) -> u64 {
        let budget = elapsed_nanos.saturating_sub(self.clock.memory_now().as_u64());
        let n = self.clock.interfaces_within_memory(budget);
        self.clock.advance_interfaces(n);
        n
    }

    /// Total interface cycles issued so far.
    pub fn cycles_issued(&self) -> u64 {
        self.clock.interface_now().as_u64()
    }

    /// Nanoseconds from `elapsed_nanos` until the next interface cycle
    /// becomes due — a sleep hint for the serving loop. Returns 0 when a
    /// cycle is already due.
    pub fn nanos_until_next(&self, elapsed_nanos: u64) -> u64 {
        let mut probe = self.clock.clone();
        let m = probe.advance_to_interface();
        let next_due = self.clock.memory_now().as_u64() + m;
        next_due.saturating_sub(elapsed_nanos)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(5);
        assert_eq!(a + 3, Cycle::new(8));
        assert_eq!(Cycle::new(8) - a, 3);
        assert_eq!(a.saturating_sub(Cycle::new(9)), 0);
        assert_eq!(Cycle::from(7u64).as_u64(), 7);
        assert_eq!(u64::from(Cycle::new(7)), 7);
    }

    #[test]
    fn cycle_display_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "cycle 3");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn cycle_sub_underflow_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn clock_ticks_and_advances() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Cycle::ZERO);
        assert_eq!(c.tick(), Cycle::new(1));
        c.advance(10);
        assert_eq!(c.now(), Cycle::new(11));
    }

    #[test]
    fn dual_clock_unity_ratio_ticks_every_cycle() {
        let mut d = DualClock::new(1.0);
        for i in 1..=100u64 {
            let t = d.tick_memory();
            assert!(t.interface_tick);
            assert_eq!(t.memory_cycle.as_u64(), i);
            assert_eq!(t.interface_cycle.as_u64(), i);
        }
    }

    #[test]
    fn dual_clock_r13_exact_long_run() {
        let mut d = DualClock::new(1.3);
        let mut iface = 0u64;
        for _ in 0..1_300_000 {
            if d.tick_memory().interface_tick {
                iface += 1;
            }
        }
        assert_eq!(iface, 1_000_000);
        assert_eq!(d.interface_now().as_u64(), 1_000_000);
        assert_eq!(d.memory_now().as_u64(), 1_300_000);
    }

    #[test]
    fn dual_clock_interface_never_leads_memory() {
        for &r in &[1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0] {
            let mut d = DualClock::new(r);
            for _ in 0..10_000 {
                let t = d.tick_memory();
                // interface ticks can never exceed memory ticks / 1.0
                assert!(t.interface_cycle.as_u64() <= t.memory_cycle.as_u64());
                // and never lag more than ratio implies (within one tick)
                let expected = (t.memory_cycle.as_u64() as f64 / r).floor() as u64;
                let got = t.interface_cycle.as_u64();
                assert!(
                    got == expected || got + 1 == expected || got == expected + 1,
                    "r={r} mem={} iface={got} expected~{expected}",
                    t.memory_cycle.as_u64()
                );
            }
        }
    }

    #[test]
    fn advance_to_interface_matches_tick_loop_for_all_ratios() {
        // Interleave fast-forwards with single ticks so every accumulator
        // phase is exercised, and check the fast path reproduces the
        // looped path exactly (memory cycles, interface cycles, and the
        // position of the *next* edge).
        for &r in &[1.0, 1.1, 1.2, 1.25, 1.3, 1.4, 1.5, 2.0, 3.7] {
            let mut fast = DualClock::new(r);
            let mut slow = DualClock::new(r);
            for round in 0..200u32 {
                if round % 3 == 0 {
                    // Desynchronize from the edge: run a few raw memory
                    // ticks on both clocks (they stay in lockstep).
                    for _ in 0..(round % 5) {
                        let a = fast.tick_memory();
                        let b = slow.tick_memory();
                        assert_eq!(a, b, "r={r} round={round}");
                    }
                }
                let m = fast.advance_to_interface();
                let mut n = 0u64;
                loop {
                    n += 1;
                    if slow.tick_memory().interface_tick {
                        break;
                    }
                }
                assert_eq!(m, n, "r={r} round={round}");
                assert_eq!(fast.memory_now(), slow.memory_now(), "r={r}");
                assert_eq!(fast.interface_now(), slow.interface_now(), "r={r}");
                assert_eq!(fast.acc, slow.acc, "r={r} round={round}");
            }
        }
    }

    #[test]
    fn advance_interfaces_matches_sequential_advances() {
        // The closed-form n-edge jump must land on the same memory cycle,
        // interface cycle, and accumulator phase as n single-edge
        // fast-forwards, from every accumulator phase.
        for &r in &[1.0, 1.1, 1.2, 1.25, 1.3, 1.4, 1.5, 1.7, 2.0, 3.7] {
            let mut bulk = DualClock::new(r);
            let mut seq = DualClock::new(r);
            for round in 0..120u64 {
                // Desynchronize from the edge with a few raw ticks.
                for _ in 0..(round % 4) {
                    bulk.tick_memory();
                    seq.tick_memory();
                }
                let n = round % 7;
                let m_bulk = bulk.advance_interfaces(n);
                let mut m_seq = 0u64;
                for _ in 0..n {
                    m_seq += seq.advance_to_interface();
                }
                assert_eq!(m_bulk, m_seq, "r={r} round={round} n={n}");
                assert_eq!(bulk.memory_now(), seq.memory_now(), "r={r} round={round}");
                assert_eq!(bulk.interface_now(), seq.interface_now(), "r={r} round={round}");
                assert_eq!(bulk.acc, seq.acc, "r={r} round={round}");
            }
        }
    }

    #[test]
    fn interfaces_within_memory_is_the_exact_inverse_of_advance() {
        // For every ratio and accumulator phase, the reported n must
        // satisfy cost(n) <= m < cost(n + 1), where cost is the memory
        // ticks advance_interfaces would consume.
        for &r in &[1.0, 1.1, 1.25, 1.3, 1.5, 2.0, 3.7] {
            let mut clk = DualClock::new(r);
            for phase in 0..40u64 {
                for _ in 0..(phase % 5) {
                    clk.tick_memory();
                }
                for m in 0..12u64 {
                    let n = clk.interfaces_within_memory(m);
                    let cost = |edges: u64| clk.clone().advance_interfaces(edges);
                    assert!(cost(n) <= m, "r={r} phase={phase} m={m} n={n}");
                    assert!(cost(n + 1) > m, "r={r} phase={phase} m={m} n={n}");
                }
            }
        }
    }

    #[test]
    fn advance_interfaces_zero_is_noop() {
        let mut d = DualClock::new(1.3);
        d.tick_memory();
        let before = (d.memory_now(), d.interface_now(), d.acc);
        assert_eq!(d.advance_interfaces(0), 0);
        assert_eq!((d.memory_now(), d.interface_now(), d.acc), before);
    }

    #[test]
    fn advance_to_interface_is_one_cycle_at_unity_ratio() {
        let mut d = DualClock::new(1.0);
        for i in 1..=50u64 {
            assert_eq!(d.advance_to_interface(), 1);
            assert_eq!(d.memory_now().as_u64(), i);
            assert_eq!(d.interface_now().as_u64(), i);
        }
    }

    #[test]
    fn dual_clock_ratio_roundtrip() {
        assert!((DualClock::new(1.3).ratio() - 1.3).abs() < 1e-12);
        assert!((DualClock::new(1.0).ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bus scaling ratio")]
    fn dual_clock_rejects_sub_unity() {
        let _ = DualClock::new(0.9);
    }

    #[test]
    fn from_rational_matches_decimal_constructor() {
        // 1.3 == 13/10: both constructors must produce the same schedule.
        let mut a = DualClock::new(1.3);
        let mut b = DualClock::from_rational(13, 10);
        for _ in 0..10_000 {
            assert_eq!(a.tick_memory(), b.tick_memory());
        }
    }

    #[test]
    #[should_panic(expected = "bus scaling ratio")]
    fn from_rational_rejects_sub_unity() {
        let _ = DualClock::from_rational(9, 10);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn from_rational_rejects_zero_den() {
        let _ = DualClock::from_rational(1, 0);
    }

    #[test]
    fn wall_pacer_exact_over_a_simulated_hour() {
        // 7_777_777 cycles/s is deliberately non-round: the rational
        // schedule must still land on exactly cps * seconds with zero
        // cumulative drift, regardless of the polling pattern.
        let cps = 7_777_777u64;
        let mut p = WallPacer::new(cps);
        let mut issued = 0u64;
        let mut now = 0u64;
        let end = 3_600 * 1_000_000_000;
        let steps = [1u64, 999, 1_000_000, 17, 500_000_000, 3];
        while now < end {
            let dt = steps[(now % steps.len() as u64) as usize];
            now = (now + dt).min(end);
            issued += p.cycles_due(now);
        }
        assert_eq!(issued, cps * 3_600);
        assert_eq!(p.cycles_issued(), issued);
    }

    #[test]
    fn wall_pacer_stale_elapsed_is_no_progress() {
        let mut p = WallPacer::new(1_000_000);
        assert_eq!(p.cycles_due(10_000), 10);
        assert_eq!(p.cycles_due(5_000), 0); // clock went "backwards"
        assert_eq!(p.cycles_due(10_000), 0); // still no new progress
        assert_eq!(p.cycles_due(11_000), 1);
    }

    #[test]
    fn wall_pacer_sleep_hint_lands_on_next_edge() {
        let mut p = WallPacer::new(1_000_000); // 1000 ns per cycle
        assert_eq!(p.cycles_due(1_500), 1);
        let hint = p.nanos_until_next(1_500);
        assert_eq!(hint, 500); // next edge at 2000 ns
        assert_eq!(p.cycles_due(1_500 + hint), 1);
        // When an edge is already overdue the hint is zero.
        assert_eq!(p.nanos_until_next(5_000), 0);
    }

    #[test]
    #[should_panic(expected = "cycles_per_sec")]
    fn wall_pacer_rejects_zero_rate() {
        let _ = WallPacer::new(0);
    }

    #[test]
    #[should_panic(expected = "cycles_per_sec")]
    fn wall_pacer_rejects_rates_above_one_cycle_per_nano() {
        // 1e9 + 1 cycles/s would need a sub-nanosecond schedule.
        let _ = WallPacer::new(NANOS_PER_SEC + 1);
    }

    #[test]
    fn from_rational_reduces_degenerate_unity_ratios() {
        // num == den at any magnitude is exactly R = 1: every memory tick
        // is an interface tick, and the stored rational reduces to 1/1 so
        // the accumulator never grows.
        let mut d = DualClock::from_rational(NANOS_PER_SEC, NANOS_PER_SEC);
        assert_eq!((d.num, d.den), (1, 1));
        for i in 1..=1000u64 {
            let t = d.tick_memory();
            assert!(t.interface_tick);
            assert_eq!(t.interface_cycle.as_u64(), i);
        }
    }

    #[test]
    fn from_rational_is_exact_beyond_decimal_precision() {
        // A ratio no 3-digit decimal expansion can express: 1e9+7 (prime)
        // over 1e9. The closed-form jump must land on exactly
        // ceil(n * num / den) memory cycles — one extra tick leaks in only
        // once every ~143M interface cycles, and never before.
        let num = 1_000_000_007u64;
        let den = 1_000_000_000u64;
        let mut d = DualClock::from_rational(num, den);
        assert_eq!((d.num, d.den), (num, den), "coprime ratio must not reduce");
        for n in [1u64, 12_345, 1_000_000] {
            let mut probe = DualClock::from_rational(num, den);
            let m = probe.advance_interfaces(n);
            let expected = (u128::from(n) * u128::from(num)).div_ceil(u128::from(den)) as u64;
            assert_eq!(m, expected, "n={n}");
        }
        // And the incremental walk agrees with the jump at a small scale.
        let mut ticks = 0u64;
        for _ in 0..1_000 {
            d.advance_to_interface();
            ticks += 1;
        }
        assert_eq!(d.interface_now().as_u64(), ticks);
        assert_eq!(d.memory_now().as_u64(), 1_001); // ceil(1000 * (1e9+7)/1e9)
    }

    #[test]
    fn interfaces_within_memory_survives_u64_overflow_horizons() {
        // m * den overflows u64 for huge horizons; the u128 fallback must
        // give the same exact answer the closed form predicts.
        let mut d = DualClock::from_rational(13, 10);
        d.tick_memory(); // non-zero accumulator phase (acc = 10)
        let m = u64::MAX / 2;
        let n = d.interfaces_within_memory(m);
        let expected = ((u128::from(m) * 10 + u128::from(d.acc)) / 13) as u64;
        assert_eq!(n, expected);
        // Sanity at the extreme horizon too.
        assert_eq!(
            d.interfaces_within_memory(u64::MAX),
            ((u128::from(u64::MAX) * 10 + u128::from(d.acc)) / 13) as u64
        );
    }

    #[test]
    fn wall_pacer_at_the_boundary_rate_is_one_cycle_per_nano() {
        // cps = 1e9 reduces the internal ratio to 1/1: wall time and the
        // cycle budget are the same axis.
        let mut p = WallPacer::new(NANOS_PER_SEC);
        assert_eq!(p.cycles_due(1), 1);
        assert_eq!(p.cycles_due(1_000_000), 1_000_000 - 1);
        assert_eq!(p.nanos_until_next(1_000_000), 1);
    }

    #[test]
    fn wall_pacer_slowest_rate_fires_once_per_second() {
        let mut p = WallPacer::new(1);
        assert_eq!(p.cycles_due(NANOS_PER_SEC - 1), 0);
        assert_eq!(p.cycles_due(NANOS_PER_SEC), 1);
        assert_eq!(p.nanos_until_next(NANOS_PER_SEC), NANOS_PER_SEC);
        assert_eq!(p.cycles_due(3 * NANOS_PER_SEC + 500), 2);
    }

    #[test]
    fn wall_pacer_zero_drift_over_a_simulated_week() {
        // A rate coprime with 1e9 (999_999_999 = 3^4 * 37 * 333667), polled
        // at a coarse uneven cadence for 7 simulated days: the total must
        // be exactly cps * seconds. A float-based pacer accumulates ~1e-7
        // relative error per step and would be off by thousands of cycles
        // at this horizon.
        let cps = 999_999_999u64;
        let mut p = WallPacer::new(cps);
        let end = 7 * 24 * 3_600 * NANOS_PER_SEC;
        let mut now = 0u64;
        let mut issued = 0u64;
        let steps = [59 * NANOS_PER_SEC, 61 * NANOS_PER_SEC + 13, 37, 600 * NANOS_PER_SEC + 1];
        let mut i = 0usize;
        while now < end {
            now = (now + steps[i % steps.len()]).min(end);
            issued += p.cycles_due(now);
            i += 1;
        }
        assert_eq!(issued, cps * 7 * 24 * 3_600);
        assert_eq!(p.cycles_issued(), issued);
    }
}
