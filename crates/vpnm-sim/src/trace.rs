//! Bounded event tracing for debugging and timing-diagram rendering.
//!
//! The VPNM paper's Figure 1 illustrates the lifetime of individual memory
//! requests inside a bank controller ("in the pipeline" vs. "accessing the
//! bank"). [`TraceRecorder`] captures such per-request lifecycle events from
//! a simulation so they can be rendered as an ASCII timing diagram (see the
//! `fig1_timing` experiment binary).

use crate::clock::Cycle;
use std::collections::VecDeque;

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event occurred (interface cycles unless noted otherwise).
    pub at: Cycle,
    /// An id correlating all events of a single request.
    pub request: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// The lifecycle stages of a request inside a VPNM bank controller
/// (paper Section 4.2: pending → accessing → waiting → completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Request accepted at the interface and entered the virtual pipeline.
    Accepted,
    /// Request merged with an identical in-flight request (redundant access,
    /// paper Section 3.4) — no bank access needed.
    Merged,
    /// The bank access for this request was issued to DRAM.
    AccessIssued,
    /// The bank access completed; data is now waiting in the delay storage
    /// buffer.
    AccessDone,
    /// The result was played back to the interface at its deterministic
    /// deadline `t + D`.
    Completed,
    /// The request caused a stall and was rejected or blocked.
    Stalled,
}

impl TraceKind {
    /// Short single-character tag used in rendered diagrams.
    pub fn tag(self) -> char {
        match self {
            TraceKind::Accepted => 'a',
            TraceKind::Merged => 'm',
            TraceKind::AccessIssued => 'I',
            TraceKind::AccessDone => 'D',
            TraceKind::Completed => 'C',
            TraceKind::Stalled => 'S',
        }
    }
}

/// A bounded FIFO of [`TraceEvent`]s.
///
/// When capacity is exceeded the oldest events are dropped, so a recorder
/// can be left attached to a long simulation while only retaining the
/// interesting tail.
///
/// ```
/// use vpnm_sim::{Cycle, TraceEvent, TraceRecorder};
/// use vpnm_sim::trace::TraceKind;
///
/// let mut tr = TraceRecorder::with_capacity(2);
/// tr.record(Cycle::new(1), 100, TraceKind::Accepted);
/// tr.record(Cycle::new(2), 100, TraceKind::AccessIssued);
/// tr.record(Cycle::new(3), 100, TraceKind::Completed);
/// assert_eq!(tr.len(), 2); // oldest dropped
/// assert_eq!(tr.events().next().unwrap().at, Cycle::new(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceRecorder {
    /// A disabled recorder that drops everything (zero overhead fast path).
    pub fn disabled() -> Self {
        TraceRecorder { events: VecDeque::new(), capacity: 0, enabled: false, dropped: 0 }
    }

    /// A recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether events are currently retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at: Cycle, request: u64, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at, request, kind });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Clears retained events (keeps the capacity and enabled state).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders a Figure-1-style ASCII timing diagram: one row per request,
    /// one column per cycle between the earliest and latest retained event.
    ///
    /// Row cells show the [`TraceKind::tag`] character at event cycles, `-`
    /// while the request is in flight, and spaces elsewhere. Returns an
    /// empty string when no events are retained or the span exceeds
    /// `max_width` columns.
    pub fn render_timing_diagram(&self, max_width: usize) -> String {
        if self.events.is_empty() {
            return String::new();
        }
        let t0 = self.events.iter().map(|e| e.at.as_u64()).min().unwrap();
        let t1 = self.events.iter().map(|e| e.at.as_u64()).max().unwrap();
        let width = (t1 - t0 + 1) as usize;
        if width > max_width {
            return String::new();
        }
        // Stable request order: by first event.
        let mut order: Vec<u64> = Vec::new();
        for e in &self.events {
            if !order.contains(&e.request) {
                order.push(e.request);
            }
        }
        let mut out = String::new();
        for req in order {
            let evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.request == req).collect();
            let first = evs.iter().map(|e| e.at.as_u64()).min().unwrap();
            let last = evs.iter().map(|e| e.at.as_u64()).max().unwrap();
            let mut row = vec![' '; width];
            for col in first..=last {
                row[(col - t0) as usize] = '-';
            }
            for e in &evs {
                row[(e.at.as_u64() - t0) as usize] = e.kind.tag();
            }
            out.push_str(&format!("req {req:>4} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut tr = TraceRecorder::disabled();
        tr.record(Cycle::new(1), 1, TraceKind::Accepted);
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut tr = TraceRecorder::with_capacity(3);
        for i in 0..5 {
            tr.record(Cycle::new(i), i, TraceKind::Accepted);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let first = tr.events().next().unwrap();
        assert_eq!(first.at, Cycle::new(2));
    }

    #[test]
    fn tags_are_distinct() {
        use TraceKind::*;
        let kinds = [Accepted, Merged, AccessIssued, AccessDone, Completed, Stalled];
        let mut tags: Vec<char> = kinds.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len());
    }

    #[test]
    fn diagram_renders_rows_per_request() {
        let mut tr = TraceRecorder::with_capacity(16);
        tr.record(Cycle::new(0), 1, TraceKind::Accepted);
        tr.record(Cycle::new(5), 1, TraceKind::Completed);
        tr.record(Cycle::new(2), 2, TraceKind::Accepted);
        tr.record(Cycle::new(7), 2, TraceKind::Completed);
        let d = tr.render_timing_diagram(80);
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('a'));
        assert!(lines[0].contains('C'));
        // request 1 spans cols 0..=5, request 2 cols 2..=7
        assert!(lines[1].starts_with("req    2 |  a"));
    }

    #[test]
    fn diagram_empty_and_too_wide() {
        let tr = TraceRecorder::with_capacity(4);
        assert_eq!(tr.render_timing_diagram(10), "");
        let mut tr = TraceRecorder::with_capacity(4);
        tr.record(Cycle::new(0), 1, TraceKind::Accepted);
        tr.record(Cycle::new(1000), 1, TraceKind::Completed);
        assert_eq!(tr.render_timing_diagram(10), "");
    }

    #[test]
    fn clear_retains_settings() {
        let mut tr = TraceRecorder::with_capacity(4);
        tr.record(Cycle::new(0), 1, TraceKind::Accepted);
        tr.clear();
        assert!(tr.is_empty());
        assert!(tr.is_enabled());
    }
}
