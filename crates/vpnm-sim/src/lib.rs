//! Simulation substrate for the Virtually Pipelined Network Memory (VPNM)
//! reproduction.
//!
//! This crate provides the domain-independent machinery every other crate in
//! the workspace builds on:
//!
//! * [`Cycle`] and [`Clock`] — a monotonically advancing cycle counter.
//! * [`DualClock`] — the two-rate clock domain of the VPNM paper (memory bus
//!   running `R`× faster than the request interface, Section 4 of the paper).
//! * [`stats`] — counters, running means, and power-of-two histograms used
//!   for throughput/latency/occupancy accounting.
//! * [`trace`] — a bounded event recorder for debugging and for rendering
//!   Figure-1-style timing diagrams.
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single root seed.
//!
//! # Example
//!
//! ```
//! use vpnm_sim::{Clock, DualClock};
//!
//! // Memory clock runs 1.3x faster than the interface clock (R = 1.3).
//! let mut dual = DualClock::new(1.3);
//! let mut interface_ticks = 0u64;
//! for _ in 0..13_000 {
//!     if dual.tick_memory().interface_tick {
//!         interface_ticks += 1;
//!     }
//! }
//! // 13_000 memory cycles / 1.3 = 10_000 interface cycles.
//! assert_eq!(interface_ticks, 10_000);
//!
//! let mut clk = Clock::new();
//! clk.advance(42);
//! assert_eq!(clk.now().as_u64(), 42);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod rng;
pub mod stats;
pub mod trace;

pub use clock::{Clock, Cycle, DualClock, MemoryTick, WallPacer};
pub use rng::SeedSequence;
pub use stats::{Counter, FineHistogram, Histogram, RunningStats};
pub use trace::{TraceEvent, TraceRecorder};
