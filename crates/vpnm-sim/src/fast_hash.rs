//! A fast integer-keyed hasher for simulator-internal maps.
//!
//! The hot data path performs several `HashMap` operations per simulated
//! cycle (the delay-storage CAM, the sparse DRAM cell store). The standard
//! library's default SipHash is DoS-resistant but costs tens of
//! nanoseconds per probe — overkill for maps keyed by simulator-internal
//! `u64` indices that no external party controls. [`FastHasher`] runs a
//! SplitMix64 finalizer over integer writes: two multiplies and three
//! xor-shifts, full avalanche, ~1 ns.
//!
//! Not for adversary-facing state: bank selection uses the keyed
//! universal families in `vpnm-hash`, never this.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64-finalizer hasher for integer keys (byte slices fold through
/// an FNV-style loop first, so non-integer keys still hash correctly).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fold, then the finalizer on top.
        let mut acc = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = mix(acc);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix(self.state.wrapping_add(i).wrapping_add(0x9e37_79b9_7f4a_7c15));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` with [`FastHasher`] — drop-in for simulator-internal maps.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 97, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 97)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn avalanche_on_sequential_keys() {
        // Sequential keys must spread across the full 64-bit range —
        // identical low bits would degenerate the map to a linked list.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| {
                let mut h = FastHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let low_bits: FastHashSet<u64> = hashes.iter().map(|h| h & 0xFFF).collect();
        assert!(low_bits.len() >= 60, "low bits collide: {}", low_bits.len());
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FastHasher::default();
        a.write(b"hello");
        let mut b = FastHasher::default();
        b.write(b"hello");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"hellp");
        assert_ne!(a.finish(), c.finish());
    }
}
