//! Fast integer-keyed hashing for simulator-internal maps.
//!
//! The canonical implementation lives in [`vpnm_hash::fast`] so the
//! workspace has exactly one SplitMix64 mixer to optimize; this module
//! re-exports it unchanged (hash values are bit-identical to the previous
//! in-crate copy). See that module for the rationale and the warning
//! about adversary-facing state.

pub use vpnm_hash::fast::{FastHashMap, FastHashSet, FastHasher};
