//! Criterion bench: cost of the MTS analyses themselves — these run
//! thousands of times inside the Figure 7 design-space sweep, so their
//! performance matters for the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpnm_analysis::dsb::{dsb_mts, paper_delay};
use vpnm_analysis::markov::BankQueueModel;

fn bench_dsb_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/dsb_mts");
    group.bench_function("b32_k128_d1280", |b| {
        b.iter(|| std::hint::black_box(dsb_mts(32, 128, paper_delay(64, 20))));
    });
    group.finish();
}

fn bench_markov_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/markov_banded_solve");
    for q in [16u64, 32, 64] {
        group.bench_function(BenchmarkId::from_parameter(format!("b32_l20_q{q}")), |b| {
            b.iter(|| std::hint::black_box(BankQueueModel::new(32, 20, q, 1.3).mts_cycles()));
        });
    }
    group.finish();
}

fn bench_absorption_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/absorption_probability");
    group.bench_function("b8_l8_q4_t10000", |b| {
        let model = BankQueueModel::new(8, 8, 4, 1.3);
        b.iter(|| std::hint::black_box(model.absorption_probability(10_000)));
    });
    group.finish();
}

criterion_group!(benches, bench_dsb_formula, bench_markov_solve, bench_absorption_evolution);
criterion_main!(benches);
