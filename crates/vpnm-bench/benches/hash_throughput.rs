//! Criterion bench: software throughput of the universal hash families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vpnm_hash::{
    AffinePermutation, BankHasher, H3Hash, LowBitsHash, MultiplyShiftHash, TabulationHash,
};

fn bench_families(c: &mut Criterion) {
    let n = 4096u64;
    let mut group = c.benchmark_group("hash/bank_of");
    group.throughput(Throughput::Elements(n));

    let h3 = H3Hash::from_seed(32, 5, 1);
    let ms = MultiplyShiftHash::from_seed(5, 2);
    let tab = TabulationHash::from_seed(5, 3);
    let aff = AffinePermutation::from_seed(32, 5, 4);
    let low = LowBitsHash::new(5);

    fn run<H: BankHasher>(h: &H, n: u64) -> u64 {
        let mut acc = 0u64;
        for a in 0..n {
            acc = acc.wrapping_add(u64::from(h.bank_of(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))));
        }
        acc
    }

    group.bench_function(BenchmarkId::from_parameter("h3"), |b| {
        b.iter(|| std::hint::black_box(run(&h3, n)));
    });
    group.bench_function(BenchmarkId::from_parameter("multiply_shift"), |b| {
        b.iter(|| std::hint::black_box(run(&ms, n)));
    });
    group.bench_function(BenchmarkId::from_parameter("tabulation"), |b| {
        b.iter(|| std::hint::black_box(run(&tab, n)));
    });
    group.bench_function(BenchmarkId::from_parameter("affine_permutation"), |b| {
        b.iter(|| std::hint::black_box(run(&aff, n)));
    });
    group.bench_function(BenchmarkId::from_parameter("low_bits"), |b| {
        b.iter(|| std::hint::black_box(run(&low, n)));
    });
    group.finish();
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash/keygen");
    group.bench_function("h3_32x5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(H3Hash::from_seed(32, 5, seed))
        });
    });
    group.bench_function("affine_invertible_32", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(AffinePermutation::from_seed(32, 5, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_families, bench_keygen);
criterion_main!(benches);
