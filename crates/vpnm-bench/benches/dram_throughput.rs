//! Criterion bench: raw DRAM device simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::Cycle;

fn bench_interleaved_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram/interleaved");
    let accesses = 8192u64;
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("round_robin_32banks", |b| {
        b.iter_batched(
            || DramDevice::new(DramConfig::paper_rdram()),
            |mut dram| {
                for i in 0..accesses {
                    let bank = (i % 32) as u32;
                    let now = Cycle::new(i);
                    let _ =
                        std::hint::black_box(dram.issue_write(bank, i % 1024, vec![0u8; 8], now));
                }
                dram
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_conflict_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram/conflict_heavy");
    let accesses = 8192u64;
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("single_bank_hammer", |b| {
        b.iter_batched(
            || DramDevice::new(DramConfig::paper_rdram()),
            |mut dram| {
                for i in 0..accesses {
                    let _ = std::hint::black_box(dram.issue_read(0, i % 64, Cycle::new(i)));
                }
                dram
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_interleaved_access, bench_conflict_heavy);
criterion_main!(benches);
