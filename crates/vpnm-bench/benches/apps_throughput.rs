//! Criterion bench: simulation throughput of the data-plane applications
//! (cells or chunks processed per second of wall time).

use criterion::{criterion_group, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_apps::packet_buffer::{BufferEvent, VpnmPacketBuffer};
use vpnm_apps::reassembly::ReassemblyEngine;
use vpnm_apps::serve::{run_serve, ArrivalSource, FlowMix, ServeConfig};
use vpnm_apps::EngineOpts;
use vpnm_bench::report::{merge_bench_json, BenchRecord};
use vpnm_core::{VpnmConfig, VpnmController};
use vpnm_workloads::packets::payload_bytes;

fn bench_packet_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps/packet_buffer");
    let slots = 4096u64;
    group.throughput(Throughput::Elements(slots));
    group.bench_function("paper_optimal_64q", |b| {
        b.iter_batched(
            || {
                let buf = VpnmPacketBuffer::new(
                    VpnmConfig { addr_bits: 24, ..VpnmConfig::paper_optimal() },
                    64,
                    1 << 12,
                    1,
                )
                .expect("valid");
                (buf, StdRng::seed_from_u64(2))
            },
            |(mut buf, mut rng)| {
                let mut seqs = [0u64; 64];
                for slot in 0..slots {
                    let q = rng.gen_range(0..64u32);
                    let ev = if slot % 2 == 0 {
                        let s = seqs[q as usize];
                        seqs[q as usize] += 1;
                        Some(BufferEvent::Enqueue { queue: q, cell: payload_bytes(q, s, 64) })
                    } else if buf.occupancy(q) > 0 {
                        Some(BufferEvent::Dequeue { queue: q })
                    } else {
                        None
                    };
                    let _ = std::hint::black_box(buf.tick(ev));
                }
                buf
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps/reassembly");
    let chunks = 512u64;
    group.throughput(Throughput::Elements(chunks));
    group.bench_function("paper_optimal_16flows", |b| {
        b.iter_batched(
            || {
                let mem = VpnmController::new(VpnmConfig::paper_optimal(), 3).expect("valid");
                ReassemblyEngine::new(mem, 16, 1 << 10, 64)
            },
            |mut engine| {
                for i in 0..(chunks / 16) {
                    for f in 0..16u32 {
                        let data = payload_bytes(f, i, 64);
                        engine.submit_segment(f, i * 64, &data);
                    }
                }
                engine
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// End-to-end serving throughput: the full `run_serve` loop (producers,
/// ingress admission, flow table, epoch scheduling) over the packet
/// buffer, whose dense epochs now go through the memory's `issue_batch`
/// door. Elements = offered interface cycles, so `per_second / 1e6` reads
/// directly as simulated M cycles/s; packet Mpps is reported separately
/// by the serve bin's own `ServingMetrics::mpps`.
fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    let cfg = ServeConfig {
        engine: EngineOpts::default(),
        // 64-byte cells need a design point whose cell size matches
        // (test_roomy's is 8; undersized cells would reject every write).
        base: VpnmConfig { cell_bytes: 64, ..VpnmConfig::test_roomy() },
        producers: 2,
        cycles: 30_000,
        epoch_len: 1024,
        source: ArrivalSource::Synthetic {
            load: 0.45,
            mix: FlowMix::HeavyTail { space: 1 << 12, skew: 1.0 },
        },
        queue_depth: 512,
        cells_per_queue: 16,
        cell_bytes: 64,
        pace: None,
        seed: 42,
        verify: false,
    };
    group.throughput(Throughput::Elements(cfg.cycles));
    group.bench_function("mpps_batch", |b| {
        b.iter(|| {
            let report = run_serve(&cfg).expect("serve run");
            std::hint::black_box(report.serving.transmitted)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_packet_buffer, bench_reassembly, bench_serve);

fn main() {
    if std::env::var_os("BENCH_MEASURE_MS").is_none() {
        std::env::set_var("BENCH_MEASURE_MS", "800");
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_packet_buffer(&mut criterion);
    bench_reassembly(&mut criterion);
    bench_serve(&mut criterion);

    let records: Vec<BenchRecord> = criterion
        .measurements
        .iter()
        .map(|m| BenchRecord {
            id: m.id.clone(),
            ns_per_iter: m.ns_per_iter,
            per_second: m.per_second,
        })
        .collect();

    // Merge into the shared artifact (the controller bench owns the
    // rest of it) so `serve/mpps_batch` has a committed baseline the
    // verify gate can regress against.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    std::fs::write(path, merge_bench_json(&existing, &records, &[]))
        .expect("write BENCH_controller.json");
    println!("\nmerged {} records into {path}", records.len());
    let _ = benches; // criterion_group kept for cargo-criterion compatibility
}
