//! Criterion bench: simulation throughput of the VPNM controller model
//! (interface cycles simulated per second of wall time) across
//! configurations and traffic shapes.
//!
//! The fast engine (`VpnmController`, with its ready-bank index, shared
//! delay ring and idle fast-forward) is measured head-to-head against
//! `ReferenceController`, the retained original O(B)-per-cycle
//! formulation, on the same streams. A custom `main` (instead of
//! `criterion_main!`) collects every measurement and writes the
//! machine-readable `BENCH_controller.json` at the workspace root,
//! including the fast-vs-reference speedup on `paper_optimal` uniform
//! reads — the number the hot-path rework is accountable for.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_bench::report::{merge_bench_json, BenchRecord};
use vpnm_core::{
    ChannelSelect, FabricConfig, LineAddr, ReferenceController, Request, VpnmConfig,
    VpnmController, VpnmFabric,
};
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

const CYCLES: u64 = 10_000;

fn uniform_reads(space: u64, seed: u64) -> impl FnMut() -> Option<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    move || Some(Request::read(LineAddr(rng.gen_range(0..space))))
}

/// The batched front door: generator batch-fill + `run_reads_with`, so
/// the timed loop pays neither one generator call nor one `tick` call
/// per cycle, and responses fold into counters instead of a buffer.
/// `UniformAddresses` draws the identical stream the per-tick
/// `uniform_reads` closure draws (same `StdRng`, same range call).
fn bench_uniform_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/uniform_reads");
    for (name, config) in [
        ("small_test", VpnmConfig::small_test()),
        ("test_roomy", VpnmConfig::test_roomy()),
        ("paper_optimal", VpnmConfig::paper_optimal()),
    ] {
        group.throughput(Throughput::Elements(CYCLES));
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter_batched(
                || {
                    let mem = VpnmController::new(config.clone(), 7).expect("valid");
                    let space = 1u64 << mem.config().addr_bits;
                    (mem, UniformAddresses::new(space, 3), vec![0u64; CYCLES as usize])
                },
                |(mut mem, mut gen, mut addrs)| {
                    gen.fill_addrs(&mut addrs);
                    let mut served = 0u64;
                    let counts = mem.run_reads_with(&addrs, CYCLES, |r| {
                        served += r.completed_at.as_u64();
                    });
                    std::hint::black_box((counts, served));
                    mem
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The dense batch front door: a pre-built `Vec<Request>` issued through
/// `issue_batch`, which hashes whole chunks through `hash_batch` (SIMD on
/// AVX2 hosts) and prefetches bank/ring state ahead of the step loop.
/// Same stream as `controller/uniform_reads`, so the two IDs are directly
/// comparable.
fn bench_issue_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/issue_batch");
    for (name, config) in
        [("small_test", VpnmConfig::small_test()), ("paper_optimal", VpnmConfig::paper_optimal())]
    {
        group.throughput(Throughput::Elements(CYCLES));
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter_batched(
                || {
                    let mem = VpnmController::new(config.clone(), 7).expect("valid");
                    let space = 1u64 << mem.config().addr_bits;
                    let mut gen = UniformAddresses::new(space, 3);
                    let mut addrs = vec![0u64; CYCLES as usize];
                    gen.fill_addrs(&mut addrs);
                    let reqs: Vec<Request> =
                        addrs.iter().map(|&a| Request::read(LineAddr(a))).collect();
                    (mem, reqs)
                },
                |(mut mem, reqs)| {
                    std::hint::black_box(mem.issue_batch(&reqs));
                    mem
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The legacy cycle-at-a-time drive (one generator call + one `tick` per
/// cycle), retained under its own IDs so the cost of the per-tick front
/// door stays visible next to the batched one.
fn bench_uniform_reads_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/uniform_reads_tick");
    for (name, config) in
        [("small_test", VpnmConfig::small_test()), ("paper_optimal", VpnmConfig::paper_optimal())]
    {
        group.throughput(Throughput::Elements(CYCLES));
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter_batched(
                || {
                    let mem = VpnmController::new(config.clone(), 7).expect("valid");
                    let space = 1u64 << mem.config().addr_bits;
                    (mem, uniform_reads(space, 3))
                },
                |(mut mem, mut gen)| {
                    for _ in 0..CYCLES {
                        std::hint::black_box(mem.tick(gen()));
                    }
                    mem
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The same uniform-read stream through the retained O(B)-per-cycle
/// reference engine — the baseline the ≥3× speedup target is against.
fn bench_reference_uniform_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference/uniform_reads");
    for (name, config) in
        [("small_test", VpnmConfig::small_test()), ("paper_optimal", VpnmConfig::paper_optimal())]
    {
        group.throughput(Throughput::Elements(CYCLES));
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter_batched(
                || {
                    let mem = ReferenceController::new(config.clone(), 7).expect("valid");
                    let space = 1u64 << mem.config().addr_bits;
                    (mem, uniform_reads(space, 3))
                },
                |(mut mem, mut gen)| {
                    for _ in 0..CYCLES {
                        std::hint::black_box(mem.tick(gen()));
                    }
                    mem
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Bursty traffic with long idle gaps: the idle fast-forward's home turf.
/// Offered load is ~3%, so the fast engine skips almost every memory
/// cycle while the reference grinds through all of them.
fn bench_idle_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/bursty_idle");
    group.throughput(Throughput::Elements(CYCLES));
    let source = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut in_burst = 0u32;
        move || {
            if in_burst > 0 {
                in_burst -= 1;
                Some(Request::read(LineAddr(rng.gen_range(0..1u64 << 32))))
            } else {
                if rng.gen_bool(0.002) {
                    in_burst = 16;
                }
                None
            }
        }
    };
    group.bench_function("fast_paper_optimal", |bench| {
        // Batched front door: the trace is materialized once in setup, so
        // the timed region is pure `run_batch` — admission, event-horizon
        // skipping and response collection with no per-cycle callback.
        bench.iter_batched(
            || {
                let mut gen = source(9);
                let trace: Vec<Option<Request>> = (0..CYCLES).map(|_| gen()).collect();
                (VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"), trace)
            },
            |(mut mem, trace)| {
                std::hint::black_box(mem.run_batch(&trace, CYCLES));
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("fast_tick_paper_optimal", |bench| {
        // Legacy cycle-at-a-time drive of the same trace, kept alongside
        // the batched ID so the front-door cost stays measurable.
        bench.iter_batched(
            || (VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"), source(9)),
            |(mut mem, mut gen)| {
                std::hint::black_box(mem.run(CYCLES, |_| gen()));
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("reference_paper_optimal", |bench| {
        bench.iter_batched(
            || {
                (
                    ReferenceController::new(VpnmConfig::paper_optimal(), 7).expect("valid"),
                    source(9),
                )
            },
            |(mut mem, mut gen)| {
                for _ in 0..CYCLES {
                    std::hint::black_box(mem.tick(gen()));
                }
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Multi-channel fabric throughput, sequential lockstep (`seq/…`: one
/// `tick` per cycle, every channel stepped — the pre-epoch drive) against
/// the epoch-batched path (`par/…`: `run_epoch` with one worker per
/// channel). Fabrics persist across iterations so the parallel side
/// measures steady-state epochs, not pool spawns; uniform reads at full
/// rate, so each channel of a C-channel fabric sees ~1/C of the stream
/// and the epoch path's per-channel idle skipping and batched hashing do
/// real work even before threads help.
fn bench_fabric_uniform_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/uniform_reads");
    for channels in [1u32, 4, 8] {
        let fc = FabricConfig {
            channels,
            select: ChannelSelect::UniversalHash,
            base: VpnmConfig::paper_optimal(),
            qos: None,
        };
        let space = 1u64 << fc.base.addr_bits;
        group.throughput(Throughput::Elements(CYCLES));

        let mut fab = VpnmFabric::new(fc.clone(), 7).expect("valid");
        let mut gen = UniformAddresses::new(space, 3);
        let mut addrs = vec![0u64; CYCLES as usize];
        group.bench_function(BenchmarkId::new("seq", format!("{channels}ch")), |bench| {
            bench.iter(|| {
                gen.fill_addrs(&mut addrs);
                let mut served = 0u64;
                for &a in &addrs {
                    let out = fab.tick(Some(Request::read(LineAddr(a))));
                    served += out.response.map_or(0, |r| r.completed_at.as_u64());
                }
                std::hint::black_box(served);
            });
        });

        let mut fab = VpnmFabric::new(fc, 7).expect("valid");
        fab.set_workers(channels as usize);
        let mut gen = UniformAddresses::new(space, 3);
        let mut batch: Vec<Option<Request>> = Vec::with_capacity(CYCLES as usize);
        group.bench_function(BenchmarkId::new("par", format!("{channels}ch")), |bench| {
            bench.iter(|| {
                gen.fill_addrs(&mut addrs);
                batch.clear();
                batch.extend(addrs.iter().map(|&a| Some(Request::read(LineAddr(a)))));
                std::hint::black_box(fab.run_epoch(&batch));
            });
        });
    }
    group.finish();
}

fn bench_mixed_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/mixed_rw");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("paper_optimal_70r30w", |bench| {
        bench.iter_batched(
            || {
                (
                    VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"),
                    StdRng::seed_from_u64(5),
                    // one shared payload cell: steady state allocates nothing
                    bytes::Bytes::from(vec![0u8; 64]),
                )
            },
            |(mut mem, mut rng, payload)| {
                for _ in 0..CYCLES {
                    let addr = LineAddr(rng.gen_range(0..1u64 << 32));
                    let req = if rng.gen_bool(0.7) {
                        Request::read(addr)
                    } else {
                        Request::write(addr, payload.clone())
                    };
                    std::hint::black_box(mem.tick(Some(req)));
                }
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_merged_stream(c: &mut Criterion) {
    // The merging fast path: all reads hit one delay-storage row.
    let mut group = c.benchmark_group("controller/redundant_stream");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("paper_optimal_single_addr", |bench| {
        bench.iter_batched(
            || VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"),
            |mut mem| {
                for _ in 0..CYCLES {
                    std::hint::black_box(mem.tick(Some(Request::read(LineAddr(42)))));
                }
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_uniform_reads,
    bench_issue_batch,
    bench_uniform_reads_tick,
    bench_reference_uniform_reads,
    bench_fabric_uniform_reads,
    bench_idle_fast_forward,
    bench_mixed_traffic,
    bench_merged_stream
);

fn main() {
    // The headline number is a ratio of two of these measurements, so give
    // the median more samples than the 300 ms shim default (still override
    // able via the environment).
    if std::env::var_os("BENCH_MEASURE_MS").is_none() {
        std::env::set_var("BENCH_MEASURE_MS", "800");
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_uniform_reads(&mut criterion);
    bench_issue_batch(&mut criterion);
    bench_uniform_reads_tick(&mut criterion);
    bench_reference_uniform_reads(&mut criterion);
    bench_fabric_uniform_reads(&mut criterion);
    bench_idle_fast_forward(&mut criterion);
    bench_mixed_traffic(&mut criterion);
    bench_merged_stream(&mut criterion);

    let records: Vec<BenchRecord> = criterion
        .measurements
        .iter()
        .map(|m| BenchRecord {
            id: m.id.clone(),
            ns_per_iter: m.ns_per_iter,
            per_second: m.per_second,
        })
        .collect();
    let ns_of = |id: &str| {
        criterion
            .measurements
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let speedup_uniform = ns_of("reference/uniform_reads/paper_optimal")
        / ns_of("controller/uniform_reads/paper_optimal");
    let speedup_idle = ns_of("controller/bursty_idle/reference_paper_optimal")
        / ns_of("controller/bursty_idle/fast_paper_optimal");
    let speedup_fabric =
        ns_of("fabric/uniform_reads/seq/8ch") / ns_of("fabric/uniform_reads/par/8ch");
    let speedup_batch = ns_of("controller/uniform_reads_tick/paper_optimal")
        / ns_of("controller/issue_batch/paper_optimal");
    let summary = [
        ("speedup_fast_vs_reference_paper_optimal_uniform_reads", speedup_uniform),
        ("speedup_fast_vs_reference_paper_optimal_bursty_idle", speedup_idle),
        ("speedup_parallel_vs_sequential_8ch", speedup_fabric),
        ("speedup_issue_batch_vs_tick_paper_optimal", speedup_batch),
    ];

    // Merge rather than overwrite: the apps bench contributes its own
    // records (serve/mpps_batch and friends) to the same artifact.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    std::fs::write(path, merge_bench_json(&existing, &records, &summary))
        .expect("write BENCH_controller.json");
    println!("\nwrote {path}");
    println!("fast vs reference (paper_optimal, uniform reads): {speedup_uniform:.2}x");
    println!("fast vs reference (paper_optimal, bursty idle):   {speedup_idle:.2}x");
    println!("fabric epoch vs lockstep (8ch, uniform reads):    {speedup_fabric:.2}x");
    println!("issue_batch vs tick (paper_optimal, uniform):     {speedup_batch:.2}x");
    assert!(
        !(speedup_uniform.is_finite() && speedup_uniform < 1.0),
        "fast engine slower than the reference it replaced"
    );
    let _ = benches; // criterion_group kept for cargo-criterion compatibility
}
