//! Criterion bench: simulation throughput of the VPNM controller model
//! (interface cycles simulated per second of wall time) across
//! configurations and traffic shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_core::{LineAddr, Request, VpnmConfig, VpnmController};

fn bench_uniform_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/uniform_reads");
    for (name, config) in [
        ("small_test", VpnmConfig::small_test()),
        ("test_roomy", VpnmConfig::test_roomy()),
        ("paper_optimal", VpnmConfig::paper_optimal()),
    ] {
        let cycles = 10_000u64;
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter_batched(
                || {
                    let mem = VpnmController::new(config.clone(), 7).expect("valid");
                    let rng = StdRng::seed_from_u64(3);
                    (mem, rng)
                },
                |(mut mem, mut rng)| {
                    let space = 1u64 << mem.config().addr_bits;
                    for _ in 0..cycles {
                        let out =
                            mem.tick(Some(Request::Read { addr: LineAddr(rng.gen_range(0..space)) }));
                        std::hint::black_box(&out);
                    }
                    mem
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_mixed_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/mixed_rw");
    let cycles = 10_000u64;
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("paper_optimal_70r30w", |bench| {
        bench.iter_batched(
            || {
                (
                    VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"),
                    StdRng::seed_from_u64(5),
                )
            },
            |(mut mem, mut rng)| {
                for _ in 0..cycles {
                    let addr = LineAddr(rng.gen_range(0..1u64 << 32));
                    let req = if rng.gen_bool(0.7) {
                        Request::Read { addr }
                    } else {
                        Request::Write { addr, data: vec![0u8; 64] }
                    };
                    std::hint::black_box(mem.tick(Some(req)));
                }
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_merged_stream(c: &mut Criterion) {
    // The merging fast path: all reads hit one delay-storage row.
    let mut group = c.benchmark_group("controller/redundant_stream");
    let cycles = 10_000u64;
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("paper_optimal_single_addr", |bench| {
        bench.iter_batched(
            || VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid"),
            |mut mem| {
                for _ in 0..cycles {
                    std::hint::black_box(mem.tick(Some(Request::Read { addr: LineAddr(42) })));
                }
                mem
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_uniform_reads, bench_mixed_traffic, bench_merged_stream);
criterion_main!(benches);
