//! Long-horizon MTS campaign driver: sharded, checkpointed, resumable.
//!
//! The paper's headline guarantee is probabilistic — a stall once per
//! ~10¹³ accesses — so demonstrating it by simulation means horizons of
//! 10¹⁰⁺ interface cycles, far beyond a single `cargo test` run. This
//! module splits such a horizon into fixed-size **shards**, each an
//! independent controller instance whose seeds derive only from the
//! campaign seed and the shard index. Shards run across all cores via
//! [`crate::parallel::run_trials_chunked`], driving the batched
//! [`vpnm_core::VpnmController::run_batch`] front door, and every
//! completed shard is appended as one JSON line to a checkpoint file —
//! kill the process at any point and a rerun resumes from the last
//! completed shard instead of restarting the campaign.
//!
//! Determinism is the load-bearing property: shard `i` produces the same
//! [`ShardResult`] regardless of core count, scheduling, or how many
//! times the campaign was interrupted, so the merged report (counters
//! summed, occupancy histograms combined via [`Histogram::merge`]) is
//! identical to an uninterrupted single-threaded run.
//!
//! The JSON is hand-rolled and hand-parsed (the workspace carries no
//! serde); the checkpoint grammar is one header line plus one flat object
//! per shard, with histograms serialized *exactly* (bucket counts plus
//! the integer sum/min/max sidecar) so reloaded shards are bit-identical
//! to freshly computed ones.

use crate::parallel::run_trials_chunked;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use vpnm_core::{
    ChannelSelect, FabricConfig, LineAddr, PipelinedMemory, Request, VpnmConfig, VpnmController,
    VpnmFabric,
};
use vpnm_sim::rng::splitmix64;
use vpnm_sim::Histogram;
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

/// Bumped when the checkpoint grammar changes; resuming across versions
/// is refused.
///
/// Version history: 1 — initial grammar; 2 — header gained `channels`
/// (multi-channel fabric campaigns); 3 — fabric shards switched from the
/// per-tick loop to the epoch-batched `run_epoch` path, which changes the
/// recorded `cycles_skipped` (per-channel idle spans are now skipped), so
/// v2 fabric shard lines no longer match fresh ones.
///
/// The worker count is deliberately **not** part of the grammar: epoch
/// results are byte-identical for every worker count, so a campaign
/// checkpointed sequentially resumes under `--workers N` (and vice versa)
/// without divergence.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Interface cycles simulated per `run_batch` call inside a shard — large
/// enough to amortize batch setup, small enough to keep buffers in cache.
const BATCH_CYCLES: usize = 8192;

/// Everything that determines a campaign's results. Two campaigns with
/// equal parameters produce bit-identical shard results and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignParams {
    /// Configuration preset name (see [`preset_config`]).
    pub preset: String,
    /// Total horizon in interface cycles (across all shards).
    pub cycles: u64,
    /// Interface cycles per shard (the final shard takes the remainder).
    pub shard_cycles: u64,
    /// Campaign master seed; per-shard seeds derive from it and the shard
    /// index only.
    pub seed: u64,
    /// Memory channels per shard: 1 drives a bare controller through the
    /// batched front door; more stripes each shard's stream over a
    /// universal-hash-selected [`VpnmFabric`].
    pub channels: u32,
}

impl CampaignParams {
    /// Number of shards the horizon splits into.
    pub fn shards(&self) -> u64 {
        self.cycles.div_ceil(self.shard_cycles)
    }

    /// Interface cycles assigned to `shard` (the last shard may be short).
    pub fn cycles_of_shard(&self, shard: u64) -> u64 {
        let start = shard * self.shard_cycles;
        self.shard_cycles.min(self.cycles - start)
    }

    /// Validates the parameters, resolving the preset.
    ///
    /// # Errors
    ///
    /// Returns a message for a zero horizon/shard size or unknown preset.
    pub fn validate(&self) -> Result<VpnmConfig, String> {
        if self.cycles == 0 {
            return Err("campaign horizon must be non-zero".into());
        }
        if self.shard_cycles == 0 {
            return Err("shard size must be non-zero".into());
        }
        let config = preset_config(&self.preset)
            .ok_or_else(|| format!("unknown config preset '{}'", self.preset))?;
        if self.channels > 1 {
            self.fabric_config(config.clone()).validate()?;
        }
        Ok(config)
    }

    /// The fabric geometry a multi-channel campaign stripes over.
    pub fn fabric_config(&self, base: VpnmConfig) -> FabricConfig {
        FabricConfig {
            channels: self.channels,
            select: ChannelSelect::UniversalHash,
            base,
            qos: None,
        }
    }
}

/// Resolves a preset name to its [`VpnmConfig`].
pub fn preset_config(name: &str) -> Option<VpnmConfig> {
    match name {
        "paper_optimal" => Some(VpnmConfig::paper_optimal()),
        "paper_compact" => Some(VpnmConfig::paper_compact()),
        "small_test" => Some(VpnmConfig::small_test()),
        "test_roomy" => Some(VpnmConfig::test_roomy()),
        _ => None,
    }
}

/// The measured outcome of one shard — everything the merged report
/// needs, in exactly reconstructible form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardResult {
    /// Shard index within the campaign.
    pub shard: u64,
    /// Interface cycles this shard's controller actually ran (assigned
    /// cycles plus the trailing drain).
    pub cycles: u64,
    /// Interface cycles covered by event-horizon skips.
    pub cycles_skipped: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Retryable stalls — the campaign's numerator-of-interest.
    pub stalled: u64,
    /// Responses returned (equals `accepted` after the drain).
    pub responses: u64,
    /// Shard-local interface cycle of the first stall, if any.
    pub first_stall_at: Option<u64>,
    /// Per-cycle max bank-queue-depth distribution.
    pub queue_depth: Histogram,
    /// Per-cycle total storage-occupancy distribution.
    pub storage_occupancy: Histogram,
}

/// Runs one shard to completion on the caller's thread — shorthand for
/// [`run_shard_with_workers`] with one worker.
pub fn run_shard(params: &CampaignParams, shard: u64) -> ShardResult {
    run_shard_with_workers(params, shard, 1)
}

/// Runs one shard to completion: a fresh controller (or fabric, for
/// `channels > 1`) and a fresh uniform read stream, both seeded
/// deterministically from `(params.seed, shard)`, driven through
/// [`VpnmController::run_batch`] in [`BATCH_CYCLES`]-sized batches (the
/// single-channel fast path) or through the fabric's epoch-batched
/// `run_epoch` in the same batch size, and drained at the end.
///
/// `workers` only affects how a multi-channel shard's epochs execute
/// (on-thread for 1, a per-shard [`vpnm_core::WorkerPool`] otherwise) —
/// the result is byte-identical for every value, so the checkpoint
/// grammar ignores it.
pub fn run_shard_with_workers(params: &CampaignParams, shard: u64, workers: usize) -> ShardResult {
    let config = params.validate().expect("validated before sharding");
    let ctrl_seed = splitmix64(params.seed.wrapping_add(shard));
    let wl_seed = splitmix64(ctrl_seed ^ 0x9E37_79B9_7F4A_7C15);
    if params.channels > 1 {
        return run_shard_fabric(params, shard, config, ctrl_seed, wl_seed, workers);
    }
    let mut mem = VpnmController::new(config.clone(), ctrl_seed).expect("preset validates");
    let mut gen = UniformAddresses::new(1u64 << config.addr_bits, wl_seed);

    let mut addrs = vec![0u64; BATCH_CYCLES];
    let mut batch: Vec<Option<Request>> = Vec::with_capacity(BATCH_CYCLES);
    let mut remaining = params.cycles_of_shard(shard);
    let mut accepted = 0u64;
    let mut stalled = 0u64;
    let mut responses = 0u64;
    while remaining > 0 {
        let n = remaining.min(BATCH_CYCLES as u64) as usize;
        gen.fill_addrs(&mut addrs[..n]);
        batch.clear();
        batch.extend(addrs[..n].iter().map(|&a| Some(Request::read(LineAddr(a)))));
        let report = mem.run_batch(&batch, n as u64);
        accepted += report.accepted;
        stalled += report.stalled;
        responses += report.responses.len() as u64;
        remaining -= n as u64;
    }
    responses += mem.drain().len() as u64;

    let m = mem.metrics();
    ShardResult {
        shard,
        cycles: mem.now().as_u64(),
        cycles_skipped: mem.cycles_skipped(),
        accepted,
        stalled,
        responses,
        first_stall_at: m.first_stall_at.map(|c| c.as_u64()),
        queue_depth: m.queue_depth_hist.clone(),
        storage_occupancy: m.storage_occupancy_hist.clone(),
    }
}

/// The multi-channel shard body: the same deterministic stream, striped
/// over a fabric and driven through the epoch-batched `run_epoch` path —
/// each channel advances through a whole [`BATCH_CYCLES`] epoch at a time
/// (per-channel batched hashing and idle-span skipping apply, since every
/// channel sees only `~1/C` of the stream), optionally across `workers`
/// pool threads. Histograms carry one sample per channel per cycle,
/// merged across channels.
fn run_shard_fabric(
    params: &CampaignParams,
    shard: u64,
    config: VpnmConfig,
    ctrl_seed: u64,
    wl_seed: u64,
    workers: usize,
) -> ShardResult {
    let addr_bits = config.addr_bits;
    let mut mem =
        VpnmFabric::new(params.fabric_config(config), ctrl_seed).expect("params validate");
    mem.set_workers(workers);
    let mut gen = UniformAddresses::new(1u64 << addr_bits, wl_seed);

    let mut addrs = vec![0u64; BATCH_CYCLES];
    let mut batch: Vec<Option<Request>> = Vec::with_capacity(BATCH_CYCLES);
    let mut remaining = params.cycles_of_shard(shard);
    let mut accepted = 0u64;
    let mut stalled = 0u64;
    let mut responses = 0u64;
    while remaining > 0 {
        let n = remaining.min(BATCH_CYCLES as u64) as usize;
        gen.fill_addrs(&mut addrs[..n]);
        batch.clear();
        batch.extend(addrs[..n].iter().map(|&a| Some(Request::read(LineAddr(a)))));
        let report = mem.run_epoch(&batch);
        accepted += report.accepted;
        stalled += report.stalled;
        responses += report.responses.len() as u64;
        remaining -= n as u64;
    }
    responses += PipelinedMemory::drain(&mut mem).len() as u64;

    let snap = mem.merged_snapshot().expect("controllers keep metrics");
    ShardResult {
        shard,
        cycles: mem.now().as_u64(),
        cycles_skipped: snap.cycles_skipped,
        accepted,
        stalled,
        responses,
        first_stall_at: snap.metrics.first_stall_at.map(|c| c.as_u64()),
        queue_depth: snap.metrics.queue_depth_hist.clone(),
        storage_occupancy: snap.metrics.storage_occupancy_hist.clone(),
    }
}

/// The merged outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The parameters the campaign ran under.
    pub params: CampaignParams,
    /// Shards completed (always all of them on a successful return).
    pub completed: u64,
    /// Shards loaded from the checkpoint instead of recomputed.
    pub resumed: u64,
    /// Total interface cycles simulated across shards (incl. drains).
    pub cycles: u64,
    /// Total interface cycles covered by event-horizon skips.
    pub cycles_skipped: u64,
    /// Total requests accepted.
    pub accepted: u64,
    /// Total retryable stalls.
    pub stalled: u64,
    /// Total responses returned.
    pub responses: u64,
    /// Merged per-cycle queue-depth distribution.
    pub queue_depth: Histogram,
    /// Merged per-cycle storage-occupancy distribution.
    pub storage_occupancy: Histogram,
}

impl CampaignReport {
    /// Mean interface cycles between stalls — `None` when the campaign
    /// observed no stall at all (the horizon is then a lower bound on the
    /// MTS, which is the expected outcome for paper-scale configs).
    pub fn mts_estimate(&self) -> Option<f64> {
        (self.stalled > 0).then(|| self.cycles as f64 / self.stalled as f64)
    }

    /// Renders the human-readable summary.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(vec!["metric", "value"]);
        t.row(vec!["preset".into(), self.params.preset.clone()]);
        t.row(vec!["channels".into(), self.params.channels.to_string()]);
        t.row(vec!["shards".into(), format!("{} ({} resumed)", self.completed, self.resumed)]);
        t.row(vec!["cycles".into(), self.cycles.to_string()]);
        t.row(vec!["cycles skipped".into(), self.cycles_skipped.to_string()]);
        t.row(vec!["accepted".into(), self.accepted.to_string()]);
        t.row(vec!["responses".into(), self.responses.to_string()]);
        t.row(vec!["stalls".into(), self.stalled.to_string()]);
        t.row(vec![
            "MTS".into(),
            match self.mts_estimate() {
                Some(mts) => crate::fmt_mts(mts),
                None => format!("no stall observed; MTS >= {:.2e} cycles", self.cycles as f64),
            },
        ]);
        t.row(vec!["mean queue depth".into(), format!("{:.4}", self.queue_depth.mean())]);
        t.row(vec![
            "peak storage occupancy".into(),
            self.storage_occupancy.max().unwrap_or(0).to_string(),
        ]);
        t.render()
    }
}

/// Runs (or resumes) a campaign, appending one checkpoint line per
/// completed shard to `checkpoint`. `progress(done, pending)` fires after
/// each freshly computed shard (resumed shards are not re-reported).
///
/// `workers` is the per-shard fabric worker count (see
/// [`run_shard_with_workers`]); it changes wall-clock time only, never
/// results, so checkpoints resume freely across worker counts.
///
/// # Errors
///
/// Returns a message when the checkpoint belongs to different parameters,
/// cannot be read/written, or the parameters fail validation.
pub fn run_campaign<P>(
    params: &CampaignParams,
    checkpoint: &Path,
    workers: usize,
    progress: P,
) -> Result<CampaignReport, String>
where
    P: Fn(usize, usize) + Sync,
{
    params.validate()?;
    let shards = params.shards();
    let mut done = load_checkpoint(checkpoint, params)?;
    if !checkpoint.exists() {
        std::fs::write(checkpoint, header_line(params))
            .map_err(|e| format!("cannot create checkpoint {}: {e}", checkpoint.display()))?;
    }
    let resumed = done.len() as u64;
    let pending: Vec<u64> = (0..shards).filter(|s| !done.contains_key(s)).collect();
    let file = Mutex::new(
        std::fs::OpenOptions::new()
            .append(true)
            .open(checkpoint)
            .map_err(|e| format!("cannot append to checkpoint {}: {e}", checkpoint.display()))?,
    );
    let fresh = run_trials_chunked(
        pending.len(),
        1,
        |k| {
            let result = run_shard_with_workers(params, pending[k], workers);
            let line = shard_line(&result);
            let mut f = file.lock().expect("checkpoint file lock");
            // An append failure must not silently drop the shard from the
            // checkpoint — better to die loudly and resume later.
            f.write_all(line.as_bytes()).expect("checkpoint append");
            f.flush().expect("checkpoint flush");
            result
        },
        progress,
    );
    for r in fresh {
        done.insert(r.shard, r);
    }

    let mut report = CampaignReport {
        params: params.clone(),
        completed: done.len() as u64,
        resumed,
        cycles: 0,
        cycles_skipped: 0,
        accepted: 0,
        stalled: 0,
        responses: 0,
        queue_depth: Histogram::new(),
        storage_occupancy: Histogram::new(),
    };
    // BTreeMap iteration gives ascending shard order, so the merge order
    // is fixed regardless of which shards were resumed vs recomputed.
    for r in done.values() {
        report.cycles += r.cycles;
        report.cycles_skipped += r.cycles_skipped;
        report.accepted += r.accepted;
        report.stalled += r.stalled;
        report.responses += r.responses;
        report.queue_depth.merge(&r.queue_depth);
        report.storage_occupancy.merge(&r.storage_occupancy);
    }
    Ok(report)
}

// --- checkpoint serialization -------------------------------------------

fn header_line(params: &CampaignParams) -> String {
    format!(
        "{{\"campaign\":\"mts_uniform_reads\",\"version\":{CHECKPOINT_VERSION},\
         \"preset\":\"{}\",\"cycles\":{},\"shard_cycles\":{},\"seed\":{},\"channels\":{}}}\n",
        params.preset, params.cycles, params.shard_cycles, params.seed, params.channels
    )
}

fn hist_fields(prefix: &str, h: &Histogram) -> String {
    let buckets: Vec<String> = (0..64)
        .filter(|&i| h.bucket_count(i) > 0)
        .map(|i| format!("[{},{}]", i, h.bucket_count(i)))
        .collect();
    format!(
        "\"{prefix}_b\":[{}],\"{prefix}_sum\":{},\"{prefix}_min\":{},\"{prefix}_max\":{}",
        buckets.join(","),
        h.sum(),
        h.min().map_or("null".into(), |v| v.to_string()),
        h.max().map_or("null".into(), |v| v.to_string()),
    )
}

/// One shard as a single JSON checkpoint line (newline-terminated).
pub fn shard_line(r: &ShardResult) -> String {
    format!(
        "{{\"shard\":{},\"cycles\":{},\"skipped\":{},\"accepted\":{},\"stalled\":{},\
         \"responses\":{},\"first_stall\":{},{},{}}}\n",
        r.shard,
        r.cycles,
        r.cycles_skipped,
        r.accepted,
        r.stalled,
        r.responses,
        r.first_stall_at.map_or("null".into(), |v| v.to_string()),
        hist_fields("qh", &r.queue_depth),
        hist_fields("oh", &r.storage_occupancy),
    )
}

/// Locates the raw value following `"key":` in a flat JSON line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    Some(line[start..].trim_start())
}

fn parse_u64_field(line: &str, key: &str) -> Option<u64> {
    let rest = field(line, key)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn parse_opt_u64_field(line: &str, key: &str) -> Option<Option<u64>> {
    let rest = field(line, key)?;
    if rest.starts_with("null") {
        Some(None)
    } else {
        parse_u64_field(line, key).map(Some)
    }
}

fn parse_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field(line, key)?.strip_prefix('"')?;
    rest.split('"').next()
}

/// Parses `[[i,c],[i,c],…]` (possibly `[]`) following `"key":`.
fn parse_pairs_field(line: &str, key: &str) -> Option<Vec<(usize, u64)>> {
    let rest = field(line, key)?.strip_prefix('[')?;
    // Matching close bracket of the outer array, by depth scan.
    let mut end = None;
    let mut depth = 1usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &rest[..end?];
    let mut out = Vec::new();
    for pair in body.split("],") {
        let pair = pair.trim_start_matches('[').trim_end_matches(']');
        if pair.is_empty() {
            continue;
        }
        let (i, c) = pair.split_once(',')?;
        out.push((i.trim().parse().ok()?, c.trim().parse().ok()?));
    }
    Some(out)
}

fn parse_hist(line: &str, prefix: &str) -> Option<Histogram> {
    let pairs = parse_pairs_field(line, &format!("{prefix}_b"))?;
    if pairs.iter().any(|&(i, _)| i >= 64) {
        return None;
    }
    let sum = parse_u64_field(line, &format!("{prefix}_sum"))?;
    let min = parse_opt_u64_field(line, &format!("{prefix}_min"))?;
    let max = parse_opt_u64_field(line, &format!("{prefix}_max"))?;
    Some(Histogram::from_parts(&pairs, sum, min, max))
}

/// Parses one shard checkpoint line; `None` for malformed/truncated lines.
pub fn parse_shard_line(line: &str) -> Option<ShardResult> {
    // A truncated line (killed mid-append) fails one of these lookups and
    // is treated as "shard not completed".
    if !line.trim_end().ends_with('}') {
        return None;
    }
    Some(ShardResult {
        shard: parse_u64_field(line, "shard")?,
        cycles: parse_u64_field(line, "cycles")?,
        cycles_skipped: parse_u64_field(line, "skipped")?,
        accepted: parse_u64_field(line, "accepted")?,
        stalled: parse_u64_field(line, "stalled")?,
        responses: parse_u64_field(line, "responses")?,
        first_stall_at: parse_opt_u64_field(line, "first_stall")?,
        queue_depth: parse_hist(line, "qh")?,
        storage_occupancy: parse_hist(line, "oh")?,
    })
}

/// Loads completed shards from `checkpoint`. A missing file yields an
/// empty map (fresh campaign); an existing file must carry a header that
/// matches `params` exactly. Malformed or truncated shard lines are
/// skipped — their shards simply rerun.
///
/// # Errors
///
/// Returns a message when the file exists but is unreadable, has no
/// parseable header, or records different campaign parameters.
pub fn load_checkpoint(
    checkpoint: &Path,
    params: &CampaignParams,
) -> Result<BTreeMap<u64, ShardResult>, String> {
    let text = match std::fs::read_to_string(checkpoint) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(format!("cannot read checkpoint {}: {e}", checkpoint.display())),
    };
    let mut lines = text.lines();
    let header = lines.next().ok_or("checkpoint file is empty")?;
    let version = parse_u64_field(header, "version").ok_or("checkpoint header is unparseable")?;
    if version != u64::from(CHECKPOINT_VERSION) {
        return Err(format!("checkpoint version {version} != {CHECKPOINT_VERSION}"));
    }
    let recorded = CampaignParams {
        preset: parse_str_field(header, "preset").ok_or("header missing preset")?.to_string(),
        cycles: parse_u64_field(header, "cycles").ok_or("header missing cycles")?,
        shard_cycles: parse_u64_field(header, "shard_cycles")
            .ok_or("header missing shard_cycles")?,
        seed: parse_u64_field(header, "seed").ok_or("header missing seed")?,
        channels: parse_u64_field(header, "channels").ok_or("header missing channels")? as u32,
    };
    if &recorded != params {
        return Err(format!(
            "checkpoint {} belongs to a different campaign ({recorded:?} != {params:?}); \
             delete it or match its parameters",
            checkpoint.display()
        ));
    }
    let shards = params.shards();
    let mut done = BTreeMap::new();
    for line in lines {
        if let Some(r) = parse_shard_line(line) {
            if r.shard < shards {
                done.insert(r.shard, r);
            }
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_checkpoint(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vpnm_campaign_{tag}_{}_{n}.jsonl", std::process::id()))
    }

    fn small_params() -> CampaignParams {
        CampaignParams {
            preset: "small_test".into(),
            cycles: 20_000,
            shard_cycles: 4_000,
            seed: 42,
            channels: 1,
        }
    }

    #[test]
    fn shards_are_deterministic() {
        let p = small_params();
        assert_eq!(run_shard(&p, 2), run_shard(&p, 2));
        assert_ne!(run_shard(&p, 2), run_shard(&p, 3), "shards must differ");
    }

    #[test]
    fn fabric_shards_are_deterministic_and_answer_everything() {
        let p = CampaignParams { channels: 4, cycles: 8_000, ..small_params() };
        let a = run_shard(&p, 1);
        assert_eq!(a, run_shard(&p, 1));
        assert_eq!(a.accepted, a.responses, "drained shards answer everything");
        assert_eq!(a.accepted + a.stalled, p.cycles_of_shard(1));
        assert_ne!(a, run_shard(&small_params(), 1), "channel count changes the run");

        // Bad channel geometry is caught at validation.
        let bad = CampaignParams { channels: 3, ..small_params() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn shard_line_round_trips_exactly() {
        let p = small_params();
        for shard in [0u64, 4] {
            let r = run_shard(&p, shard);
            let parsed = parse_shard_line(&shard_line(&r)).expect("own lines parse");
            assert_eq!(parsed, r, "bit-exact round trip incl. histograms");
        }
        // Empty-histogram sentinels survive the trip too.
        let empty = ShardResult {
            shard: 9,
            cycles: 0,
            cycles_skipped: 0,
            accepted: 0,
            stalled: 0,
            responses: 0,
            first_stall_at: None,
            queue_depth: Histogram::new(),
            storage_occupancy: Histogram::new(),
        };
        assert_eq!(parse_shard_line(&shard_line(&empty)), Some(empty));
    }

    #[test]
    fn campaign_merge_equals_single_threaded_run() {
        let p = small_params();
        let path = temp_checkpoint("merge");
        let report = run_campaign(&p, &path, 1, |_, _| {}).expect("campaign runs");
        assert_eq!(report.completed, p.shards());
        assert_eq!(report.resumed, 0);

        // Sequential reference: same shard decomposition, one thread, no
        // checkpoint involved.
        let mut cycles = 0u64;
        let mut stalled = 0u64;
        let mut accepted = 0u64;
        let mut qd = Histogram::new();
        let mut occ = Histogram::new();
        for s in 0..p.shards() {
            let r = run_shard(&p, s);
            cycles += r.cycles;
            stalled += r.stalled;
            accepted += r.accepted;
            qd.merge(&r.queue_depth);
            occ.merge(&r.storage_occupancy);
        }
        assert_eq!(report.cycles, cycles);
        assert_eq!(report.stalled, stalled);
        assert_eq!(report.accepted, accepted);
        assert_eq!(report.queue_depth, qd, "merged histograms must be identical");
        assert_eq!(report.storage_occupancy, occ);
        assert_eq!(report.responses, report.accepted, "drained shards answer everything");
        // small_test under full-rate uniform load does stall, so the MTS
        // estimate is finite here.
        assert!(report.mts_estimate().is_some());
        assert!(!report.render().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_campaign_resumes_from_checkpoint() {
        let p = small_params();
        let path = temp_checkpoint("resume");
        let full = run_campaign(&p, &path, 1, |_, _| {}).expect("first run");

        // Simulate a mid-run kill: drop the last two completed shard
        // lines and leave a truncated partial line behind.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.truncate(lines.len() - 2);
        let mut truncated = lines.join("\n");
        truncated.push_str("\n{\"shard\":4,\"cycles\":123,\"acce");
        std::fs::write(&path, truncated).unwrap();

        let recomputed = Mutex::new(0usize);
        let resumed = run_campaign(&p, &path, 1, |_, _| {
            *recomputed.lock().unwrap() += 1;
        })
        .expect("resume run");
        assert_eq!(
            resumed.resumed,
            p.shards() - 2,
            "three lines were lost/truncated… minus header"
        );
        assert_eq!(*recomputed.lock().unwrap(), 2, "only the missing shards rerun");
        // The resumed report is identical to the uninterrupted one.
        let mut full_cmp = full.clone();
        full_cmp.resumed = resumed.resumed;
        assert_eq!(resumed, full_cmp);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fabric_shards_are_worker_count_invariant() {
        let p = CampaignParams { channels: 4, cycles: 8_000, ..small_params() };
        let base = run_shard_with_workers(&p, 0, 1);
        for workers in [2, 4, 8] {
            assert_eq!(
                run_shard_with_workers(&p, 0, workers),
                base,
                "{workers} workers must be byte-identical to sequential"
            );
        }
        // Single-channel shards ignore the worker count entirely.
        assert_eq!(run_shard_with_workers(&small_params(), 0, 8), run_shard(&small_params(), 0));
    }

    #[test]
    fn checkpoints_resume_across_worker_counts() {
        // A campaign checkpointed sequentially resumes under a parallel
        // worker count (and the reverse) with an identical merged report:
        // the worker count is not part of the checkpoint grammar.
        let p = CampaignParams { channels: 4, cycles: 12_000, ..small_params() };
        for (first, second) in [(1usize, 4usize), (4, 1)] {
            let path = temp_checkpoint("xworkers");
            let full = run_campaign(&p, &path, first, |_, _| {}).expect("first run");

            // Drop the last completed shard line to force a partial resume.
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines: Vec<&str> = text.lines().collect();
            lines.truncate(lines.len() - 1);
            std::fs::write(&path, lines.join("\n") + "\n").unwrap();

            let resumed =
                run_campaign(&p, &path, second, |_, _| {}).expect("resume under other workers");
            assert_eq!(resumed.resumed, p.shards() - 1);
            let mut full_cmp = full.clone();
            full_cmp.resumed = resumed.resumed;
            assert_eq!(resumed, full_cmp, "workers {first} -> {second} must not diverge");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn mismatched_checkpoint_is_refused() {
        let p = small_params();
        let path = temp_checkpoint("mismatch");
        run_campaign(&p, &path, 1, |_, _| {}).expect("first run");
        let mut other = p.clone();
        other.seed = 43;
        let err = run_campaign(&other, &path, 1, |_, _| {}).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = small_params();
        p.preset = "nope".into();
        assert!(p.validate().is_err());
        p = small_params();
        p.cycles = 0;
        assert!(p.validate().is_err());
        p = small_params();
        p.shard_cycles = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn shard_cycle_split_covers_horizon() {
        let p = CampaignParams {
            preset: "small_test".into(),
            cycles: 10_500,
            shard_cycles: 4_000,
            seed: 1,
            channels: 1,
        };
        assert_eq!(p.shards(), 3);
        assert_eq!(p.cycles_of_shard(0), 4_000);
        assert_eq!(p.cycles_of_shard(2), 2_500);
    }
}
