//! Shared infrastructure for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary prints the same rows/series the paper reports, side by
//! side with the paper's published values where available. Absolute
//! agreement is expected for the analytic experiments (same formulas);
//! simulation-backed comparisons are expected to agree in *shape* (who
//! wins, by what rough factor).

#![warn(missing_docs)]

pub mod campaign;
pub mod inspect;
pub mod parallel;
pub mod report;

pub use report::Table;

/// Formats an MTS value the way the paper's figures label them
/// (scientific notation, with the 10^16 cap annotated).
pub fn fmt_mts(mts: f64) -> String {
    if mts >= vpnm_analysis::MTS_CAP {
        ">= 1e16 (cap)".to_string()
    } else {
        format!("{mts:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mts_formatting() {
        assert_eq!(fmt_mts(1.0e16), ">= 1e16 (cap)");
        assert_eq!(fmt_mts(1234.0), "1.23e3");
    }
}
