//! **Sections 3.2 / 4 / 5.2 claims** — "it is provably hard for even a
//! perfect adversary to create stalls in our virtual pipeline with
//! greater effectiveness than random chance."
//!
//! Measures stall fractions for a battery of attackers against both
//! conventional low-bit banking and the VPNM universal-hash mapping, on
//! a deliberately tightened configuration where differences are visible
//! within a million requests.
//!
//! The universal-hash guarantee is an expectation *over keys*: any one
//! fixed key can be unlucky for a particular blind pattern (H3 is
//! GF(2)-linear, so a stride whose varying bits align with a
//! rank-deficient block of the key matrix revisits few banks per
//! window). The blind attacks are therefore scored as the **median over
//! a panel of keys** — the typical outcome an attacker who cannot
//! choose the key faces — and the unlucky-key tail is exactly what the
//! paper's re-keying response (Section 4) repairs, demonstrated by the
//! leaked-key/re-key pair below.
//!
//! Run: `cargo run --release -p vpnm-bench --bin adversary_resistance`
//! (engine flags: `--engine fast|reference --channels N --select …` steer
//! the blind attacks; the omniscient pair needs the concrete fast engine
//! for its leaked key, and the claim assertions target the default
//! single-channel topology)

use vpnm_apps::EngineOpts;
use vpnm_bench::Table;
use vpnm_core::{HashKind, LineAddr, PipelinedMemory, Request, VpnmConfig, VpnmController};
use vpnm_hash::BankHasher;
use vpnm_workloads::generators::{AddressGenerator, RedundantPattern};
use vpnm_workloads::{OmniscientAdversary, ReplayAdversary, StrideAdversary, UniformAddresses};

const REQUESTS: u64 = 200_000;
const ADDR_SPACE: u64 = 1 << 24;

fn tight_config(hash: HashKind) -> VpnmConfig {
    VpnmConfig {
        banks: 16,
        bank_latency: 10,
        queue_entries: 8,
        storage_rows: 16,
        bus_ratio: 1.2,
        addr_bits: 24,
        ..VpnmConfig::paper_optimal()
    }
    .with_hash(hash)
}

/// The omniscient pair inspects the controller's keyed hash, which only
/// the concrete engine exposes — it stays off the generic path.
fn controller(hash: HashKind, seed: u64) -> VpnmController {
    VpnmController::new(tight_config(hash), seed).expect("valid config")
}

fn engine(opts: EngineOpts, hash: HashKind, seed: u64) -> Box<dyn PipelinedMemory> {
    opts.build(tight_config(hash), seed).expect("valid config")
}

fn run(mut mem: impl PipelinedMemory, gen: &mut dyn AddressGenerator) -> f64 {
    let mut stalls = 0u64;
    for _ in 0..REQUESTS {
        if !mem.tick(Some(Request::read(LineAddr(gen.next_addr())))).accepted() {
            stalls += 1;
        }
    }
    stalls as f64 / REQUESTS as f64
}

/// Stall fraction a blind attacker typically achieves: the median over a
/// panel of independently keyed controllers, each replaying the same
/// attack stream from scratch.
fn run_median<G: AddressGenerator>(
    opts: EngineOpts,
    hash: HashKind,
    seeds: [u64; 5],
    mk_gen: impl Fn() -> G,
) -> f64 {
    let mut rates: Vec<f64> =
        seeds.iter().map(|&s| run(engine(opts, hash, s), &mut mk_gen())).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("stall rates are finite"));
    rates[rates.len() / 2]
}

fn main() {
    let opts = EngineOpts::from_env();
    println!(
        "Adversarial resistance: stall fraction over {REQUESTS} reads, engine {}\n",
        opts.describe()
    );

    // Each attack drives its own independently-seeded controller, so the
    // battery shards across cores; only the omniscient pair stays one job
    // (the re-key run replays the same adversary after its leaked-key
    // round). Results come back in job order, so the report and the
    // assertions below are identical to a sequential run.
    type Job = Box<dyn FnOnce() -> Vec<f64> + Send>;
    let jobs: Vec<Job> = vec![
        Box::new(move || {
            vec![run(engine(opts, HashKind::H3, 1), &mut UniformAddresses::new(ADDR_SPACE, 10))]
        }),
        Box::new(move || {
            vec![run(engine(opts, HashKind::LowBits, 2), &mut StrideAdversary::new(16, ADDR_SPACE))]
        }),
        Box::new(move || {
            vec![run_median(opts, HashKind::H3, [3, 103, 203, 303, 403], || {
                StrideAdversary::new(16, ADDR_SPACE)
            })]
        }),
        Box::new(move || {
            vec![run_median(opts, HashKind::H3, [4, 104, 204, 304, 404], || {
                ReplayAdversary::new(1024, ADDR_SPACE, 16, 11)
            })]
        }),
        Box::new(move || {
            vec![run_median(opts, HashKind::H3, [5, 105, 205, 305, 405], || {
                RedundantPattern::new(vec![1, 2])
            })]
        }),
        Box::new(move || {
            vec![run_median(opts, HashKind::Tabulation, [6, 106, 206, 306, 406], || {
                StrideAdversary::new(16, ADDR_SPACE)
            })]
        }),
        Box::new(|| {
            // Leaked key: the upper bound that motivates re-keying.
            let mem = controller(HashKind::H3, 7);
            let hash = mem.hash().clone();
            let mut omni = OmniscientAdversary::new(ADDR_SPACE, 0, 4096, |a| hash.bank_of(a));
            let leaked = run(mem, &mut omni);
            let rekeyed = run(controller(HashKind::H3, 1007), &mut omni);
            vec![leaked, rekeyed]
        }),
    ];
    let results: Vec<f64> = vpnm_bench::parallel::run_jobs(jobs).into_iter().flatten().collect();
    let [baseline, stride_low, stride_h3, replay, redundant, tab, leaked, rekeyed] = results[..]
    else {
        unreachable!("eight measurements");
    };

    let mut t = Table::new(vec!["attack", "mapping", "stall fraction"]);
    for (attack, mapping, rate) in [
        ("uniform random (no attack)", "H3", baseline),
        ("stride by B", "low bits", stride_low),
        ("stride by B (median key)", "H3", stride_h3),
        ("replay with mutations (median key)", "H3", replay),
        ("redundant A,B,A,B flood (median key)", "H3", redundant),
        ("stride by B (median key)", "tabulation", tab),
        ("omniscient (leaked key)", "H3", leaked),
        ("omniscient after re-key", "H3 (new key)", rekeyed),
    ] {
        t.row(vec![attack.into(), mapping.into(), format!("{rate:.6}")]);
    }
    t.print();

    println!("\nchecks:");
    println!("  conventional banking collapses under stride: {stride_low:.3} >> {baseline:.5}");
    assert!(stride_low > 0.25);
    println!("  no blind attack beats random chance against a typical key:");
    for (name, rate) in [("stride", stride_h3), ("replay", replay), ("tabulation-stride", tab)] {
        assert!(
            rate <= baseline * 3.0 + 50.0 / REQUESTS as f64,
            "{name} rate {rate} vs baseline {baseline}"
        );
        println!("    {name:<18} {rate:.6} <= ~baseline {baseline:.6}");
    }
    println!("  merging absorbs redundant floods completely: {redundant:.6}");
    assert!(redundant <= baseline);
    println!("  a leaked key is the only winning attack: {leaked:.3}");
    assert!(leaked > 0.25);
    println!("  …and re-keying neutralizes it: {rekeyed:.6}");
    assert!(rekeyed <= baseline * 3.0 + 50.0 / REQUESTS as f64);

    // Re-run the no-attack baseline and emit its aggregate metrics; the
    // snapshot's stall counters and per-bank high-water marks corroborate
    // the table's first row.
    let mut mem = engine(opts, HashKind::H3, 1);
    let mut gen = UniformAddresses::new(ADDR_SPACE, 10);
    for _ in 0..REQUESTS {
        mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
    }
    let snapshot = mem.snapshot().expect("engines keep metrics");
    vpnm_bench::report::write_snapshot("adversary_resistance", &snapshot.to_json());

    println!("\nall adversarial claims hold ✓");
}
