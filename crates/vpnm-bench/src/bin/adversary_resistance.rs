//! **Sections 3.2 / 4 / 5.2 claims** — "it is provably hard for even a
//! perfect adversary to create stalls in our virtual pipeline with
//! greater effectiveness than random chance."
//!
//! Measures stall fractions for a battery of attackers against both
//! conventional low-bit banking and the VPNM universal-hash mapping, on
//! a deliberately tightened configuration where differences are visible
//! within a million requests.
//!
//! Run: `cargo run --release -p vpnm-bench --bin adversary_resistance`

use vpnm_bench::Table;
use vpnm_core::{HashKind, LineAddr, Request, VpnmConfig, VpnmController};
use vpnm_hash::BankHasher;
use vpnm_workloads::generators::{AddressGenerator, RedundantPattern};
use vpnm_workloads::{OmniscientAdversary, ReplayAdversary, StrideAdversary, UniformAddresses};

const REQUESTS: u64 = 200_000;
const ADDR_SPACE: u64 = 1 << 24;

fn controller(hash: HashKind, seed: u64) -> VpnmController {
    let config = VpnmConfig {
        banks: 16,
        bank_latency: 10,
        queue_entries: 8,
        storage_rows: 16,
        bus_ratio: 1.2,
        addr_bits: 24,
        ..VpnmConfig::paper_optimal()
    }
    .with_hash(hash);
    VpnmController::new(config, seed).expect("valid config")
}

fn run(mut mem: VpnmController, gen: &mut dyn AddressGenerator) -> f64 {
    let mut stalls = 0u64;
    for _ in 0..REQUESTS {
        if !mem.tick(Some(Request::Read { addr: LineAddr(gen.next_addr()) })).accepted() {
            stalls += 1;
        }
    }
    stalls as f64 / REQUESTS as f64
}

fn main() {
    println!("Adversarial resistance: stall fraction over {REQUESTS} reads\n");
    let mut t = Table::new(vec!["attack", "mapping", "stall fraction"]);

    let mut add = |attack: &str, mapping: &str, rate: f64| {
        t.row(vec![attack.into(), mapping.into(), format!("{rate:.6}")]);
        rate
    };

    let baseline = add(
        "uniform random (no attack)",
        "H3",
        run(controller(HashKind::H3, 1), &mut UniformAddresses::new(ADDR_SPACE, 10)),
    );
    let stride_low = add(
        "stride by B",
        "low bits",
        run(controller(HashKind::LowBits, 2), &mut StrideAdversary::new(16, ADDR_SPACE)),
    );
    let stride_h3 = add(
        "stride by B",
        "H3",
        run(controller(HashKind::H3, 3), &mut StrideAdversary::new(16, ADDR_SPACE)),
    );
    let replay = add(
        "replay with mutations",
        "H3",
        run(controller(HashKind::H3, 4), &mut ReplayAdversary::new(1024, ADDR_SPACE, 16, 11)),
    );
    let redundant = add(
        "redundant A,B,A,B flood",
        "H3",
        run(controller(HashKind::H3, 5), &mut RedundantPattern::new(vec![1, 2])),
    );
    let tab = add(
        "stride by B",
        "tabulation",
        run(controller(HashKind::Tabulation, 6), &mut StrideAdversary::new(16, ADDR_SPACE)),
    );
    // Leaked key: the upper bound that motivates re-keying.
    let mem = controller(HashKind::H3, 7);
    let hash = mem.hash().clone();
    let mut omni = OmniscientAdversary::new(ADDR_SPACE, 0, 4096, |a| hash.bank_of(a));
    let leaked = add("omniscient (leaked key)", "H3", run(mem, &mut omni));
    let rekeyed = add("omniscient after re-key", "H3 (new key)", run(controller(HashKind::H3, 1007), &mut omni));

    t.print();

    println!("\nchecks:");
    println!("  conventional banking collapses under stride: {stride_low:.3} >> {baseline:.5}");
    assert!(stride_low > 0.25);
    println!("  no attack beats random chance against the keyed hash:");
    for (name, rate) in
        [("stride", stride_h3), ("replay", replay), ("tabulation-stride", tab)]
    {
        assert!(
            rate <= baseline * 3.0 + 50.0 / REQUESTS as f64,
            "{name} rate {rate} vs baseline {baseline}"
        );
        println!("    {name:<18} {rate:.6} <= ~baseline {baseline:.6}");
    }
    println!("  merging absorbs redundant floods completely: {redundant:.6}");
    assert!(redundant <= baseline);
    println!("  a leaked key is the only winning attack: {leaked:.3}");
    assert!(leaked > 0.25);
    println!("  …and re-keying neutralizes it: {rekeyed:.6}");
    assert!(rekeyed <= baseline * 3.0 + 50.0 / REQUESTS as f64);
    println!("\nall adversarial claims hold ✓");
}
