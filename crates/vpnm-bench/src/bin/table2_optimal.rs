//! **Table 2** — optimal design parameters for the best MTS/area/energy
//! combination (paper Section 5.3.1).
//!
//! Re-evaluates the paper's eight published rows (R ∈ {1.3, 1.4} ×
//! four design points) through our analyses and hardware model, printing
//! paper values next to reproduced ones.
//!
//! Run: `cargo run --release -p vpnm-bench --bin table2_optimal`

use vpnm_analysis::design_space::evaluate;
use vpnm_bench::{fmt_mts, Table};

struct PaperRow {
    r: f64,
    area: f64,
    mts: f64,
    b: u32,
    q: u64,
    k: u64,
    energy: f64,
}

fn main() {
    // Table 2 as published. (The Q=64 row at R=1.3 prints "K=8" in the
    // paper — an obvious typo for K=128, consistent with every other row
    // doubling K = 2Q.)
    let rows = [
        PaperRow { r: 1.3, area: 13.6, mts: 5.12e5, b: 32, q: 24, k: 48, energy: 11.09 },
        PaperRow { r: 1.3, area: 19.4, mts: 2.34e7, b: 32, q: 32, k: 64, energy: 13.26 },
        PaperRow { r: 1.3, area: 34.1, mts: 4.57e10, b: 32, q: 48, k: 96, energy: 17.05 },
        PaperRow { r: 1.3, area: 53.2, mts: 6.50e13, b: 32, q: 64, k: 128, energy: 21.51 },
        PaperRow { r: 1.4, area: 13.6, mts: 1.14e7, b: 32, q: 24, k: 48, energy: 10.79 },
        PaperRow { r: 1.4, area: 19.3, mts: 1.69e9, b: 32, q: 32, k: 64, energy: 12.83 },
        PaperRow { r: 1.4, area: 34.0, mts: 3.62e13, b: 32, q: 48, k: 96, energy: 16.38 },
        PaperRow { r: 1.4, area: 53.0, mts: 9.75e13, b: 32, q: 64, k: 128, energy: 20.54 },
    ];

    println!("Table 2: optimal design parameters (B = 32, L = 20)\n");
    let mut table = Table::new(vec![
        "R",
        "B/Q/K",
        "area paper",
        "area ours",
        "MTS paper",
        "MTS ours",
        "nJ paper",
        "nJ ours",
    ]);
    let mut area_err_max: f64 = 0.0;
    let mut energy_err_max: f64 = 0.0;
    for row in &rows {
        let p = evaluate(row.b, row.q, row.k, row.r, 20);
        table.row(vec![
            format!("{}", row.r),
            format!("{}/{}/{}", row.b, row.q, row.k),
            format!("{:.1}", row.area),
            format!("{:.1}", p.area_mm2),
            fmt_mts(row.mts),
            fmt_mts(p.mts_total),
            format!("{:.2}", row.energy),
            format!("{:.2}", p.energy_nj),
        ]);
        area_err_max = area_err_max.max((p.area_mm2 - row.area).abs() / row.area);
        energy_err_max = energy_err_max.max((p.energy_nj - row.energy).abs() / row.energy);
    }
    table.print();

    println!(
        "\nmax relative error: area {:.1}%, energy {:.1}%",
        area_err_max * 100.0,
        energy_err_max * 100.0
    );
    println!("(area/energy come from the least-squares calibration against these same");
    println!(" published points — see vpnm-hw; MTS comes from the independent analyses.)");

    println!("\nnote: our MTS values are systematically more optimistic than the paper's");
    println!("      (the exact Markov variant behind their Figure 6 is not recoverable from");
    println!("      the text); the orderings — monotone in Q/K, R = 1.4 dominating R = 1.3,");
    println!("      and the jump to 'effectively never' at the big design points — all match.");

    // Shape checks: MTS ordering across rows must match the paper's.
    let mts: Vec<f64> = rows.iter().map(|r| evaluate(r.b, r.q, r.k, r.r, 20).mts_total).collect();
    for i in 0..3 {
        assert!(mts[i] <= mts[i + 1], "R=1.3 rows must be non-decreasing");
        assert!(mts[i + 4] <= mts[i + 5], "R=1.4 rows must be non-decreasing");
        assert!(mts[i + 4] >= mts[i], "R=1.4 must dominate R=1.3 at the same point");
    }
    assert!(mts[0] < mts[3], "the Q/K sweep must span orders of magnitude");
    assert!(area_err_max < 0.12 && energy_err_max < 0.12);
    println!("shape checks passed: MTS monotone in Q/K, R = 1.4 dominates R = 1.3 ✓");
}
