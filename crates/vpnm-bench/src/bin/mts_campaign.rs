//! **MTS campaign** — long-horizon stall measurement, sharded across all
//! cores with checkpointed resume (see `vpnm_bench::campaign`).
//!
//! The paper claims a Mean Time to Stall around 10¹³ accesses for the
//! optimal configuration; horizons of that order need multi-core runs
//! that survive interruption. This driver shards the horizon into
//! deterministic per-seed shards, appends one JSON checkpoint line per
//! completed shard, and merges everything (counters plus exact occupancy
//! histograms) into a final report that is bit-identical no matter how
//! many cores ran it or how many times it was killed and resumed.
//!
//! Run:
//!
//! ```text
//! cargo run --release -p vpnm-bench --bin mts_campaign -- \
//!     --cycles 1e9 [--shard-cycles 1e6] [--preset paper_optimal] \
//!     [--seed 42] [--channels N] [--workers N] \
//!     [--checkpoint mts_campaign_checkpoint.jsonl]
//! ```
//!
//! Re-running the same command after a kill resumes from the checkpoint;
//! delete the checkpoint file to start over. `--workers` drives each
//! multi-channel shard's epochs across a worker pool; it changes
//! wall-clock time only, never results, so checkpoints resume freely
//! across worker counts (defaults to `VPNM_WORKERS`/detected cores).

use std::path::PathBuf;
use vpnm_bench::campaign::{run_campaign, CampaignParams};
use vpnm_bench::parallel::worker_count;

/// Parses a cycle count given either as an integer (`1000000`) or in
/// scientific notation (`1e9`, `2.5e8`).
fn parse_cycles(s: &str) -> Option<u64> {
    if let Ok(v) = s.parse::<u64>() {
        return Some(v);
    }
    let v = s.parse::<f64>().ok()?;
    (v.is_finite() && v >= 1.0 && v <= u64::MAX as f64).then_some(v as u64)
}

fn usage() -> ! {
    eprintln!(
        "usage: mts_campaign [--cycles N] [--shard-cycles N] [--preset NAME] \
         [--seed N] [--channels N] [--workers N] [--checkpoint PATH]\n\
         (N accepts scientific notation, e.g. 1e9; presets: paper_optimal, \
         paper_compact, small_test, test_roomy; --channels > 1 stripes each \
         shard over a universal-hash-selected fabric; --workers > 1 runs \
         each shard's channels on a worker pool — results are identical \
         for every worker count)"
    );
    std::process::exit(2)
}

fn main() {
    let mut params = CampaignParams {
        preset: "paper_optimal".into(),
        cycles: 100_000_000,
        shard_cycles: 1_000_000,
        seed: 42,
        channels: 1,
    };
    let mut checkpoint = PathBuf::from("mts_campaign_checkpoint.jsonl");
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--cycles" => params.cycles = parse_cycles(&value()).unwrap_or_else(|| usage()),
            "--shard-cycles" => {
                params.shard_cycles = parse_cycles(&value()).unwrap_or_else(|| usage());
            }
            "--preset" => params.preset = value(),
            "--seed" => params.seed = value().parse().unwrap_or_else(|_| usage()),
            "--channels" => params.channels = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => {
                workers = Some(value().parse::<usize>().unwrap_or_else(|_| usage()).max(1));
            }
            "--checkpoint" => checkpoint = PathBuf::from(value()),
            _ => usage(),
        }
    }
    // Default per-shard workers: the shared VPNM_WORKERS / detected-cores
    // policy, capped at the channel count (the fabric clamps again anyway).
    let workers = workers.unwrap_or_else(|| worker_count(params.channels as usize));

    println!(
        "MTS campaign: {} cycles of full-rate uniform reads on '{}' x{} channel(s) \
         ({} shards x {} cycles, seed {}, {} worker(s)/shard)",
        params.cycles,
        params.preset,
        params.channels,
        params.shards(),
        params.shard_cycles,
        params.seed,
        workers
    );
    println!("checkpoint: {} (delete to restart)\n", checkpoint.display());

    let started = std::time::Instant::now();
    let report = run_campaign(&params, &checkpoint, workers, |done, pending| {
        eprintln!("  shard {done}/{pending} done ({:.1}s)", started.elapsed().as_secs_f64());
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });

    if report.resumed > 0 {
        println!("resumed {} completed shards from the checkpoint\n", report.resumed);
    }
    print!("{}", report.render());
    println!(
        "\n{} shards merged in {:.1}s ({:.1} Mcycles/s wall-clock incl. resume)",
        report.completed,
        started.elapsed().as_secs_f64(),
        report.cycles as f64 / 1e6 / started.elapsed().as_secs_f64(),
    );
}
