//! `vpnm-inspect`: render stall forensics from the observability layer.
//!
//! Runs the forced delay-storage-buffer overflow scenario (see
//! `vpnm_bench::inspect`) and prints:
//!
//! 1. the causal event window the forensic ring reconstructed — every
//!    accept, retire, and the stall with full buffer context;
//! 2. the controller's `MetricsSnapshot` as JSON, whose aggregates
//!    (per-bank high-water marks, CAM load factor, stall counters)
//!    corroborate the event-level story.
//!
//! Pass `--json` to emit only the snapshot (for piping into tooling).

use vpnm_bench::inspect::forced_dsb_overflow;

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");
    let f = forced_dsb_overflow();
    if json_only {
        print!("{}", f.snapshot_json);
        return;
    }
    println!("vpnm-inspect: forced DSB-overflow forensics");
    println!("===========================================");
    println!();
    println!(
        "scenario: stride-B reads, distinct addresses, low-bits hash -> bank 0;\n\
         offered rate below service rate (queue drains) but delay D inflated so\n\
         every accepted read holds its delay-storage row far longer than the\n\
         accept interval. The DSB — not the queue — must overflow.\n"
    );
    match &f.report {
        Some(report) => {
            println!("{report}");
        }
        None => {
            println!(
                "(forensic ring compiled out — rebuild vpnm-core with the default\n\
                 `forensics` feature for the event window)\n\
                 stall: {} at interface cycle {}",
                f.stall_kind, f.stall_cycle
            );
        }
    }
    println!();
    println!("metrics snapshot:");
    print!("{}", f.snapshot_json);
}
