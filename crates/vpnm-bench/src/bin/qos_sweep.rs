//! **Multi-tenant isolation study** — the tenancy analogue of the
//! paper's Section 4 adversary experiments: what does per-tenant
//! bandwidth regulation buy a well-behaved tenant sharing the fabric
//! with a firehose adversary, and what does it cost in aggregate
//! utilization?
//!
//! Three scenarios over the same serving front-end
//! ([`vpnm_apps::serve::run_serve`]):
//!
//! 1. **baseline** — single-tenant heavy-tail traffic (the pre-tenancy
//!    serving path; anchors the utilization axis).
//! 2. **unregulated** — 3 well-behaved tenants plus 1 stride adversary
//!    spending 40% of the offered packets, regulator off: the adversary
//!    crowds the victims at every bounded structure.
//! 3. **regulated sweep** — the same traffic under a per-bank regulator
//!    across budgets 1/2 → 1/32 requests/cycle: each budget is one point
//!    on the isolation-vs-utilization Pareto front (victim p99 latency
//!    and victim MTS against aggregate delivered Mpps).
//!
//! The sweep rows are merged into `BENCH_controller.json` as summary
//! scalars (`qos_*`), next to the committed `serve/mpps_batch` baseline.
//!
//! Run: `cargo run --release -p vpnm-bench --bin qos_sweep`
//! (`--cycles N` scales the offered window; engine flags are fixed —
//! the study needs its own multi-channel QoS topology.)

use vpnm_apps::engine::{EngineKind, EngineOpts};
use vpnm_apps::serve::{run_serve, ArrivalSource, FlowMix, ServeConfig, ServeReport};
use vpnm_bench::report::merge_bench_json;
use vpnm_bench::Table;
use vpnm_core::{ChannelSelect, RegulatorMode, VpnmConfig};

const TENANTS: u16 = 4;
const ADVERSARY_PCT: u32 = 40;
const CHANNELS: u32 = 2;

fn base_config() -> VpnmConfig {
    VpnmConfig::test_roomy()
}

fn serve_config(cycles: u64, regulator: RegulatorMode, rate_den: u32) -> ServeConfig {
    let base = base_config();
    let banks = u64::from(base.banks) * u64::from(CHANNELS);
    ServeConfig {
        engine: EngineOpts {
            kind: EngineKind::Fast,
            channels: CHANNELS,
            select: ChannelSelect::UniversalHash,
            workers: 1,
            tenants: TENANTS,
            regulator,
            tenant_rate: (1, rate_den),
            tenant_burst: 16,
        },
        base,
        producers: 4,
        cycles,
        epoch_len: 4096,
        source: ArrivalSource::Synthetic {
            load: 0.45,
            mix: FlowMix::MultiTenant {
                space: 1 << 14,
                tenants: TENANTS,
                adversary_pct: ADVERSARY_PCT,
                banks,
            },
        },
        queue_depth: 512,
        cells_per_queue: 16,
        cell_bytes: 8,
        pace: None,
        seed: 42,
        verify: true,
    }
}

struct Point {
    label: String,
    victim_p99: u64,
    victim_mts: Option<f64>,
    victim_goodput: f64,
    adversary_share: f64,
    adversary_deferred_share: Option<f64>,
    mpps: f64,
}

/// Worst-victim p99 / MTS and aggregate throughput for one serve run.
fn measure(label: &str, report: &ServeReport) -> Point {
    let snap = report.snapshot.as_ref().expect("fabric exposes metrics");
    let section = snap.tenants.as_ref().expect("qos topology carries a tenant section");
    let victims = &section.per_tenant[..usize::from(TENANTS) - 1];
    let adversary = &section.per_tenant[usize::from(TENANTS) - 1];
    let victim_p99 = victims.iter().filter_map(|t| t.latency.quantile(0.99)).max().unwrap_or(0);
    // Victim MTS: cycles per adverse event (deferral or drop), worst
    // (smallest) across the well-behaved tenants; None = no event ever.
    let victim_mts =
        victims.iter().filter_map(|t| t.mts(snap.cycles)).min_by(|a, b| a.total_cmp(b));
    let victim_tx: u64 = victims.iter().map(|t| t.transmitted).sum();
    let victim_offered: u64 = victims.iter().map(|t| t.transmitted + t.dropped).sum::<u64>().max(1);
    let total_tx: u64 = section.per_tenant.iter().map(|t| t.transmitted).sum();
    let total_deferred: u64 = section.per_tenant.iter().map(|t| t.deferred).sum();
    Point {
        label: label.to_string(),
        victim_p99,
        victim_mts,
        victim_goodput: victim_tx as f64 / victim_offered as f64,
        adversary_share: adversary.transmitted as f64 / total_tx.max(1) as f64,
        adversary_deferred_share: (total_deferred > 0)
            .then(|| adversary.deferred as f64 / total_deferred as f64),
        mpps: report.serving.mpps,
    }
}

fn main() {
    let mut cycles: u64 = 200_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--cycles needs a number"));
            }
            other => usage_exit(&format!("unrecognized argument '{other}'")),
        }
    }

    println!(
        "QoS isolation sweep: {TENANTS} tenants ({ADVERSARY_PCT}% stride adversary), \
         {CHANNELS} channels, {cycles} offered cycles\n"
    );

    // Baseline: single-tenant heavy-tail (no QoS machinery at all).
    let mut single = serve_config(cycles, RegulatorMode::Off, 4);
    single.engine.tenants = 1;
    single.source = ArrivalSource::Synthetic {
        load: 0.45,
        mix: FlowMix::HeavyTail { space: 1 << 14, skew: 1.0 },
    };
    let baseline = run_serve(&single).expect("baseline run");
    println!(
        "single-tenant baseline: {:.3} Mpps, p99 {} cycles",
        baseline.serving.mpps,
        baseline.serving.latency.quantile(0.99).unwrap_or(0)
    );

    let mut points = Vec::new();
    let unregulated = run_serve(&serve_config(cycles, RegulatorMode::Off, 4)).expect("run");
    points.push(measure("off", &unregulated));
    for rate_den in [2u32, 4, 8, 16, 32] {
        let report =
            run_serve(&serve_config(cycles, RegulatorMode::PerBank, rate_den)).expect("run");
        points.push(measure(&format!("per-bank 1/{rate_den}"), &report));
    }

    let mut table = Table::new(vec![
        "regulator",
        "victim p99 (cyc)",
        "victim MTS (cyc)",
        "victim goodput",
        "adv tx share",
        "adv deferred share",
        "aggregate Mpps",
    ]);
    for p in &points {
        table.row(vec![
            p.label.clone(),
            p.victim_p99.to_string(),
            p.victim_mts.map_or_else(|| "inf".to_string(), |m| format!("{m:.0}")),
            format!("{:.3}", p.victim_goodput),
            format!("{:.3}", p.adversary_share),
            p.adversary_deferred_share.map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
            format!("{:.3}", p.mpps),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "Reading the front: the virtual pipeline keeps victim p99 flat at every \
         budget — isolation shows up in shares, never in latency. Moderate \
         budgets are a free win (deferrals land on the greedy tenant, aggregate \
         Mpps holds or improves); past the knee the per-bank buckets start \
         throttling the victims' own hot flows and everyone pays."
    );

    // Three claims the committed numbers must keep honoring:
    let off = &points[0];
    let tight = points.last().expect("sweep has points");
    // 1. Containment: the tightest budget materially shrinks the
    //    adversary's share of delivered packets.
    assert!(
        tight.adversary_share < off.adversary_share * 0.7,
        "tight regulation must contain the adversary ({:.3} -> {:.3})",
        off.adversary_share,
        tight.adversary_share
    );
    // 2. A free-win point exists: some budget holds aggregate throughput
    //    while giving the adversary nothing.
    assert!(
        points[1..]
            .iter()
            .any(|p| p.mpps >= off.mpps * 0.98 && p.adversary_share <= off.adversary_share + 0.01),
        "some budget must contain without costing aggregate Mpps"
    );
    // 3. Determinism of the pipeline: regulation never moves victim p99
    //    (reads still answer exactly D cycles after acceptance).
    assert!(
        points.iter().all(|p| p.victim_p99 == off.victim_p99),
        "victim p99 must stay pinned by the deterministic pipeline"
    );

    // Persist the front as summary scalars next to the serve baseline.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut summary: Vec<(String, f64)> = Vec::new();
    for p in &points {
        let key = p.label.replace(['-', ' '], "_").replace('/', "_of_");
        summary.push((format!("qos_{key}_victim_p99_cycles"), p.victim_p99 as f64));
        summary.push((format!("qos_{key}_victim_goodput"), p.victim_goodput));
        summary.push((format!("qos_{key}_adversary_share"), p.adversary_share));
        summary.push((format!("qos_{key}_aggregate_mpps"), p.mpps));
    }
    let summary_refs: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    std::fs::write(path, merge_bench_json(&existing, &[], &summary_refs))
        .expect("write BENCH_controller.json");
    println!("\nmerged {} qos summary scalars into {path}", summary_refs.len());
}

fn usage_exit(error: &str) -> ! {
    eprintln!("error: {error}\nusage: qos_sweep [--cycles N]");
    std::process::exit(2)
}
