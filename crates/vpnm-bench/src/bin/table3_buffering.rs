//! **Table 3** — packet buffering schemes compared with the generalized
//! VPNM architecture (paper Section 5.4.1).
//!
//! Two parts:
//!
//! 1. A **measured** comparison: the same mixed enqueue/dequeue cell
//!    workload driven through executable models of all four schemes, at
//!    one event per cycle. Acceptance rate × 64 B/2 events × 1 GHz gives
//!    the sustained line rate; the paper's ordering (Nikologiannis <
//!    RADS < CFDS ≈ VPNM) must reproduce.
//! 2. An **analytic** comparison of SRAM, area, delay, and supported
//!    interfaces next to the paper's published row values.
//!
//! Run: `cargo run --release -p vpnm-bench --bin table3_buffering`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_apps::baselines::{CfdsBuffer, NikologiannisBuffer, PacketBufferModel, RadsBuffer};
use vpnm_apps::packet_buffer::{BufferEvent, VpnmPacketBuffer};
use vpnm_bench::Table;
use vpnm_core::VpnmConfig;
use vpnm_dram::DramConfig;
use vpnm_hw::{estimate, ControllerParams};
use vpnm_workloads::packets::payload_bytes;

const QUEUES: u32 = 64;
const SLOTS: u64 = 100_000;
const CELL: usize = 64;

fn drive(model: &mut dyn PacketBufferModel) -> f64 {
    let mut rng = StdRng::seed_from_u64(1234);
    let mut seqs = vec![0u64; QUEUES as usize];
    let mut occupancy = vec![0u64; QUEUES as usize];
    let mut accepted = 0u64;
    for slot in 0..SLOTS {
        let event = if slot % 2 == 0 {
            let q = rng.gen_range(0..QUEUES);
            Some(BufferEvent::Enqueue { queue: q, cell: payload_bytes(q, seqs[q as usize], CELL) })
        } else {
            let start = rng.gen_range(0..QUEUES);
            (0..QUEUES)
                .map(|i| (start + i) % QUEUES)
                .find(|&q| occupancy[q as usize] > 0)
                .map(|q| BufferEvent::Dequeue { queue: q })
        };
        let info = event.clone();
        if model.tick(event).is_ok() {
            match info {
                Some(BufferEvent::Enqueue { queue, .. }) => {
                    seqs[queue as usize] += 1;
                    occupancy[queue as usize] += 1;
                    accepted += 1;
                }
                Some(BufferEvent::Dequeue { queue }) => {
                    occupancy[queue as usize] -= 1;
                    accepted += 1;
                }
                None => {}
            }
        }
    }
    accepted as f64 / SLOTS as f64
}

fn main() {
    println!("Table 3 (measured part): one cell event per cycle, {QUEUES} queues, {SLOTS} slots\n");
    let dram = DramConfig {
        num_banks: 32,
        rows_per_bank: 1 << 14,
        cells_per_row: 64,
        cell_bytes: CELL,
        timing: vpnm_dram::timing::TimingModel::simple(20),
    };

    let mut vpnm = VpnmPacketBuffer::new(
        VpnmConfig { addr_bits: 24, ..VpnmConfig::paper_optimal() },
        QUEUES,
        1 << 16,
        5,
    )
    .unwrap();
    // CFDS schedules one request every b cycles; the paper notes b = 1
    // "is certainly of difficult viability", so the executable model uses
    // b = 2 with a 64-entry reorder window.
    let mut cfds = CfdsBuffer::new(dram.clone(), QUEUES, 1 << 16, 64, 2).unwrap();
    // Nikologiannis: out-of-order pool over conventional banking.
    let mut niko = NikologiannisBuffer::new(dram.clone(), QUEUES, 1 << 16, 64).unwrap();
    // RADS: b = 8 cell batches, one batch per 20-cycle DRAM access.
    let mut rads = RadsBuffer::new(QUEUES, 1 << 16, 8, 20, CELL).unwrap();

    let mut measured = Table::new(vec!["scheme", "accept rate", "Gbps @1GHz (64B cells)"]);
    let mut rates = Vec::new();
    let models: Vec<(&str, &mut dyn PacketBufferModel)> = vec![
        ("nikologiannis [22]", &mut niko),
        ("rads [17]", &mut rads),
        ("cfds [12]", &mut cfds),
        ("vpnm (ours)", &mut vpnm),
    ];
    for (name, model) in models {
        let rate = drive(model);
        let gbps = rate * (CELL as f64) * 8.0 / 2.0; // 1 GHz, 2 slots/cell
        measured.row(vec![name.into(), format!("{rate:.3}"), format!("{gbps:.0}")]);
        rates.push((name, gbps));
    }
    measured.print();

    println!("\nnote: the paper's absolute line-rate column reflects each scheme's own era and");
    println!("      DRAM technology; the measured column above puts all four on identical DRAM");
    println!("      and shows the sustainable fraction — the ordering is what must reproduce.");

    // Ordering check: ours must be at the top, every baseline visibly
    // below (shape of the paper's line-rate column).
    let get = |n: &str| rates.iter().find(|(name, _)| name.starts_with(n)).expect("present").1;
    assert!(get("vpnm") > 1.5 * get("cfds"), "vpnm must beat b=2 cfds");
    assert!(get("vpnm") > 1.5 * get("rads"), "vpnm must beat rads");
    assert!(get("vpnm") > 1.5 * get("nikologiannis"), "vpnm must beat nikologiannis");
    assert!(get("vpnm") > 160.0, "vpnm must sustain the OC-3072 target");

    // Analytic part: SRAM / area / delay / interfaces vs. the paper.
    println!("\nTable 3 (analytic part) vs. paper values:\n");
    let hw = estimate(&ControllerParams::paper_default());
    let d_ns = VpnmConfig::paper_optimal().effective_delay(); // 1 cycle = 1 ns at 1 GHz
    let buf4096 = VpnmPacketBuffer::new(
        VpnmConfig { addr_bits: 32, ..VpnmConfig::paper_optimal() },
        4096,
        1 << 20,
        0,
    )
    .unwrap();
    let our_ptr_sram_kb = buf4096.pointer_sram_bytes() as f64 / 1024.0;
    let our_ctl_sram_kb = hw.sram_kib_total(32);

    let mut t =
        Table::new(vec!["scheme", "line rate", "SRAM", "area mm²", "delay ns", "interfaces"]);
    t.row(vec![
        "[22] (paper)".into(),
        "10 Gbps".into(),
        "520 KB".into(),
        "27.4".into(),
        "-".into(),
        "64000".into(),
    ]);
    t.row(vec![
        "RADS (paper)".into(),
        "40 Gbps".into(),
        "64 KB".into(),
        "10".into(),
        "53".into(),
        "130".into(),
    ]);
    t.row(vec![
        "CFDS (paper)".into(),
        "160 Gbps".into(),
        "-".into(),
        "60".into(),
        "10000".into(),
        "850".into(),
    ]);
    t.row(vec![
        "ours (paper)".into(),
        "160 Gbps".into(),
        "320 KB".into(),
        "41.9".into(),
        "960".into(),
        "4096".into(),
    ]);
    t.row(vec![
        "ours (reproduced)".into(),
        format!("{:.0} Gbps", get("vpnm")),
        format!("{:.0} KB ptrs + {:.0} KB ctl", our_ptr_sram_kb, our_ctl_sram_kb),
        format!("{:.1}", hw.total_area_mm2),
        format!("{d_ns}"),
        "4096".into(),
    ]);
    t.print();

    println!("\nRADS-style interface scaling: SRAM grows with 2b cells per queue, so a 64 KB");
    let rads_per_queue = 2 * 8 * CELL; // 2b cells of 64 B at b = 8
    println!(
        "budget supports ~{} interfaces; VPNM stores 8 B of pointers per queue and",
        64 * 1024 / rads_per_queue
    );
    println!("supports 4096 interfaces in 32 KB — the ~5x-interfaces, ~10x-latency-better");
    println!("trade against CFDS the paper reports.");
    assert!(
        (500..=2000).contains(&d_ns),
        "our delay {d_ns} ns should be the paper's ~960 ns order"
    );
}
