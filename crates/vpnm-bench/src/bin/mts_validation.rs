//! **Analysis validation** — the paper's methodology section: "we have
//! built functional models … to verify our mathematical models"
//! (Section 5). Paper-scale MTS (~10¹³) is unobservable, but scaled-down
//! configurations stall within simulable horizons; this harness measures
//! the **median** time to first stall over many controller instances and
//! compares it with the Markov prediction.
//!
//! The model describes a single bank; the controller stalls when *any* of
//! its `B` bank chains overflows, so the predicted system median is the
//! time at which the per-bank absorption probability reaches
//! `1 − 0.5^(1/B)`.
//!
//! Run: `cargo run --release -p vpnm-bench --bin mts_validation`
//! (engine flags: `--engine fast|reference --channels N --select …`; the
//! Markov model describes a single channel, so the agreement assertions
//! target the default single-channel topology)

use vpnm_analysis::markov::BankQueueModel;
use vpnm_apps::EngineOpts;
use vpnm_bench::Table;
use vpnm_core::{HashKind, LineAddr, PipelinedMemory, Request, SchedulerKind, VpnmConfig};
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

fn simulated_median(
    opts: EngineOpts,
    config: &VpnmConfig,
    trials: u64,
    horizon: u64,
) -> (f64, u64) {
    // Trials are independent controller instances whose seeds derive only
    // from the trial index, so they shard freely across cores — the
    // median is identical to the sequential run.
    let mut firsts = vpnm_bench::parallel::run_trials(trials as usize, |t| {
        let trial = t as u64;
        let mut mem = opts.build(config.clone(), 40_000 + trial).expect("valid config");
        let mut gen = UniformAddresses::new(1u64 << config.addr_bits, 17 * trial + 3);
        let mut first = horizon;
        for t in 0..horizon {
            if !mem.tick(Some(Request::read(LineAddr(gen.next_addr())))).accepted() {
                first = t + 1;
                break;
            }
        }
        first
    });
    let censored = firsts.iter().filter(|&&f| f == horizon).count() as u64;
    firsts.sort_unstable();
    (firsts[firsts.len() / 2] as f64, censored)
}

fn main() {
    let opts = EngineOpts::from_env();
    println!(
        "MTS validation: simulated median time to first stall vs. Markov prediction \
         (engine {})",
        opts.describe()
    );
    println!("(L = B so the model's service step equals the bus-grant period; R = 1.5;");
    println!(" predictions race-corrected across the B independent bank chains)\n");

    let mut t = Table::new(vec!["B", "Q", "predicted", "simulated", "ratio", "censored"]);
    let mut ratios = Vec::new();
    let mut representative: Option<VpnmConfig> = None;
    for (b, q, trials, horizon) in [
        (4u32, 2usize, 400u64, 100_000u64),
        (4, 3, 400, 100_000),
        (4, 4, 300, 200_000),
        (8, 2, 300, 200_000),
        (8, 3, 300, 200_000),
    ] {
        let config = VpnmConfig {
            banks: b,
            bank_latency: u64::from(b),
            queue_entries: q,
            storage_rows: 64,
            bus_ratio: 1.5,
            delay_override: None,
            addr_bits: 16,
            cell_bytes: 8,
            hash: HashKind::H3,
            write_buffer_entries: None,
            trace_capacity: 0,
            forensics_capacity: 0,
            scheduler: SchedulerKind::RoundRobin,
            merging: true,
        };
        if representative.is_none() {
            representative = Some(config.clone());
        }
        let model = BankQueueModel::new(b, u64::from(b), q as u64, 1.5);
        let target = 1.0 - 0.5f64.powf(1.0 / f64::from(b));
        let predicted_mem = model
            .time_to_absorption_probability(target, 10_000_000)
            .expect("reachable within horizon");
        let predicted = predicted_mem as f64 / 1.5; // interface cycles
        let (simulated, censored) = simulated_median(opts, &config, trials, horizon);
        let ratio = simulated / predicted;
        ratios.push((b, q, ratio));
        t.row(vec![
            b.to_string(),
            q.to_string(),
            format!("{predicted:.0}"),
            format!("{simulated:.0}"),
            format!("{ratio:.2}"),
            censored.to_string(),
        ]);
    }
    t.print();

    println!("\n(ratios near 1 mean the executable controller matches the analysis; the");
    println!(" model is mildly conservative — no service on arrival cycles — so simulated");
    println!(" medians may run somewhat long.)");
    for (b, q, r) in &ratios {
        assert!((0.3..4.0).contains(r), "B={b} Q={q}: ratio {r} out of tolerance");
    }
    println!("all configurations agree within a small factor ✓");

    // Emit a machine-readable record of one representative trial: the
    // first (tightest) configuration, trial 0, run to its first stall.
    // The snapshot's `first_stall_at` is exactly the trial's MTS sample.
    let config = representative.expect("at least one configuration ran");
    let mut mem = opts.build(config.clone(), 40_000).expect("valid config");
    let mut gen = UniformAddresses::new(1u64 << config.addr_bits, 3);
    for _ in 0..100_000u64 {
        if !mem.tick(Some(Request::read(LineAddr(gen.next_addr())))).accepted() {
            break;
        }
    }
    let snapshot = mem.snapshot().expect("engines keep metrics");
    vpnm_bench::report::write_snapshot("mts_validation", &snapshot.to_json());
}
