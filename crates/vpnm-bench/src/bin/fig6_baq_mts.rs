//! **Figure 6** — Mean Time to Stall vs. bank-access-queue entries `Q`
//! for `B ∈ {4, 8, 16, 32, 64}` at `R = 1.3` (paper Section 5.2), from
//! the Markov model of Figure 5.
//!
//! Pass `--show-model` to also print the Figure 5 transition matrix for
//! the illustration parameters (`L = 3`, `Q = 2`).
//!
//! Run: `cargo run --release -p vpnm-bench --bin fig6_baq_mts [-- --show-model]`

use vpnm_analysis::markov::BankQueueModel;
use vpnm_bench::{fmt_mts, Table};

const L: u64 = 20;
const R: f64 = 1.3;

fn main() {
    if std::env::args().any(|a| a == "--show-model") {
        show_figure5_model();
    }

    let banks = [4u32, 8, 16, 32, 64];
    let qs: Vec<u64> = (8..=64).step_by(8).collect();

    let mut headers = vec!["Q".to_string()];
    headers.extend(banks.iter().map(|b| format!("B={b}")));
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    for &q in &qs {
        let mut row = vec![q.to_string()];
        for &b in &banks {
            row.push(fmt_mts(BankQueueModel::new(b, L, q, R).mts_cycles()));
        }
        table.row(row);
    }
    println!("Figure 6: MTS vs. bank access queue entries (L = {L}, R = {R})\n");
    table.print();

    println!("\nutilization p·L per bank (must be < 1 for the queue to be stable):");
    for &b in &banks {
        let u = BankQueueModel::new(b, L, 8, R).utilization();
        println!("  B={b:<3} -> {u:.3}{}", if u >= 1.0 { "  (overloaded)" } else { "" });
    }

    // Paper landmarks.
    let big = BankQueueModel::new(32, L, 64, R).mts_cycles();
    println!("\npaper landmarks vs. reproduction:");
    println!("  'MTS of 10^14 for Q = 64 using 32 or 64 banks' -> B=32: {}", fmt_mts(big));
    let small_capped =
        banks[..3].iter().all(|&b| BankQueueModel::new(b, L, 64, R).mts_cycles() < 1e5);
    println!(
        "  'lower number of banks … maximum MTS of 10^2'   -> B<32 stays tiny: {small_capped}"
    );
    assert!(big > 1e12);
    assert!(small_capped);
}

fn show_figure5_model() {
    let m = BankQueueModel::new(16, 3, 2, 1.0);
    println!("Figure 5: Markov model, L = 3, Q = 2 (states = work remaining, last = stall)\n");
    let matrix = m.transition_matrix();
    print!("{:>6}", "");
    for j in 0..matrix.len() {
        if j + 1 == matrix.len() {
            print!("{:>7}", "stall");
        } else {
            print!("{j:>7}");
        }
    }
    println!();
    for (i, row) in matrix.iter().enumerate() {
        if i + 1 == matrix.len() {
            print!("{:>6}", "stall");
        } else {
            print!("{i:>6}");
        }
        for v in row {
            print!("{v:>7.3}");
        }
        println!();
    }
    println!();
}
