//! **Figure 4** — Mean Time to Stall vs. delay-storage-buffer entries `K`
//! for `B ∈ {4, 8, 16, 32, 64}` at `R = 1.3` (paper Section 5.1).
//!
//! Uses the paper's closed form
//! `MTS = log(1/2)/log(1 − C(D−1, K−1)·(1/B)^(K−1)) + D` with the same
//! `(B, Q)` pairings as the figure's legend (`Q = 12` for `B ≤ 16`,
//! `Q = 8` for `B ≥ 32`) and `D = Q·L`, `L = 20`.
//!
//! Run: `cargo run --release -p vpnm-bench --bin fig4_dsb_mts`

use vpnm_analysis::dsb::{dsb_mts, paper_delay};
use vpnm_bench::{fmt_mts, Table};

const L: u64 = 20;

fn main() {
    // (B, Q) pairs from the figure's legend.
    let curves: [(u32, u64); 5] = [(4, 12), (8, 12), (16, 12), (32, 8), (64, 8)];
    let ks: Vec<u64> = (8..=128).step_by(8).collect();

    let mut headers = vec!["K".to_string()];
    headers.extend(curves.iter().map(|(b, q)| format!("B={b},Q={q}")));
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    for &k in &ks {
        let mut row = vec![k.to_string()];
        for &(b, q) in &curves {
            row.push(fmt_mts(dsb_mts(b, k, paper_delay(q, L))));
        }
        table.row(row);
    }

    println!("Figure 4: MTS vs. delay storage buffer entries (R = 1.3, L = {L}, D = Q·L)\n");
    table.print();

    // The paper's stated landmarks.
    let b32_k32 = dsb_mts(32, 32, paper_delay(8, L));
    println!("\npaper landmarks vs. reproduction:");
    println!("  'for B = 32 … MTS of 10^12 for K = 32'      -> {:.2e}", b32_k32);
    let b64_close = (8..=128).step_by(8).all(|k| {
        let m32 = dsb_mts(32, k, paper_delay(8, L));
        let m64 = dsb_mts(64, k, paper_delay(8, L));
        m64 >= m32
    });
    println!(
        "  'curve for B = 64 follows closely B = 32'    -> B=64 ≥ B=32 at every K: {b64_close}"
    );
    let low_b_bad =
        dsb_mts(8, 32, paper_delay(12, L)) < 1e8 && dsb_mts(16, 32, paper_delay(12, L)) < 1e8;
    println!(
        "  'B < 32 needs much higher K to reach 10^8'   -> B∈{{8,16}}, K=32 below 1e8: {low_b_bad}"
    );
    assert!((1e11..1e14).contains(&b32_k32), "B=32/K=32 must land near 1e12");
    assert!(b64_close && low_b_bad);
}
