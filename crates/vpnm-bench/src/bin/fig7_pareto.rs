//! **Figure 7** — Pareto-optimal Mean Time to Stall vs. total controller
//! area, one curve per bus scaling ratio `R ∈ {1.0 … 1.5}` (paper
//! Section 5.3.1).
//!
//! Sweeps the `(B, Q, K)` grid per `R`, evaluates MTS (combined
//! delay-storage + bank-queue) and area (calibrated 0.13 µm model), and
//! prints each ratio's Pareto frontier plus the extra memory-bus
//! bandwidth it costs (the percentages annotated in the paper's figure).
//!
//! Run: `cargo run --release -p vpnm-bench --bin fig7_pareto`

use vpnm_analysis::design_space::{pareto_frontier, sweep, SweepConfig};
use vpnm_bench::{fmt_mts, Table};

fn main() {
    let ratios = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5];
    println!("Figure 7: Pareto-optimal MTS vs. area per bus scaling ratio (L = 20)\n");
    let mut best_at_30mm: Vec<(f64, f64)> = Vec::new();
    for &r in &ratios {
        let config = SweepConfig {
            banks: vec![16, 32, 64],
            queue_entries: (8..=64).step_by(8).collect(),
            storage_rows: (16..=128).step_by(16).collect(),
            bus_ratios: vec![r],
            bank_latency: 20,
        };
        let points = sweep(&config);
        let frontier = pareto_frontier(&points);
        let extra_bw = (r - 1.0) / r * 100.0;
        println!("R = {r} ({extra_bw:.0}% extra memory-bus bandwidth)");
        let mut table = Table::new(vec!["area mm²", "B", "Q", "K", "MTS cycles"]);
        for p in frontier.iter().filter(|p| p.mts_total > 1.0) {
            table.row(vec![
                format!("{:.1}", p.area_mm2),
                p.banks.to_string(),
                p.queue_entries.to_string(),
                p.storage_rows.to_string(),
                fmt_mts(p.mts_total),
            ]);
        }
        table.print();
        let best30 =
            points.iter().filter(|p| p.area_mm2 <= 30.0).map(|p| p.mts_total).fold(0.0, f64::max);
        best_at_30mm.push((r, best30));
        println!();
    }

    println!("best MTS within a ~30 mm² budget, per R (the paper picks R = 1.3/1.4 here):");
    for (r, mts) in &best_at_30mm {
        println!("  R = {r}: {}", fmt_mts(*mts));
    }
    // Paper: "For R = 1.3 … one second MTS = 1e9 for about 30 mm²" and
    // R = 1.4 reaches ~1 hour; higher R must dominate lower R.
    let at = |target: f64| {
        best_at_30mm
            .iter()
            .find(|(r, _)| (*r - target).abs() < 1e-9)
            .map(|(_, m)| *m)
            .expect("ratio present")
    };
    assert!(at(1.3) >= 1e9, "R=1.3 must reach the 1-second budget at 30 mm²");
    assert!(at(1.3) >= at(1.0), "more bus headroom must never hurt");
    assert!(at(1.5) >= at(1.1));
    println!(
        "\nshape check passed: MTS grows with R at fixed area, R = 1.3 reaches 1e9 under 30 mm² ✓"
    );
}
