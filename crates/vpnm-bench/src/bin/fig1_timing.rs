//! **Figure 1** — how a bank controller normalizes every access to a fixed
//! delay `D = 30` with bank access time `L = 15` (so `Q = D/L = 2`
//! overlapping requests can be absorbed).
//!
//! Reproduces the paper's three scenarios on a real bank controller:
//! typical operation, short-cut (merged redundant) accesses, and a bank
//! overload stall. Each is rendered as an ASCII timing diagram: one row
//! per request, `a`=accepted, `m`=merged, `I`=bank access issued,
//! `D`=bank access done, `C`=completed (played back at `t + 30`),
//! `S`=stalled.
//!
//! Run: `cargo run --release -p vpnm-bench --bin fig1_timing`
//! (engine flags: `--engine fast|reference --channels N --select …` apply
//! to the full-controller rendition; the figure's steering assumes one
//! channel — extra channels spread the overload, which is the fix the
//! fabric exists to provide)

use vpnm_apps::EngineOpts;
use vpnm_core::bank_controller::{Accepted, BankController, BankEvent};
use vpnm_core::delay_line::CircularDelayBuffer;
use vpnm_core::request::LineAddr;
use vpnm_core::{HashKind, PipelinedMemory, Request, VpnmConfig};
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::trace::TraceKind;
use vpnm_sim::{Cycle, TraceRecorder};

const D: u64 = 30;
const L: u64 = 15;

/// Drives one scenario: `(cycle, request-id, address)` submissions.
fn run_scenario(title: &str, submissions: &[(u64, u64, u64)]) {
    let mut dram = DramDevice::new(DramConfig {
        num_banks: 1,
        rows_per_bank: 16,
        cells_per_row: 4,
        cell_bytes: 8,
        timing: vpnm_dram::timing::TimingModel::simple(L),
    });
    // K = 4 rows, Q = D/L = 2 queue entries, 1 write-buffer slot. The
    // playback wheel lives outside the bank controller (in the full
    // system one shared wheel serves all banks).
    let mut bc = BankController::new(0, 4, 2, 1);
    let mut wheel = CircularDelayBuffer::new(D as usize);
    let mut trace = TraceRecorder::with_capacity(256);
    // request id currently being accessed by the bank, with finish time
    let mut accessing: Option<(u64, Cycle)> = None;
    // ids in delay-line schedule order: playbacks pop from the front
    let mut scheduled: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    // ids whose bank access is still queued, FIFO
    let mut queued_ids: std::collections::VecDeque<u64> = std::collections::VecDeque::new();

    let horizon = submissions.iter().map(|&(t, _, _)| t).max().unwrap_or(0) + D + 2 * L + 2;
    for t in 0..horizon {
        let now = Cycle::new(t);
        // bank grant every cycle (single bank, R = 1)
        if let Some((id, done)) = accessing {
            if now >= done {
                trace.record(now, id, TraceKind::AccessDone);
                accessing = None;
            }
        }
        if accessing.is_none() {
            if let Some(&id) = queued_ids.front() {
                if bc.on_bus_grant(&mut dram, now).issued {
                    queued_ids.pop_front();
                    trace.record(now, id, TraceKind::AccessIssued);
                    accessing = Some((id, now + L));
                }
            }
        }
        // interface side: submit if scheduled for this cycle
        let mut incoming = None;
        if let Some(&(_, id, addr)) = submissions.iter().find(|&&(st, _, _)| st == t) {
            match bc.submit(BankEvent::Read { addr: LineAddr(addr) }) {
                Ok(Accepted::ReadQueued(row)) => {
                    trace.record(now, id, TraceKind::Accepted);
                    scheduled.push_back(id);
                    queued_ids.push_back(id);
                    incoming = Some(row);
                }
                Ok(Accepted::ReadMerged(row)) => {
                    trace.record(now, id, TraceKind::Merged);
                    scheduled.push_back(id);
                    incoming = Some(row);
                }
                Ok(Accepted::WriteBuffered) => unreachable!("reads only"),
                Err(kind) => {
                    trace.record(now, id, TraceKind::Stalled);
                    println!("  cycle {t:>3}: request {id} STALLED ({kind})");
                }
            }
        }
        // The delay line is FIFO in schedule order, so a playback always
        // belongs to the globally oldest scheduled id.
        if let Some(row) = wheel.tick(incoming) {
            bc.playback(row);
            let id = scheduled.pop_front().expect("playback has a scheduled id");
            trace.record(now, id, TraceKind::Completed);
        }
    }
    println!("\n=== {title} ===");
    println!("{}", trace.render_timing_diagram(120));
}

fn main() {
    println!("Figure 1: bank controller latency normalization (D = {D}, L = {L}, Q = {})", D / L);
    println!("legend: a accepted, m merged (redundant), I bank access start, D bank access done,");
    println!("        C completed at exactly t+{D}, S stalled\n");

    run_scenario("typical operating mode (paper: left graph)", &[(0, 1, 0xA), (2, 2, 0xB)]);
    run_scenario(
        "short-cut accesses: A,B then two redundant A's (paper: middle graph)",
        &[(0, 1, 0xA), (2, 2, 0xB), (4, 3, 0xA), (6, 4, 0xA)],
    );
    run_scenario(
        "bank overload stall: five distinct requests A-E too close together (paper: right graph)",
        &[(0, 1, 0xA), (10, 2, 0xB), (20, 3, 0xC), (25, 4, 0xD), (30, 5, 0xE)],
    );

    // Full-controller rendition of the overload scenario: the same five
    // requests through a VpnmController with the figure's bank shape
    // (Q = D/L = 2, K = 4; two banks, all traffic steered to bank 0 via
    // even addresses under the low-bits map), leaving the aggregate
    // metrics behind as a machine-readable record — the overload shows up
    // as nonzero `access_queue_stalls`, the diagram's `S` marker.
    let config = VpnmConfig {
        banks: 2,
        bank_latency: L,
        queue_entries: (D / L) as usize,
        storage_rows: 4,
        bus_ratio: 1.0,
        addr_bits: 8,
        ..VpnmConfig::paper_optimal()
    }
    .with_hash(HashKind::LowBits);
    let mut mem = EngineOpts::from_env().build(config, 0).expect("valid config");
    let submissions = [(0u64, 0x14u64), (10, 0x16), (20, 0x18), (25, 0x1A), (30, 0x1C)];
    for t in 0..submissions.last().expect("non-empty").0 + D + 2 * L + 2 {
        let req = submissions
            .iter()
            .find(|&&(st, _)| st == t)
            .map(|&(_, addr)| Request::read(LineAddr(addr)));
        mem.tick(req);
    }
    mem.drain();
    let snapshot = mem.snapshot().expect("engines keep metrics");
    vpnm_bench::report::write_snapshot("fig1_timing", &snapshot.to_json());

    println!("Every completed request shows C exactly {D} cycles after its a/m marker;");
    println!("redundant requests (m) trigger no bank access; overload (more than Q = {} in", D / L);
    println!("flight for one bank) stalls instead of breaking the timing abstraction.");
}
