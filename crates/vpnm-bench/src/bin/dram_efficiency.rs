//! **Section 3.1 motivation** — "PC133 SDRAM works at 60% efficiency and
//! DDR266 SDRAM works at 37% efficiency, where 80 to 85% of the lost
//! efficiency is due to the bank conflicts."
//!
//! Measures bus efficiency (fraction of cycles the data bus transfers) on
//! the raw DRAM substrate under different access patterns and bank
//! counts, with a simple greedy issuer that retries conflicting accesses —
//! i.e. what a conventional controller without VPNM achieves.
//!
//! Run: `cargo run --release -p vpnm-bench --bin dram_efficiency`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_bench::Table;
use vpnm_dram::timing::{OpenPageTiming, TimingModel};
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::Cycle;

const ACCESSES: u64 = 20_000;

/// Greedy issue: try one pending random access per cycle; on a bank
/// conflict, hold it and retry next cycle (head-of-line blocking, as in a
/// simple in-order controller).
fn measure(config: DramConfig, pattern: Pattern, seed: u64) -> f64 {
    let banks = config.num_banks;
    let cells = config.cells_per_bank();
    let mut dram = DramDevice::new(config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = Cycle::ZERO;
    let mut pending: Option<(u32, u64)> = None;
    let mut done = 0u64;
    let mut seq = 0u64;
    while done < ACCESSES {
        let (bank, offset) = pending.take().unwrap_or_else(|| match pattern {
            Pattern::Random => (rng.gen_range(0..banks), rng.gen_range(0..cells)),
            Pattern::Sequential => {
                let s = seq;
                seq += 1;
                ((s % u64::from(banks)) as u32, (s / u64::from(banks)) % cells)
            }
            Pattern::RowLocal => (rng.gen_range(0..banks), rng.gen_range(0..64)),
        });
        match dram.issue_read(bank, offset, now) {
            Ok(_) => done += 1,
            Err(_) => pending = Some((bank, offset)),
        }
        now += 1;
    }
    dram.stats().bus_efficiency(now)
}

#[derive(Clone, Copy)]
enum Pattern {
    Random,
    Sequential,
    RowLocal,
}

fn main() {
    println!("DRAM bus efficiency under a conventional in-order controller ({ACCESSES} reads)\n");
    let sdram = DramConfig {
        num_banks: 4,
        rows_per_bank: 1 << 12,
        cells_per_row: 64,
        cell_bytes: 64,
        timing: TimingModel::OpenPage(OpenPageTiming::sdram_pc133()),
    };
    let rdram32 = DramConfig::paper_rdram();
    let rdram512 = DramConfig { num_banks: 512, ..DramConfig::paper_rdram() };

    let mut t = Table::new(vec!["device", "pattern", "bus efficiency"]);
    let mut results = Vec::new();
    for (dev_name, cfg) in [
        ("SDRAM 4-bank open-page", &sdram),
        ("RDRAM-class 32-bank", &rdram32),
        ("RDRAM-class 512-bank", &rdram512),
    ] {
        for (pat_name, pat) in [
            ("random", Pattern::Random),
            ("sequential", Pattern::Sequential),
            ("row-local", Pattern::RowLocal),
        ] {
            let eff = measure(cfg.clone(), pat, 7);
            t.row(vec![dev_name.into(), pat_name.into(), format!("{:.1}%", eff * 100.0)]);
            results.push((dev_name, pat_name, eff));
        }
    }
    t.print();

    let get = |d: &str, p: &str| {
        results.iter().find(|(dn, pn, _)| *dn == d && *pn == p).expect("present").2
    };
    let sdram_rand = get("SDRAM 4-bank open-page", "random");
    let sdram_local = get("SDRAM 4-bank open-page", "row-local");
    let r32 = get("RDRAM-class 32-bank", "random");
    let r512 = get("RDRAM-class 512-bank", "random");
    println!("\npaper landmark (Section 3.1): PC133-class parts lose most of their bandwidth to");
    println!("bank conflicts on non-streaming traffic. A head-of-line-blocking in-order issuer");
    println!("makes every conflict cost its full resolution time, so the numbers here bound the");
    println!("conventional controller from below; the orderings are what matter:");
    println!("  few banks, random:        {:.0}% (conflict-bound)", sdram_rand * 100.0);
    println!("  few banks, row-local:     {:.0}% (the paper's ~60% regime)", sdram_local * 100.0);
    println!(
        "  many banks, random:       {:.0}% → {:.0}% as banks grow 32 → 512",
        r32 * 100.0,
        r512 * 100.0
    );
    println!("  streaming (sequential):   ~100% everywhere — why vendors quote peak numbers");
    assert!(sdram_rand < 0.5, "few banks + random traffic must be conflict-bound");
    assert!(sdram_local > sdram_rand, "row locality must help an open-page device");
    assert!(r512 > r32 + 0.2, "hundreds of banks must recover most of the loss");
    assert!(get("RDRAM-class 32-bank", "sequential") > 0.95);
    println!("\nVPNM's contribution is exactly this gap: it schedules *around* the conflicts so");
    println!("the delivered bandwidth approaches the conflict-free case for ANY pattern.");
}
