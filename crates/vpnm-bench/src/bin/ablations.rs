//! **Ablations** — quantifying each design choice DESIGN.md calls out:
//!
//! 1. **Redundant-request merging** (paper Section 3.4): without the
//!    merging queue, an "A,A,A,…" or "A,B,A,B,…" flood collapses the
//!    controller; with it, the flood is absorbed for free.
//! 2. **Universal hashing** (Section 3.2): low-bit bank selection vs. the
//!    keyed families under stride traffic.
//! 3. **Bus scaling ratio R** (Section 4): how stall rates fall as memory
//!    headroom grows at fixed Q/K.
//! 4. **Bus scheduler**: the paper's round-robin vs. the work-conserving
//!    slot-reclaim variant it alludes to.
//!
//! Run: `cargo run --release -p vpnm-bench --bin ablations`
//! (engine flags: `--engine fast|reference --channels N --select …`; the
//! pass/fail assertions target the default single-channel topology)

use vpnm_apps::EngineOpts;
use vpnm_bench::Table;
use vpnm_core::{HashKind, LineAddr, PipelinedMemory, Request, SchedulerKind, VpnmConfig};
use vpnm_workloads::generators::{AddressGenerator, RedundantPattern, StrideAddresses};
use vpnm_workloads::UniformAddresses;

const REQUESTS: u64 = 100_000;

fn stall_fraction(
    opts: EngineOpts,
    config: VpnmConfig,
    seed: u64,
    gen: &mut dyn AddressGenerator,
) -> f64 {
    let mut mem = opts.build(config, seed).expect("valid config");
    let mut stalls = 0u64;
    for _ in 0..REQUESTS {
        if !mem.tick(Some(Request::read(LineAddr(gen.next_addr())))).accepted() {
            stalls += 1;
        }
    }
    stalls as f64 / REQUESTS as f64
}

fn tight() -> VpnmConfig {
    VpnmConfig {
        banks: 16,
        bank_latency: 10,
        queue_entries: 8,
        storage_rows: 16,
        bus_ratio: 1.2,
        addr_bits: 24,
        ..VpnmConfig::paper_optimal()
    }
}

const HASH_KINDS: [HashKind; 5] = [
    HashKind::LowBits,
    HashKind::H3,
    HashKind::MultiplyShift,
    HashKind::Tabulation,
    HashKind::Affine,
];
const RATIOS: [f64; 6] = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5];

fn main() {
    let opts = EngineOpts::from_env();
    println!(
        "Ablations on a tightened configuration (B=16, L=10, Q=8, K=16), {REQUESTS} reads \
         each, engine {}\n",
        opts.describe()
    );

    // Every measurement is an independent (config, seed, generator)
    // triple, so the whole battery shards across cores; results return in
    // job order, keeping the report byte-identical to a sequential run.
    type Job = Box<dyn FnOnce() -> f64 + Send>;
    let mut jobs: Vec<Job> = vec![
        Box::new(move || {
            stall_fraction(opts, tight(), 1, &mut RedundantPattern::new(vec![10, 20]))
        }),
        Box::new(move || {
            stall_fraction(
                opts,
                VpnmConfig { merging: false, ..tight() },
                1,
                &mut RedundantPattern::new(vec![10, 20]),
            )
        }),
    ];
    for kind in HASH_KINDS {
        jobs.push(Box::new(move || {
            stall_fraction(
                opts,
                tight().with_hash(kind),
                2,
                &mut StrideAddresses::new(0, 16, 1 << 24),
            )
        }));
    }
    for r in RATIOS {
        jobs.push(Box::new(move || {
            stall_fraction(
                opts,
                tight().with_bus_ratio(r),
                3,
                &mut UniformAddresses::new(1 << 24, 30),
            )
        }));
    }
    jobs.push(Box::new(move || {
        stall_fraction(opts, tight(), 4, &mut UniformAddresses::new(1 << 24, 40))
    }));
    jobs.push(Box::new(move || {
        stall_fraction(
            opts,
            VpnmConfig { scheduler: SchedulerKind::WorkConserving, ..tight() },
            4,
            &mut UniformAddresses::new(1 << 24, 40),
        )
    }));
    let results = vpnm_bench::parallel::run_jobs(jobs);
    let mut results = results.into_iter();
    let mut next = || results.next().expect("one result per job");

    // 1. merging
    println!("1. redundant-request merging (A,B,A,B flood):");
    let mut t = Table::new(vec!["variant", "stall fraction"]);
    let on = next();
    let off = next();
    t.row(vec!["merging on (paper)".into(), format!("{on:.5}")]);
    t.row(vec!["merging off".into(), format!("{off:.5}")]);
    t.print();
    assert!(on < 1e-4 && off > 0.5, "merging must be the difference between 0 and collapse");

    // 2. hashing under stride
    println!("\n2. bank mapping under a stride-by-B attack:");
    let mut t = Table::new(vec!["mapping", "stall fraction"]);
    for kind in HASH_KINDS {
        t.row(vec![kind.to_string(), format!("{:.5}", next())]);
    }
    t.print();

    // 3. bus ratio sweep
    println!("\n3. bus scaling ratio R under uniform load (fixed Q=8, K=16):");
    let mut t = Table::new(vec!["R", "stall fraction"]);
    let mut prev = f64::INFINITY;
    for r in RATIOS {
        let f = next();
        t.row(vec![format!("{r}"), format!("{f:.5}")]);
        assert!(f <= prev + 0.01, "stalls must (weakly) fall with R");
        prev = f;
    }
    t.print();

    // 4. scheduler
    println!("\n4. bus scheduler under uniform load:");
    let mut t = Table::new(vec!["scheduler", "stall fraction"]);
    let rr = next();
    let wc = next();
    t.row(vec!["round-robin (paper)".into(), format!("{rr:.5}")]);
    t.row(vec!["work-conserving".into(), format!("{wc:.5}")]);
    t.print();
    assert!(wc <= rr + 1e-9, "reclaimed slots must not hurt");

    // Re-run the scheduler baseline (tight config, seed 4, uniform load)
    // sequentially and leave its aggregate metrics behind as a
    // machine-readable record of the battery's reference operating point.
    let mut mem = opts.build(tight(), 4).expect("valid config");
    let mut gen = UniformAddresses::new(1 << 24, 40);
    for _ in 0..REQUESTS {
        mem.tick(Some(Request::read(LineAddr(gen.next_addr()))));
    }
    let snapshot = mem.snapshot().expect("engines keep metrics");
    vpnm_bench::report::write_snapshot("ablations", &snapshot.to_json());

    println!("\nall ablation checks passed ✓");
}
