//! **Section 5.4.2 claim** — TCP reassembly on VPNM sustains ~40 Gbps:
//! "Since our memory system can process requests every cycle, with a
//! 400 MHz RDRAM we can get an effective throughput of
//! (400 MHz/5)·64 bytes/sec = 40 Gbps", with ~72 KB of segment FIFO SRAM
//! (packets held for 3·D while their three leading accesses complete).
//!
//! Runs out-of-order multi-connection streams through the engine on the
//! paper-scale controller and reports measured cycles/chunk and the
//! derived throughput at 400 MHz.
//!
//! Run: `cargo run --release -p vpnm-bench --bin reassembly_throughput`

use vpnm_apps::reassembly::ReassemblyEngine;
use vpnm_bench::Table;
use vpnm_core::{VpnmConfig, VpnmController};
use vpnm_workloads::packets::payload_bytes;
use vpnm_workloads::OutOfOrderSegments;

const CHUNK: usize = 64;
const CLOCK_MHZ: f64 = 400.0;

fn run(flows: u32, chunks_per_flow: usize, reorder_window: usize) -> (f64, f64, u64) {
    let mem = VpnmController::new(VpnmConfig::paper_optimal(), 77).unwrap();
    let mut engine = ReassemblyEngine::new(mem, flows, 1 << 13, CHUNK);
    let streams: Vec<Vec<u8>> =
        (0..flows).map(|f| payload_bytes(f, 1, chunks_per_flow * CHUNK)).collect();
    let mut sources: Vec<OutOfOrderSegments> = streams
        .iter()
        .enumerate()
        .map(|(f, s)| OutOfOrderSegments::new(s, 4 * CHUNK, reorder_window, 900 + f as u64))
        .collect();
    loop {
        let mut progressed = false;
        for (f, src) in sources.iter_mut().enumerate() {
            if let Some(seg) = src.next_segment() {
                engine.submit_segment(f as u32, seg.offset, &seg.data);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let cycles = engine.cycles();
    let stats = *engine.stats();
    engine.drain();
    for (f, stream) in streams.iter().enumerate() {
        assert_eq!(engine.scanned(f as u32), &stream[..], "flow {f} must scan in order");
    }
    let per_chunk = cycles as f64 / stats.chunks_ingested as f64;
    let gbps = (CHUNK as f64 * 8.0) / per_chunk * CLOCK_MHZ / 1000.0;
    (per_chunk, gbps, stats.stall_retries)
}

fn main() {
    println!("Reassembly throughput on VPNM (paper claim: 5 accesses / 64 B chunk → 40 Gbps at 400 MHz)\n");
    let mut t = Table::new(vec![
        "flows",
        "reorder window",
        "cycles/chunk",
        "Gbps @400MHz",
        "stall retries",
    ]);
    let mut headline = 0.0;
    for (flows, window) in [(16u32, 4usize), (64, 8), (128, 8), (64, 16)] {
        let (per_chunk, gbps, stalls) = run(flows, 64, window);
        if flows == 64 && window == 8 {
            headline = gbps;
        }
        t.row(vec![
            flows.to_string(),
            window.to_string(),
            format!("{per_chunk:.2}"),
            format!("{gbps:.1}"),
            stalls.to_string(),
        ]);
    }
    t.print();

    // SRAM FIFO sizing (paper: "requires 72 Kbytes of SRAM"): packets wait
    // 3·D cycles while the record/hole accesses round-trip; at line rate
    // one 64 B chunk arrives per 5 cycles.
    let d = VpnmConfig::paper_optimal().effective_delay();
    let fifo_kb = (3 * d) as f64 / 5.0 * CHUNK as f64 / 1024.0;
    println!(
        "\nsegment FIFO sizing: 3·D = {} cycles × (64 B / 5 cycles) = {:.0} KB (paper: 72 KB)",
        3 * d,
        fifo_kb
    );
    println!("headline: {headline:.1} Gbps vs. the paper's 40 Gbps");
    assert!(headline > 30.0, "must be in the 40 Gbps regime, got {headline:.1}");
}
