//! Deterministic work-sharding for the measurement binaries.
//!
//! The MTS-validation, adversary-resistance and ablation harnesses all
//! reduce to "run many mutually independent simulations, then report in a
//! fixed order". Each trial owns its own controller instance seeded from
//! its trial index, so results are identical whether the trials run on one
//! core or sixteen — sharding changes wall-clock time only. The worker
//! pool is the same scoped-thread / atomic-cursor pattern as the
//! design-space sweep in `vpnm-analysis::design_space`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` across the available cores and returns their results in
/// job order (index `i` of the output is job `i`'s result, regardless of
/// which worker ran it or when it finished).
///
/// Jobs must be independent: each should derive any randomness from its
/// own index/seed, never from shared mutable state.
///
/// # Panics
///
/// Propagates a panic from any job after all workers stop.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = std::thread::available_parallelism().map_or(4, |w| w.get()).min(n.max(1));
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let job = slot.lock().expect("job slot").take().expect("each job taken once");
                let out = job();
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    })
    .expect("sharded jobs must not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker joined").expect("every job ran"))
        .collect()
}

/// Convenience: runs `count` indexed trials (`f(0), f(1), …`) across the
/// cores, returning results in trial order.
pub fn run_trials<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = count;
    let workers = std::thread::available_parallelism().map_or(4, |w| w.get()).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(&f).collect();
    }
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    })
    .expect("sharded trials must not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker joined").expect("every trial ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_job_order() {
        let jobs: Vec<_> = (0..97usize).map(|i| move || i * i).collect();
        let out = run_jobs(jobs);
        assert_eq!(out, (0..97).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn trials_match_sequential_run() {
        let parallel = run_trials(64, |i| (i as u64).wrapping_mul(2654435761) % 1000);
        let sequential: Vec<u64> =
            (0..64).map(|i| (i as u64).wrapping_mul(2654435761) % 1000).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        assert!(run_jobs::<u32, fn() -> u32>(vec![]).is_empty());
        assert_eq!(run_jobs(vec![|| 7u32]), vec![7]);
        assert!(run_trials(0, |i| i).is_empty());
    }
}
