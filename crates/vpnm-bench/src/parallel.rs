//! Deterministic work-sharding for the measurement binaries.
//!
//! The MTS-validation, adversary-resistance and ablation harnesses all
//! reduce to "run many mutually independent simulations, then report in a
//! fixed order". Each trial owns its own controller instance seeded from
//! its trial index, so results are identical whether the trials run on one
//! core or sixteen — sharding changes wall-clock time only. The worker
//! pool is the same scoped-thread / atomic-cursor pattern as the
//! design-space sweep in `vpnm-analysis::design_space`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Workers to use for `n` units of claimable work: the `VPNM_WORKERS`
/// environment override when set (clamped to at least 1, so `0` or
/// garbage cannot disable the sequential fallback), otherwise the
/// machine's available parallelism — either way capped at the work-unit
/// count (and at least 1, so the empty case still takes the sequential
/// path). Both sharding helpers go through this so the capping policy
/// cannot drift between them; CI and campaign checkpoints pin
/// `VPNM_WORKERS` for reproducible parallelism.
pub fn worker_count(n: usize) -> usize {
    let available = match std::env::var("VPNM_WORKERS") {
        Ok(v) => v.trim().parse::<usize>().map_or(1, |w| w.max(1)),
        Err(_) => std::thread::available_parallelism().map_or(4, |w| w.get()),
    };
    available.min(n.max(1))
}

/// Runs `jobs` across the available cores and returns their results in
/// job order (index `i` of the output is job `i`'s result, regardless of
/// which worker ran it or when it finished).
///
/// Jobs must be independent: each should derive any randomness from its
/// own index/seed, never from shared mutable state.
///
/// # Panics
///
/// Propagates a panic from any job after all workers stop.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let job = slot.lock().expect("job slot").take().expect("each job taken once");
                let out = job();
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    })
    .expect("sharded jobs must not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker joined").expect("every job ran"))
        .collect()
}

/// Convenience: runs `count` indexed trials (`f(0), f(1), …`) across the
/// cores, returning results in trial order.
pub fn run_trials<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_chunked(count, 1, f, |_, _| {})
}

/// [`run_trials`] with chunked claiming and a progress callback: workers
/// claim `chunk` consecutive trial indices at a time (amortizing the
/// atomic-cursor round trip when individual trials are short), and
/// `progress(done, count)` fires after each completed chunk — from the
/// worker thread that finished it, so long campaigns can report liveness
/// or append checkpoints without a coordinator thread.
///
/// Trial `i` is always computed as `f(i)` no matter how trials land on
/// workers, so results — in trial order — are identical to the sequential
/// run for every chunk size and core count; only wall-clock time and the
/// interleaving of `progress` calls vary.
///
/// # Panics
///
/// Panics if `chunk == 0`; propagates a panic from any trial after all
/// workers stop.
pub fn run_trials_chunked<T, F, P>(count: usize, chunk: usize, f: F, progress: P) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize, usize) + Sync,
{
    assert!(chunk > 0, "chunk size must be non-zero");
    let n = count;
    let workers = worker_count(n.div_ceil(chunk));
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            out.extend((start..end).map(&f));
            progress(end, n);
        }
        return out;
    }
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, slot) in results.iter().enumerate().take(end).skip(start) {
                    *slot.lock().expect("result slot") = Some(f(i));
                }
                let finished = done.fetch_add(end - start, Ordering::Relaxed) + (end - start);
                progress(finished, n);
            });
        }
    })
    .expect("sharded trials must not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker joined").expect("every trial ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpnm_workers_env_override_is_honored_and_clamped() {
        // All env probing lives in this one test (tests in this binary run
        // concurrently, and the sharding tests' *results* are worker-count
        // independent by design, so a transient override cannot flake them).
        std::env::set_var("VPNM_WORKERS", "3");
        assert_eq!(worker_count(100), 3, "override wins over detection");
        assert_eq!(worker_count(2), 2, "still capped at the work-unit count");
        assert_eq!(worker_count(0), 1, "empty work stays sequential");

        std::env::set_var("VPNM_WORKERS", "0");
        assert_eq!(worker_count(100), 1, "zero clamps to one worker");
        std::env::set_var("VPNM_WORKERS", "not-a-number");
        assert_eq!(worker_count(100), 1, "garbage pins to one worker, not a panic");
        std::env::set_var("VPNM_WORKERS", " 5 ");
        assert_eq!(worker_count(100), 5, "whitespace is tolerated");

        std::env::remove_var("VPNM_WORKERS");
        assert!(worker_count(100) >= 1, "detection path is back after removal");
    }

    #[test]
    fn results_keep_job_order() {
        let jobs: Vec<_> = (0..97usize).map(|i| move || i * i).collect();
        let out = run_jobs(jobs);
        assert_eq!(out, (0..97).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn trials_match_sequential_run() {
        let parallel = run_trials(64, |i| (i as u64).wrapping_mul(2654435761) % 1000);
        let sequential: Vec<u64> =
            (0..64).map(|i| (i as u64).wrapping_mul(2654435761) % 1000).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        assert!(run_jobs::<u32, fn() -> u32>(vec![]).is_empty());
        assert_eq!(run_jobs(vec![|| 7u32]), vec![7]);
        assert!(run_trials(0, |i| i).is_empty());
        assert!(run_trials_chunked(0, 8, |i| i, |_, _| {}).is_empty());
    }

    #[test]
    fn chunked_trials_match_sequential_for_any_chunk_size() {
        let sequential: Vec<u64> =
            (0..100).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40).collect();
        for chunk in [1, 3, 8, 100, 1000] {
            let parallel = run_trials_chunked(
                100,
                chunk,
                |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40,
                |_, _| {},
            );
            assert_eq!(parallel, sequential, "chunk {chunk}");
        }
    }

    #[test]
    fn progress_reports_every_chunk_and_reaches_total() {
        let seen = Mutex::new(Vec::new());
        let out = run_trials_chunked(
            50,
            8,
            |i| i,
            |done, total| {
                seen.lock().unwrap().push((done, total));
            },
        );
        assert_eq!(out.len(), 50);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 50usize.div_ceil(8), "one report per chunk");
        assert!(seen.iter().all(|&(_, t)| t == 50));
        assert_eq!(seen.iter().map(|&(d, _)| d).max(), Some(50));
    }
}
