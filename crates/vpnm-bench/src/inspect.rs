//! Stall forensics scenarios for the `vpnm-inspect` binary and its tests.
//!
//! The centerpiece is a *forced delay-storage-buffer overflow*: a workload
//! constructed so the controller must stall on an exhausted DSB (`K` rows
//! live) rather than a full bank access queue — the harder of the two
//! conditions to trigger, because `validate()` enforces `K ≥ Q` and a
//! saturating flood normally fills the queue first. The trick is to
//! *underdrive* the queue while *overholding* the rows:
//!
//! * a degenerate low-bits hash plus stride-`B` addresses steers every
//!   read to bank 0;
//! * distinct addresses defeat the merge CAM (each read needs its own
//!   row);
//! * one read every few cycles keeps the offered rate below the bank's
//!   service rate, so the queue drains — but each row stays live for the
//!   full deterministic delay `D`, and with `D` inflated far beyond the
//!   safe minimum via `delay_override`, live rows accumulate at the
//!   accept rate until all `K` are held.
//!
//! The forensic ring then holds the complete causal window: accepts and
//! retires marching along with a shallow queue, storage occupancy
//! climbing to `K`, and the stall with full context.

use vpnm_core::forensics::ForensicEvent;
use vpnm_core::{HashKind, LineAddr, Request, StallKind, VpnmConfig, VpnmController};

/// Everything `vpnm-inspect` needs to render a forced-overflow stall.
#[derive(Debug)]
pub struct DsbOverflowForensics {
    /// Interface cycle the stall occurred at.
    pub stall_cycle: u64,
    /// The stall's kind — always [`StallKind::DelayStorage`] for this
    /// scenario (asserted by the deterministic test).
    pub stall_kind: StallKind,
    /// The retained forensic events, oldest first (empty when the
    /// `forensics` feature is compiled out).
    pub events: Vec<ForensicEvent>,
    /// The rendered causal window ("bank 0 exceeded DSB occupancy K at
    /// cycle N; last … events leading up to it"), when available.
    pub report: Option<String>,
    /// The controller's [`vpnm_core::MetricsSnapshot`] as JSON.
    pub snapshot_json: String,
}

/// Deterministic delay inflated far beyond `small_test`'s safe minimum so
/// rows outlive many accept intervals.
const OVERFLOW_DELAY: u64 = 400;

/// Accept interval in interface cycles: slower than bank 0's service rate
/// (one retire per `B = 4` grants), so the queue drains between accepts.
const ACCEPT_INTERVAL: u64 = 6;

/// Runs the forced-DSB-overflow scenario to its first stall and collects
/// the forensic evidence. Fully deterministic: same events, same cycle,
/// same report every run.
///
/// # Panics
///
/// Panics if the scenario fails to stall within its cycle budget — that
/// would mean the controller stopped holding rows for `D` cycles.
pub fn forced_dsb_overflow() -> DsbOverflowForensics {
    let cfg = VpnmConfig::small_test()
        .with_hash(HashKind::LowBits)
        .with_delay(OVERFLOW_DELAY)
        .with_forensics_capacity(64);
    let banks = u64::from(cfg.banks);
    let mut mem = VpnmController::new(cfg, 0).expect("valid config");
    let mut stall = None;
    for i in 0..4 * OVERFLOW_DELAY {
        // Stride-B addresses, all distinct: every read lands in bank 0
        // under the low-bits mapping and none can merge.
        let req = (i % ACCEPT_INTERVAL == 0)
            .then(|| Request::read(LineAddr(i / ACCEPT_INTERVAL * banks)));
        let out = mem.tick(req);
        if let Some(kind) = out.stall {
            stall = Some((mem.now().as_u64(), kind));
            break;
        }
    }
    let (stall_cycle, stall_kind) = stall.expect("underdriven stride-B flood must exhaust the DSB");
    DsbOverflowForensics {
        stall_cycle,
        stall_kind,
        events: mem.forensics().events(),
        report: mem.forensics().stall_report(),
        snapshot_json: mem.snapshot().to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_core::ForensicKind;

    #[test]
    fn forced_overflow_stalls_on_delay_storage_not_the_queue() {
        let f = forced_dsb_overflow();
        assert_eq!(f.stall_kind, StallKind::DelayStorage);
        // K = 8 rows at one accept per ACCEPT_INTERVAL cycles: the ninth
        // accept attempt is the first that cannot allocate.
        let k = VpnmConfig::small_test().storage_rows as u64;
        assert_eq!(f.stall_cycle, k * ACCEPT_INTERVAL + 1);
    }

    #[test]
    fn causal_window_is_reconstructed() {
        let f = forced_dsb_overflow();
        let k = VpnmConfig::small_test().storage_rows;
        // Every accept that filled the DSB is retained (ring capacity 64
        // comfortably covers accepts + retires for K = 8 rows).
        let accepts =
            f.events.iter().filter(|e| matches!(e.kind, ForensicKind::Accepted { .. })).count();
        assert_eq!(accepts, k, "all {k} row-filling accepts retained");
        // The stall event carries the full causal context.
        let stall = f.events.last().expect("events end at the stall");
        match stall.kind {
            ForensicKind::Stalled { kind, storage_live, queue_depth, .. } => {
                assert_eq!(kind, StallKind::DelayStorage);
                assert_eq!(storage_live as usize, k, "all rows live at the stall");
                assert!(
                    (queue_depth as usize) < VpnmConfig::small_test().queue_entries,
                    "queue must NOT be full — this is a pure DSB overflow"
                );
            }
            other => panic!("last event must be the stall, got {other:?}"),
        }
        // And every event in the window belongs to the flooded bank.
        assert!(f.events.iter().all(|e| e.bank == 0), "single-bank flood");
    }

    #[test]
    fn report_names_bank_cycle_and_structure() {
        let f = forced_dsb_overflow();
        let report = f.report.expect("forensics feature is on by default");
        let k = VpnmConfig::small_test().storage_rows;
        assert!(
            report
                .contains(&format!("bank 0 exceeded DSB occupancy {k} at cycle {}", f.stall_cycle)),
            "{report}"
        );
        assert!(report.contains("STALL"), "{report}");
        // The snapshot JSON corroborates: exactly one DSB stall, high
        // CAM load factor.
        assert!(f.snapshot_json.contains("\"delay_storage_stalls\": 1"), "{}", f.snapshot_json);
        assert!(f.snapshot_json.contains("\"cam_load_factor\": 1.000000"), "{}", f.snapshot_json);
    }
}
