//! Minimal aligned-table printer for experiment reports.

/// A simple column-aligned text table.
///
/// ```
/// use vpnm_bench::Table;
/// let mut t = Table::new(vec!["name", "value"]);
/// t.row(vec!["alpha".into(), "1".into()]);
/// t.row(vec!["b".into(), "22".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "need at least one column");
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One benchmark result destined for a machine-readable `BENCH_*.json`
/// artifact, so perf trajectories can be tracked across commits.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// `group/benchmark` path.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work items (cycles, elements, bytes) per second, when known.
    pub per_second: Option<f64>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders benchmark records plus scalar summary metrics as a JSON
/// document (hand-rolled — the workspace carries no serde dependency).
///
/// ```
/// use vpnm_bench::report::{bench_json, BenchRecord};
/// let doc = bench_json(
///     &[BenchRecord { id: "g/x".into(), ns_per_iter: 10.0, per_second: Some(1e8) }],
///     &[("speedup", 4.0)],
/// );
/// assert!(doc.contains("\"g/x\""));
/// assert!(doc.contains("\"speedup\""));
/// ```
pub fn bench_json(records: &[BenchRecord], summary: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let per_second = r.per_second.map_or("null".to_string(), json_f64);
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {}, \"per_second\": {}}}{}\n",
            json_escape(&r.id),
            json_f64(r.ns_per_iter),
            per_second,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    for (key, value) in summary {
        out.push_str(&format!(",\n  \"{}\": {}", json_escape(key), json_f64(*value)));
    }
    out.push_str("\n}\n");
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a document produced by [`bench_json`] back into records and
/// summary entries. Only that exact shape is supported (the format is
/// owned by this module); unrecognized lines are ignored.
pub fn parse_bench_json(doc: &str) -> (Vec<BenchRecord>, Vec<(String, f64)>) {
    let mut records = Vec::new();
    let mut summary = Vec::new();
    for line in doc.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("{\"id\": \"") {
            let Some((id, tail)) = rest.split_once("\", \"ns_per_iter\": ") else { continue };
            let Some((ns, ps)) = tail.trim_end_matches('}').split_once(", \"per_second\": ") else {
                continue;
            };
            records.push(BenchRecord {
                id: json_unescape(id),
                ns_per_iter: ns.parse().unwrap_or(f64::NAN),
                per_second: ps.parse::<f64>().ok(),
            });
        } else if let Some((key, value)) = t.strip_prefix('"').and_then(|r| r.split_once("\": ")) {
            if let Ok(v) = value.parse::<f64>() {
                summary.push((json_unescape(key), v));
            }
        }
    }
    (records, summary)
}

/// Merges `updates` (and `summary_updates`) into an existing
/// [`bench_json`] document, replacing entries with matching ids/keys
/// and appending new ones — so several bench binaries can share one
/// `BENCH_*.json` artifact without clobbering each other's sections.
pub fn merge_bench_json(
    doc: &str,
    updates: &[BenchRecord],
    summary_updates: &[(&str, f64)],
) -> String {
    let (mut records, mut summary) = parse_bench_json(doc);
    for u in updates {
        match records.iter_mut().find(|r| r.id == u.id) {
            Some(r) => *r = u.clone(),
            None => records.push(u.clone()),
        }
    }
    for &(key, value) in summary_updates {
        match summary.iter_mut().find(|(k, _)| k == key) {
            Some(entry) => entry.1 = value,
            None => summary.push((key.to_string(), value)),
        }
    }
    let summary_refs: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    bench_json(&records, &summary_refs)
}

/// Writes a controller's [`vpnm_core::MetricsSnapshot`] JSON to
/// `SNAPSHOT_<name>.json` in the working directory (next to the
/// `BENCH_*.json` artifacts) and announces the path on stdout, so every
/// experiment binary leaves a machine-readable record of the aggregate
/// metrics behind its headline numbers. See `docs/OBSERVABILITY.md` for
/// the schema.
pub fn write_snapshot(name: &str, json: &str) {
    let path = format!("SNAPSHOT_{name}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nmetrics snapshot -> {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let doc = bench_json(
            &[
                BenchRecord { id: "a/b".into(), ns_per_iter: 1.5, per_second: Some(2e6) },
                BenchRecord { id: "c\"d".into(), ns_per_iter: 3.0, per_second: None },
            ],
            &[("speedup_x", 3.25)],
        );
        assert!(doc.contains("\"a/b\""));
        assert!(doc.contains("c\\\"d"));
        assert!(doc.contains("\"per_second\": null"));
        assert!(doc.contains("\"speedup_x\": 3.250"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn parse_roundtrips_bench_json() {
        let records = vec![
            BenchRecord { id: "g/x".into(), ns_per_iter: 12.5, per_second: Some(2e6) },
            BenchRecord { id: "g/\"q\"".into(), ns_per_iter: 3.0, per_second: None },
        ];
        let doc = bench_json(&records, &[("speedup", 4.0)]);
        let (parsed, summary) = parse_bench_json(&doc);
        assert_eq!(parsed, records);
        assert_eq!(summary, vec![("speedup".to_string(), 4.0)]);
    }

    #[test]
    fn merge_replaces_matches_and_appends_the_rest() {
        let doc = bench_json(
            &[
                BenchRecord { id: "a".into(), ns_per_iter: 1.0, per_second: Some(1.0) },
                BenchRecord { id: "b".into(), ns_per_iter: 2.0, per_second: None },
            ],
            &[("old", 1.0)],
        );
        let merged = merge_bench_json(
            &doc,
            &[
                BenchRecord { id: "b".into(), ns_per_iter: 9.0, per_second: Some(5.0) },
                BenchRecord { id: "c".into(), ns_per_iter: 3.0, per_second: None },
            ],
            &[("old", 2.0), ("new", 7.0)],
        );
        let (records, summary) = parse_bench_json(&merged);
        assert_eq!(records.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(records[1].ns_per_iter, 9.0);
        assert_eq!(records[1].per_second, Some(5.0));
        assert_eq!(summary, vec![("old".to_string(), 2.0), ("new".to_string(), 7.0)]);
    }

    #[test]
    fn merge_into_empty_document_keeps_everything() {
        let merged = merge_bench_json(
            "",
            &[BenchRecord { id: "x".into(), ns_per_iter: 1.5, per_second: None }],
            &[("k", 0.5)],
        );
        let (records, summary) = parse_bench_json(&merged);
        assert_eq!(records.len(), 1);
        assert_eq!(summary, vec![("k".to_string(), 0.5)]);
    }

    #[test]
    fn alignment_grows_with_content() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        let s = t.render();
        let header = s.lines().next().unwrap();
        assert!(header.len() >= "xxxxxxx  b".len());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
