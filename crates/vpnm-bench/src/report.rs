//! Minimal aligned-table printer for experiment reports.

/// A simple column-aligned text table.
///
/// ```
/// use vpnm_bench::Table;
/// let mut t = Table::new(vec!["name", "value"]);
/// t.row(vec!["alpha".into(), "1".into()]);
/// t.row(vec!["b".into(), "22".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "need at least one column");
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_grows_with_content() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        let s = t.render();
        let header = s.lines().next().unwrap();
        assert!(header.len() >= "xxxxxxx  b".len());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
