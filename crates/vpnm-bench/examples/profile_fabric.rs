//! Dev aid: where does the fabric spend its time, per drive path?
//!
//! Runs the full-rate 8-channel `paper_optimal` uniform-read workload
//! (the `fabric/uniform_reads/*` bench scenario) through the lockstep
//! `tick` loop and the epoch-batched `run_epoch` path at 1 and 8
//! workers, reporting ns per fabric cycle and the fraction of
//! channel-cycles the busy-horizon machinery proved skippable. On a
//! single-core container the worker counts should land within noise of
//! each other — the execute phase only divides by worker count when
//! there are physical cores to divide across (see
//! docs/PERFORMANCE.md, "Measured scaling").
use std::time::Instant;
use vpnm_core::{ChannelSelect, FabricConfig, LineAddr, Request, VpnmConfig, VpnmFabric};
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

fn main() {
    const CYCLES: u64 = 10_000;
    const ITERS: u64 = 60;
    let fc = FabricConfig {
        channels: 8,
        select: ChannelSelect::UniversalHash,
        base: VpnmConfig::paper_optimal(),
        qos: None,
    };
    let space = 1u64 << fc.base.addr_bits;

    let mut fab = VpnmFabric::new(fc.clone(), 7).unwrap();
    let mut gen = UniformAddresses::new(space, 3);
    let mut addrs = vec![0u64; CYCLES as usize];
    let t = Instant::now();
    for _ in 0..ITERS {
        gen.fill_addrs(&mut addrs);
        let mut served = 0u64;
        for &a in &addrs {
            let out = fab.tick(Some(Request::read(LineAddr(a))));
            served += out.response.map_or(0, |r| r.completed_at.as_u64());
        }
        std::hint::black_box(served);
    }
    let ns = t.elapsed().as_nanos() as f64 / (CYCLES * ITERS) as f64;
    println!("lockstep:  {ns:>8.1} ns/cycle");

    for workers in [1usize, 8] {
        let mut fab = VpnmFabric::new(fc.clone(), 7).unwrap();
        fab.set_workers(workers);
        let mut gen = UniformAddresses::new(space, 3);
        let mut batch: Vec<Option<Request>> = Vec::with_capacity(CYCLES as usize);
        let t = Instant::now();
        for _ in 0..ITERS {
            gen.fill_addrs(&mut addrs);
            batch.clear();
            batch.extend(addrs.iter().map(|&a| Some(Request::read(LineAddr(a)))));
            std::hint::black_box(fab.run_epoch(&batch));
        }
        let ns = t.elapsed().as_nanos() as f64 / (CYCLES * ITERS) as f64;
        let skipped = fab.merged_snapshot().map_or(0, |s| s.cycles_skipped);
        let pct = 100.0 * skipped as f64 / (8 * CYCLES * ITERS) as f64;
        println!("epoch w={workers}: {ns:>8.1} ns/cycle ({pct:.1}% of channel-cycles skipped)");
    }
}
