//! Ad-hoc stage timing for the batched front door (dev aid, not a bench).
use std::time::Instant;
use vpnm_core::delay_storage::DelayStorageBuffer;
use vpnm_core::request::LineAddr;
use vpnm_core::{Request, VpnmConfig, VpnmController};
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::{Cycle, Histogram};
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

const CYCLES: u64 = 10_000;
const REPS: u32 = 200;

fn main() {
    let config = VpnmConfig::paper_optimal();
    let space = 1u64 << config.addr_bits;

    let time = |label: &str, mut f: Box<dyn FnMut()>| {
        for _ in 0..20 {
            f();
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..REPS / 5 {
                f();
            }
            let per = t.elapsed().as_nanos() as f64 / f64::from(REPS / 5);
            best = best.min(per);
        }
        println!("{label:<32} {best:>12.0} ns/iter  ({:.1} ns/cycle)", best / CYCLES as f64);
    };

    let c1 = config.clone();
    time(
        "tick loop",
        Box::new(move || {
            let mut mem = VpnmController::new(c1.clone(), 7).expect("valid");
            let mut gen = UniformAddresses::new(space, 3);
            for _ in 0..CYCLES {
                std::hint::black_box(mem.tick(Some(Request::read(LineAddr(gen.next_addr())))));
            }
        }),
    );

    let c2 = config.clone();
    let mut gen = UniformAddresses::new(space, 3);
    let mut addrs = vec![0u64; CYCLES as usize];
    gen.fill_addrs(&mut addrs);
    let trace: Vec<Option<Request>> =
        addrs.iter().map(|&a| Some(Request::read(LineAddr(a)))).collect();
    time(
        "run_batch only (pre-built)",
        Box::new(move || {
            let mut mem = VpnmController::new(c2.clone(), 7).expect("valid");
            std::hint::black_box(mem.run_batch(&trace, CYCLES));
        }),
    );

    // --- components ---
    time(
        "rng fill (per 10k)",
        Box::new(move || {
            let mut gen = UniformAddresses::new(space, 3);
            let mut addrs = vec![0u64; CYCLES as usize];
            gen.fill_addrs(&mut addrs);
            std::hint::black_box(&addrs);
        }),
    );

    time(
        "dsb alloc+playback (per 10k)",
        Box::new(move || {
            let mut dsb = DelayStorageBuffer::new(2048);
            let mut gen = UniformAddresses::new(space, 3);
            for _ in 0..CYCLES {
                let a = LineAddr(gen.next_addr());
                if dsb.lookup(a).is_none() {
                    if let Some(r) = dsb.allocate(a) {
                        dsb.fill(r, bytes::Bytes::new());
                        std::hint::black_box(dsb.playback(r));
                    }
                }
            }
        }),
    );

    time(
        "dram issue_read (per 10k)",
        Box::new(move || {
            let mut d = DramDevice::new(DramConfig::paper_rdram());
            let banks = d.config().num_banks;
            let cells = d.config().cells_per_bank();
            let mut gen = UniformAddresses::new(space, 3);
            let mut now = 0u64;
            for _ in 0..CYCLES {
                let a = gen.next_addr();
                let bank = (a % u64::from(banks)) as u32;
                let off = a % cells;
                let _ = std::hint::black_box(d.issue_read(bank, off, Cycle::new(now)));
                now += 100; // always past busy window
            }
        }),
    );

    time(
        "2x histogram record (per 10k)",
        Box::new(move || {
            let mut h1 = Histogram::default();
            let mut h2 = Histogram::default();
            for i in 0..CYCLES {
                h1.record(i & 15);
                h2.record(1000 + (i & 255));
            }
            std::hint::black_box((&h1, &h2));
        }),
    );

    time(
        "clock 1.3 ticks/cycle (per 10k)",
        Box::new(move || {
            let mut clk = vpnm_sim::DualClock::new(1.3);
            for _ in 0..CYCLES {
                loop {
                    let mt = clk.tick_memory();
                    if mt.interface_tick {
                        break;
                    }
                }
            }
            std::hint::black_box(clk.interface_now());
        }),
    );
}
