//! Uniform full-load drive for quick timing checks (dev aid): reports the
//! best and median of many short windows, which rides out scheduler noise
//! on shared machines far better than one long average.

use vpnm_core::{VpnmConfig, VpnmController};
use vpnm_workloads::generators::AddressGenerator;
use vpnm_workloads::UniformAddresses;

fn main() {
    let mut mem = VpnmController::new(VpnmConfig::paper_optimal(), 7).expect("valid");
    let space = 1u64 << mem.config().addr_bits;
    let mut gen = UniformAddresses::new(space, 3);
    let mut addrs = vec![0u64; 10_000];
    let mut acc = 0u64;
    let mut windows: Vec<f64> = Vec::new();
    for _ in 0..40 {
        let start = std::time::Instant::now();
        for _ in 0..10 {
            gen.fill_addrs(&mut addrs);
            let c = mem.run_reads_with(&addrs, 10_000, |r| acc ^= r.completed_at.as_u64());
            acc ^= c.responses;
        }
        windows.push(start.elapsed().as_nanos() as f64 / 100_000.0);
    }
    windows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "best {:.1}  p25 {:.1}  median {:.1} ns/cycle (acc {acc})",
        windows[0],
        windows[windows.len() / 4],
        windows[windows.len() / 2]
    );
}
