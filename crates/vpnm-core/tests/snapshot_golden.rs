//! Golden-file test: a short deterministic trace must serialize to a
//! byte-stable `MetricsSnapshot` JSON.
//!
//! This pins the snapshot schema against accidental drift — adding,
//! renaming, re-ordering, or re-formatting a field changes the bytes and
//! fails here. Intentional schema changes must bump
//! `SNAPSHOT_SCHEMA_VERSION` and regenerate the golden file:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p vpnm-core --test snapshot_golden
//! ```

use vpnm_core::{LineAddr, Request, VpnmConfig, VpnmController};

const GOLDEN_PATH: &str = "tests/golden/metrics_snapshot.json";

/// A fixed, fully scripted workload: mixed reads/writes/idle over a hot
/// address set, dense enough to exercise merges and every histogram.
fn scripted_request(i: u64) -> Option<Request> {
    match i % 5 {
        0 => Some(Request::read(LineAddr(i * 13 % 64))),
        1 => Some(Request::write(LineAddr(i % 32), vec![i as u8, (i >> 8) as u8])),
        2 | 3 => Some(Request::read(LineAddr(i % 16))),
        _ => None,
    }
}

#[test]
fn snapshot_json_matches_golden_file() {
    let mut mem = VpnmController::new(VpnmConfig::small_test(), 0xC0FFEE).unwrap();
    for i in 0..300u64 {
        mem.tick(scripted_request(i));
    }
    mem.drain();
    let json = mem.snapshot().to_json();

    let golden_file = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_file, &json).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_file)
        .expect("golden file present; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        json, golden,
        "MetricsSnapshot JSON drifted from {GOLDEN_PATH}. If the schema change is \
         intentional, bump SNAPSHOT_SCHEMA_VERSION and rerun with UPDATE_GOLDEN=1."
    );
}
