//! Multi-channel composition: several independent VPNM controllers
//! behind one flat deterministic-latency interface.
//!
//! A line card that outgrows one controller's bandwidth adds *channels*,
//! not ports: [`VpnmFabric`] stripes a single request stream over `C`
//! independent [`PipelinedMemory`] engines, each owning a private
//! `1/C`-slice of the address space. The channel for an address is chosen
//! by a bijective [`ChannelSelector`] stage (low bits, high bits, or a
//! keyed invertible permutation — the paper's universal-hash argument,
//! Section 3.2, lifted from banks to channels), and the *local* address
//! the channel sees is the remainder of the split, so every fabric line
//! maps to exactly one physical cell.
//!
//! The fabric preserves the VPNM contract end to end: all channels share
//! one pinned delay `D`, tick in lockstep, and a read accepted at fabric
//! cycle `t` is answered at exactly `t + D` — whichever channel served
//! it. Because the interface accepts at most one request per cycle and
//! every channel answers after the same `D`, at most one response is due
//! per fabric cycle; the fabric re-translates its local address back to
//! the fabric address before delivery.
//!
//! With `channels == 1` the selector is the identity and the fabric is a
//! transparent wrapper: it reproduces the bare controller cycle-for-cycle
//! and its merged snapshot serializes to the same bytes.
//!
//! Observability composes via [`MetricsSnapshot::merge`]: per-channel
//! snapshots fold into one fabric-level snapshot (counters add,
//! histograms merge, per-bank high-water marks concatenate in channel
//! order) plus the fabric's own malformed-request accounting — requests
//! are range-checked against the *fabric* address space before routing,
//! since a bit-select stage would otherwise silently alias out-of-range
//! addresses into a valid channel.

use crate::config::VpnmConfig;
use crate::controller::RunReport;
use crate::memory::PipelinedMemory;
use crate::metrics::ControllerMetrics;
use crate::pool::WorkerPool;
use crate::regulator::{QosConfig, Regulator, RegulatorMode, TenantLedger};
use crate::request::{LineAddr, Request, Response, StallKind, TickOutput};
use crate::snapshot::{MetricsSnapshot, TenantSection};
use vpnm_sim::Cycle;

pub use vpnm_hash::{ChannelSelect, ChannelSelector};

/// Geometry of a multi-channel fabric: how many channels, how addresses
/// pick one, and the per-channel controller configuration template.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of independent channels (a power of two in `1..=256`).
    pub channels: u32,
    /// How a fabric address selects its channel.
    pub select: ChannelSelect,
    /// Template for every channel. `base.addr_bits` is the **fabric**
    /// address width; each channel is built from this config with
    /// `log2(channels)` fewer address bits and the common delay pinned
    /// (see [`FabricConfig::channel_config`]).
    pub base: VpnmConfig,
    /// Multi-tenant QoS at the fabric ingress: `None` (the default
    /// single-tenant case) adds zero cost and keeps every output
    /// byte-identical to a QoS-less fabric; `Some` tracks per-tenant
    /// issue/deferral counts and, when the mode is not
    /// [`RegulatorMode::Off`], regulates each tenant with deterministic
    /// token buckets ([`Regulator`]).
    pub qos: Option<QosConfig>,
}

impl FabricConfig {
    /// A single-channel fabric — a transparent wrapper around `base`.
    pub fn single(base: VpnmConfig) -> Self {
        FabricConfig { channels: 1, select: ChannelSelect::LowBits, base, qos: None }
    }

    /// `log2(channels)`.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }

    /// The common deterministic delay `D` every channel is pinned to:
    /// the base config's effective delay (computed at the full fabric
    /// address width, which upper-bounds every channel's own safe
    /// minimum since the hash stage only narrows).
    pub fn fabric_delay(&self) -> u64 {
        self.base.effective_delay()
    }

    /// The per-channel controller configuration: `base` with the channel
    /// bits carved off `addr_bits` and `delay_override` pinned to
    /// [`FabricConfig::fabric_delay`] so all channels agree on `D` even
    /// though their narrower hash stages would recommend less. A
    /// single-channel fabric uses `base` verbatim.
    pub fn channel_config(&self) -> VpnmConfig {
        let cbits = self.channel_bits();
        if cbits == 0 {
            return self.base.clone();
        }
        let mut cfg = self.base.clone();
        cfg.addr_bits -= cbits;
        cfg.delay_override = Some(self.fabric_delay());
        cfg
    }

    /// Validates the fabric geometry, including that each channel's
    /// reduced configuration is itself valid.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || !self.channels.is_power_of_two() {
            return Err(format!("channels must be a power of two, got {}", self.channels));
        }
        if self.channels > 256 {
            return Err(format!("channels must be at most 256, got {}", self.channels));
        }
        if self.channel_bits() >= self.base.addr_bits {
            return Err(format!(
                "{} channels leave no address bits of the {}-bit fabric space for the channels \
                 themselves",
                self.channels, self.base.addr_bits
            ));
        }
        if let Some(q) = &self.qos {
            q.validate()?;
        }
        self.channel_config().validate().map_err(|e| format!("per-channel config invalid: {e}"))
    }
}

/// A channel's share of an epoch, encoded sparsely: `(cycle offset
/// within the epoch, the routed request)` pairs in offset order. Only
/// the cycles that actually carry a request for this channel appear —
/// the engine jumps the gaps via [`PipelinedMemory::run_epoch_sparse`].
type SparseLane = Vec<(u64, Request)>;

/// One worker's share of an epoch: the epoch length plus `(channel
/// index, the channel engine itself, that channel's request lane)`
/// triples. Engines travel *by value* to the worker and come home in the
/// matching [`EpochDone`], so no locking or sharing is involved —
/// ownership is the synchronization.
type EpochJob<M> = (u64, Vec<(usize, M, SparseLane)>);

/// The result of an [`EpochJob`]: each channel comes back with the
/// [`RunReport`] of its epoch.
type EpochDone<M> = Vec<(usize, M, RunReport)>;

/// `C` lockstep [`PipelinedMemory`] channels behind one flat interface.
///
/// Generic over the engine so the same fabric composes the fast
/// [`crate::VpnmController`] (the default), the
/// [`crate::ReferenceController`], or any other implementation — the
/// differential suite runs both and demands identical observable
/// behavior. The fabric itself implements [`PipelinedMemory`], so every
/// generic harness and app takes a fabric wherever it takes a controller.
///
/// # Execution modes
///
/// [`VpnmFabric::tick`] is the sequential lockstep path: one interface
/// cycle at a time, every channel stepped in channel order.
/// [`VpnmFabric::run_epoch`] batches a span of cycles into an **epoch**:
/// the router scatters the span's requests into per-channel lanes,
/// channels advance through the whole epoch independently (sequentially,
/// or on a persistent [`WorkerPool`] after [`VpnmFabric::set_workers`]),
/// and a barrier at the epoch boundary re-sorts the responses into the
/// exact cycle order the sequential path produces. See `DESIGN.md`,
/// "Fabric layer", for the epoch/barrier diagram.
#[derive(Debug)]
pub struct VpnmFabric<M: PipelinedMemory = crate::VpnmController> {
    config: FabricConfig,
    selector: ChannelSelector,
    channels: Vec<M>,
    delay: u64,
    now: u64,
    /// Fabric-level accounting: malformed requests are rejected *before*
    /// routing (a bit select would alias them into a valid channel), so
    /// their counts live here and fold into the merged snapshot.
    fabric_metrics: ControllerMetrics,
    /// Persistent worker pool for [`VpnmFabric::run_epoch`]; `None` (the
    /// default) runs epochs on the caller's thread.
    pool: Option<WorkerPool<EpochJob<M>, EpochDone<M>>>,
    /// Token buckets throttling the ingress when QoS is configured with a
    /// mode other than `Off`. Admission runs in the serial routing pass
    /// (tick order), so regulated runs stay byte-identical across
    /// `--workers` counts.
    regulator: Option<Regulator>,
    /// Per-tenant issue/deferral counts; present exactly when
    /// [`FabricConfig::qos`] is, independent of the mode.
    ledger: Option<TenantLedger>,
}

/// Per-channel seed derivation: channel 0 keeps the fabric seed verbatim
/// (so a one-channel fabric is bit-exact with a bare controller built
/// from the same seed) and later channels decorrelate via a golden-ratio
/// stride.
fn channel_seed(seed: u64, channel: u32) -> u64 {
    seed ^ u64::from(channel).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<M: PipelinedMemory> VpnmFabric<M> {
    /// Builds a fabric whose channels come from `build(channel_index,
    /// channel_config)` — the generic constructor behind
    /// [`VpnmFabric::new`] and [`VpnmFabric::new_reference`].
    ///
    /// # Errors
    ///
    /// Returns the validation failure for a bad [`FabricConfig`], or the
    /// first channel construction failure.
    pub fn with_engines(
        config: FabricConfig,
        seed: u64,
        mut build: impl FnMut(u32, VpnmConfig, u64) -> Result<M, String>,
    ) -> Result<Self, String> {
        config.validate()?;
        let selector = ChannelSelector::new(
            config.select,
            config.base.addr_bits,
            config.channel_bits(),
            seed,
        )?;
        let channel_config = config.channel_config();
        let channels = (0..config.channels)
            .map(|c| build(c, channel_config.clone(), channel_seed(seed, c)))
            .collect::<Result<Vec<M>, String>>()?;
        let delay = config.fabric_delay();
        let (regulator, ledger) = match &config.qos {
            Some(q) => (
                (q.mode != RegulatorMode::Off)
                    .then(|| Regulator::new(q, config.channels * config.base.banks)),
                Some(TenantLedger::new(q.tenants)),
            ),
            None => (None, None),
        };
        Ok(VpnmFabric {
            config,
            selector,
            channels,
            delay,
            now: 0,
            fabric_metrics: ControllerMetrics::new(),
            pool: None,
            regulator,
            ledger,
        })
    }

    /// The fabric geometry.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The channel-select stage.
    pub fn selector(&self) -> &ChannelSelector {
        &self.selector
    }

    /// Number of channels.
    pub fn num_channels(&self) -> u32 {
        self.config.channels
    }

    /// The engine serving `channel`.
    pub fn channel(&self, channel: u32) -> &M {
        &self.channels[channel as usize]
    }

    /// The common deterministic latency `D` in interface cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// Current fabric interface cycle (identical to every channel's —
    /// they tick in lockstep).
    pub fn now(&self) -> Cycle {
        Cycle::new(self.now)
    }

    /// Reads in flight across all channels.
    pub fn outstanding(&self) -> usize {
        self.channels.iter().map(|c| c.outstanding()).sum()
    }

    /// Malformed requests the fabric rejected before routing.
    pub fn fabric_rejections(&self) -> u64 {
        self.fabric_metrics.malformed_rejections
    }

    /// The per-tenant ingress ledger — `None` unless the fabric was built
    /// with a [`FabricConfig::qos`] section.
    pub fn tenant_ledger(&self) -> Option<&TenantLedger> {
        self.ledger.as_ref()
    }

    /// Regulator admission plus ledger accounting for one request routed
    /// to `(ch, local)` and presented at fabric cycle `at`. Always true
    /// (and free) when no QoS is configured. Deferral spends no tokens —
    /// the tenant may retry the very next cycle.
    fn admit(&mut self, req: &Request, ch: u32, local: u64, at: u64) -> bool {
        let Some(ledger) = &mut self.ledger else { return true };
        let tenant = req.tenant();
        let slot = self.config.qos.as_ref().expect("ledger implies qos").clamp(tenant);
        let ok = match &mut self.regulator {
            Some(reg) => {
                // Fabric-global bank index: channels each own `base.banks`
                // banks, and the channel engine's keyed hash names the
                // local one (engines without banks fall back to 0, which
                // degrades per-bank regulation to global for them).
                let bank = ch * self.config.base.banks
                    + self.channels[ch as usize].bank_of(LineAddr(local)).unwrap_or(0);
                reg.admit(tenant, bank, at)
            }
            None => true,
        };
        if ok {
            ledger.issued[slot] += 1;
        } else {
            ledger.deferred[slot] += 1;
        }
        ok
    }

    /// Range/size check against the *fabric* address space, mirroring the
    /// controllers' own `validate`: debug builds assert (a malformed
    /// request is a harness bug), release builds reject and count.
    fn validate(&self, req: &Request) -> Option<StallKind> {
        let addr = req.addr();
        let addr_bits = self.config.base.addr_bits;
        debug_assert!(
            addr.0 < (1u64 << addr_bits),
            "address {addr} outside the configured {addr_bits}-bit fabric space",
        );
        if addr.0 >= (1u64 << addr_bits) {
            return Some(StallKind::AddressRange);
        }
        if let Request::Write { data, .. } = req {
            debug_assert!(
                data.len() <= self.config.base.cell_bytes,
                "write of {} bytes exceeds cell size {}",
                data.len(),
                self.config.base.cell_bytes
            );
            if data.len() > self.config.base.cell_bytes {
                return Some(StallKind::OversizedWrite);
            }
        }
        None
    }

    /// Advances all channels one lockstep interface cycle, routing
    /// `request` to its channel under the local address, and translating
    /// the (at most one) due response back to the fabric address space.
    pub fn tick(&mut self, request: Option<Request>) -> TickOutput {
        let mut target: Option<(usize, Request)> = None;
        let mut stall = None;
        if let Some(req) = request {
            if let Some(kind) = self.validate(&req) {
                stall = Some(kind);
            } else {
                let (ch, local) = self.selector.route(req.addr().0);
                if self.admit(&req, ch, local, self.now + 1) {
                    let local_req = match req {
                        Request::Read { tenant, .. } => {
                            Request::Read { addr: LineAddr(local), tenant }
                        }
                        Request::Write { data, tenant, .. } => {
                            Request::Write { addr: LineAddr(local), data, tenant }
                        }
                    };
                    target = Some((ch as usize, local_req));
                } else {
                    // Deferred, not dropped: the channels still advance
                    // this cycle (lockstep), the request just never
                    // reaches one. Accounted in the tenant ledger only.
                    stall = Some(StallKind::Throttled);
                }
            }
        }

        let mut response: Option<Response> = None;
        for (ch, engine) in self.channels.iter_mut().enumerate() {
            let req = match &target {
                Some((t, _)) if *t == ch => target.take().map(|(_, r)| r),
                _ => None,
            };
            let out = engine.tick(req);
            stall = stall.or(out.stall);
            if let Some(mut resp) = out.response {
                debug_assert!(
                    response.is_none(),
                    "two channels answered in one fabric cycle — delays disagree"
                );
                resp.addr = LineAddr(self.selector.unroute(ch as u32, resp.addr.0));
                response = Some(resp);
            }
        }
        self.now += 1;
        if let Some(kind) = stall {
            if kind.is_rejection() {
                // Channel-level stalls were already recorded by the
                // channel's own metrics; only fabric-level rejections
                // (malformed requests never routed) are accounted here.
                self.fabric_metrics.record_stall(kind, Cycle::new(self.now));
            }
        }
        TickOutput { response, stall }
    }

    /// Workers driving [`VpnmFabric::run_epoch`]: `1` means epochs run on
    /// the caller's thread (no pool).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::workers)
    }

    /// Switches [`VpnmFabric::run_epoch`] between on-thread execution
    /// (`workers <= 1`) and a persistent [`WorkerPool`] of `workers`
    /// threads (clamped to the channel count — extra workers would only
    /// idle). Channel `c` is always served by worker `c % workers`, so
    /// the partition — and therefore every observable output — is
    /// identical from epoch to epoch and across worker counts.
    ///
    /// Calling this between epochs is safe at any time: the pool holds no
    /// simulation state, only threads.
    pub fn set_workers(&mut self, workers: usize)
    where
        M: Send + 'static,
    {
        let workers = workers.min(self.channels.len());
        if workers <= 1 {
            self.pool = None;
            return;
        }
        if self.pool.as_ref().is_some_and(|p| p.workers() == workers) {
            return;
        }
        self.pool = Some(WorkerPool::new(workers, |_, (len, job): EpochJob<M>| {
            job.into_iter()
                .map(|(ch, mut engine, lane)| {
                    let report = engine.run_epoch_sparse(len, &lane);
                    (ch, engine, report)
                })
                .collect()
        }));
    }

    /// Advances the whole fabric `requests.len()` interface cycles as one
    /// **epoch**: `requests[i]` is the request presented at fabric cycle
    /// `now + i` (`None` = idle). Equivalent to that many
    /// [`VpnmFabric::tick`] calls — byte-identical responses (in exact
    /// cycle order), stall counts, and merged snapshots, modulo the
    /// `cycles_skipped` drive-mode counter — but executed channel-major:
    /// requests are routed into sparse per-channel lanes up front, each
    /// channel advances through the full epoch independently via
    /// [`PipelinedMemory::run_epoch_sparse`] (so per-channel batched
    /// hashing applies and a channel jumps straight across the cycles
    /// that belong to its siblings — the work per epoch scales with the
    /// requests and responses, not with `channels x cycles` — and
    /// channels can run on [`VpnmFabric::set_workers`] pool threads),
    /// and the epoch barrier merges responses back into cycle order. At most one
    /// response is due per fabric cycle (shared pinned `D`), so the merge
    /// key `completed_at` is unique and the order exact.
    pub fn run_epoch(&mut self, requests: &[Option<Request>]) -> RunReport {
        let mut report = RunReport::default();
        if requests.is_empty() {
            return report;
        }
        // Single-channel fast path: the selector is the identity (zero
        // channel bits), so routing, local-address translation, and the
        // barrier merge are all pure overhead — hand the engine the span
        // directly. Only the well-formed case bypasses: a malformed
        // request must be rejected *at the fabric* with fabric-level
        // accounting, so any such span takes the generic path below —
        // and so does any QoS-tracked fabric, whose per-request
        // admission and ledger accounting live in that path.
        if self.channels.len() == 1
            && self.ledger.is_none()
            && requests.iter().flatten().all(|req| self.validate(req).is_none())
        {
            let report = self.channels[0].run_epoch(requests);
            self.now += requests.len() as u64;
            return report;
        }
        // Route: scatter the span into sparse per-channel request lanes,
        // holding malformed requests at the fabric edge exactly like
        // `tick` does (same rejection kind, same recording cycle). Lanes
        // are sparse `(offset, request)` pairs — the routing pass writes
        // one entry per presented request, not one slot per channel per
        // cycle, and each channel later jumps the gaps its lane encodes.
        // Channel selection runs as one batched pass over the presented
        // addresses ([`ChannelSelector::route_batch`], SIMD-backed for
        // the keyed permutation), then the requests scatter to lanes.
        let len = requests.len() as u64;
        let mut offsets: Vec<u64> = Vec::with_capacity(requests.len());
        let mut addrs: Vec<u64> = Vec::with_capacity(requests.len());
        for (i, slot) in requests.iter().enumerate() {
            let Some(req) = slot else { continue };
            if let Some(kind) = self.validate(req) {
                report.rejected += 1;
                self.fabric_metrics.record_stall(kind, Cycle::new(self.now + i as u64 + 1));
                continue;
            }
            offsets.push(i as u64);
            addrs.push(req.addr().0);
        }
        let mut chans = vec![0u32; addrs.len()];
        let mut locals = vec![0u64; addrs.len()];
        self.selector.route_batch(&addrs, &mut chans, &mut locals);
        let mut lanes: Vec<SparseLane> = vec![Vec::new(); self.channels.len()];
        for (k, &i) in offsets.iter().enumerate() {
            let req = requests[i as usize].as_ref().expect("offsets index presented requests");
            // Admission runs serially in offset (= cycle) order at the
            // exact cycle `tick` would present the request, so the epoch
            // path defers the same requests the sequential path does.
            if !self.admit(req, chans[k], locals[k], self.now + i + 1) {
                report.stalled += 1;
                continue;
            }
            lanes[chans[k] as usize].push((
                i,
                match req {
                    Request::Read { tenant, .. } => {
                        Request::Read { addr: LineAddr(locals[k]), tenant: *tenant }
                    }
                    Request::Write { data, tenant, .. } => Request::Write {
                        addr: LineAddr(locals[k]),
                        data: data.clone(),
                        tenant: *tenant,
                    },
                },
            ));
        }
        self.execute_lanes(len, lanes, &mut report);
        report
    }

    /// Dense batch issue at the fabric: advances `requests.len()` cycles
    /// presenting `requests[i]` on cycle `i` — [`VpnmFabric::run_epoch`]
    /// for saturated spans, with no `Option` slots to scan. A
    /// single-channel fabric hands the span straight to its engine's
    /// [`PipelinedMemory::issue_batch`] dense path; a multi-channel one
    /// batch-routes and runs the usual sparse-lane epoch (each channel
    /// still sees only its `1/C` slice, so its lane is inherently
    /// sparse).
    pub fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        let mut report = RunReport::default();
        if requests.is_empty() {
            return report;
        }
        if self.channels.len() == 1
            && self.ledger.is_none()
            && requests.iter().all(|req| self.validate(req).is_none())
        {
            let report = self.channels[0].issue_batch(requests);
            self.now += requests.len() as u64;
            return report;
        }
        let len = requests.len() as u64;
        let mut offsets: Vec<u64> = Vec::with_capacity(requests.len());
        let mut addrs: Vec<u64> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            if let Some(kind) = self.validate(req) {
                report.rejected += 1;
                self.fabric_metrics.record_stall(kind, Cycle::new(self.now + i as u64 + 1));
                continue;
            }
            offsets.push(i as u64);
            addrs.push(req.addr().0);
        }
        let mut chans = vec![0u32; addrs.len()];
        let mut locals = vec![0u64; addrs.len()];
        self.selector.route_batch(&addrs, &mut chans, &mut locals);
        let mut lanes: Vec<SparseLane> = vec![Vec::new(); self.channels.len()];
        for (k, &i) in offsets.iter().enumerate() {
            let req = &requests[i as usize];
            if !self.admit(req, chans[k], locals[k], self.now + i + 1) {
                report.stalled += 1;
                continue;
            }
            lanes[chans[k] as usize].push((
                i,
                match req {
                    Request::Read { tenant, .. } => {
                        Request::Read { addr: LineAddr(locals[k]), tenant: *tenant }
                    }
                    Request::Write { data, tenant, .. } => Request::Write {
                        addr: LineAddr(locals[k]),
                        data: data.clone(),
                        tenant: *tenant,
                    },
                },
            ));
        }
        self.execute_lanes(len, lanes, &mut report);
        report
    }

    /// The execute-and-merge half of an epoch, shared by
    /// [`VpnmFabric::run_epoch`] and [`VpnmFabric::issue_batch`]: runs
    /// every channel through its sparse lane (on-thread or on the worker
    /// pool), folds the per-channel reports into `report`, and
    /// barrier-merges the response streams back into exact cycle order.
    fn execute_lanes(&mut self, len: u64, lanes: Vec<SparseLane>, report: &mut RunReport) {
        let c = self.channels.len();
        // Execute: every channel advances through the epoch independently.
        // Engines travel to the pool workers by value and come home at the
        // barrier; the `ch % workers` partition is fixed, so results are
        // independent of scheduling.
        let mut streams: Vec<Vec<Response>> = (0..c).map(|_| Vec::new()).collect();
        let mut fold = |ch: usize, r: RunReport| {
            report.accepted += r.accepted;
            report.stalled += r.stalled;
            report.rejected += r.rejected;
            streams[ch] = r.responses;
        };
        match &self.pool {
            None => {
                for (ch, (engine, lane)) in self.channels.iter_mut().zip(&lanes).enumerate() {
                    let r = engine.run_epoch_sparse(len, lane);
                    fold(ch, r);
                }
            }
            Some(pool) => {
                let w = pool.workers();
                let mut jobs: Vec<EpochJob<M>> = (0..w).map(|_| (len, Vec::new())).collect();
                let engines = std::mem::take(&mut self.channels);
                for ((ch, engine), lane) in engines.into_iter().enumerate().zip(lanes) {
                    jobs[ch % w].1.push((ch, engine, lane));
                }
                for (worker, job) in jobs.into_iter().enumerate() {
                    pool.submit(worker, job);
                }
                let mut slots: Vec<Option<M>> = (0..c).map(|_| None).collect();
                for worker in 0..w {
                    for (ch, engine, r) in pool.recv(worker) {
                        slots[ch] = Some(engine);
                        fold(ch, r);
                    }
                }
                self.channels =
                    slots.into_iter().map(|s| s.expect("worker returns every channel")).collect();
            }
        }

        // Barrier merge: the shared pinned delay guarantees at most one
        // response per fabric cycle, and every response a channel returns
        // came due *inside* this epoch — `completed_at` is in
        // `(now, now + len]`. That makes `completed_at - now - 1` a
        // perfect bucket index: scatter each response into its cycle's
        // slot (O(1), no comparisons — cheaper than any comparison merge
        // of the streams), then read the slots off in order. Local
        // addresses translate back to fabric addresses on the way in.
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut responses: Vec<Response> = Vec::with_capacity(total);
        if total > 0 {
            let mut slots: Vec<Option<Response>> = (0..len).map(|_| None).collect();
            for (ch, stream) in streams.into_iter().enumerate() {
                for mut resp in stream {
                    resp.addr = LineAddr(self.selector.unroute(ch as u32, resp.addr.0));
                    let slot = &mut slots[(resp.completed_at.as_u64() - self.now - 1) as usize];
                    debug_assert!(
                        slot.is_none(),
                        "two channels answered in one fabric cycle — delays disagree"
                    );
                    *slot = Some(resp);
                }
            }
            responses.extend(slots.into_iter().flatten());
        }
        report.responses = responses;
        self.now += len;
    }

    /// Merges the per-channel snapshots (plus the fabric's own rejection
    /// accounting) into one fabric-level [`MetricsSnapshot`] — `None` when
    /// the engine type keeps no metrics.
    pub fn merged_snapshot(&self) -> Option<MetricsSnapshot> {
        let parts: Option<Vec<MetricsSnapshot>> =
            self.channels.iter().map(|c| c.snapshot()).collect();
        let merged = MetricsSnapshot::merge(&parts?);
        debug_assert!(merged.is_ok(), "lockstep channels cannot disagree: {merged:?}");
        let mut merged = merged.ok()?;
        merged.metrics.merge_from(&self.fabric_metrics);
        if let (Some(q), Some(ledger)) = (&self.config.qos, &self.ledger) {
            let mut section = TenantSection::new(
                q.mode,
                (q.rate_num, q.rate_den),
                q.burst,
                usize::from(q.tenants),
            );
            for (t, stats) in section.per_tenant.iter_mut().enumerate() {
                stats.issued = ledger.issued[t];
                stats.deferred = ledger.deferred[t];
            }
            merged = merged.with_tenants(section);
        }
        Some(merged)
    }
}

impl VpnmFabric<crate::VpnmController> {
    /// Builds a fabric of fast [`crate::VpnmController`] channels, keying
    /// channel `i`'s universal hash from a per-channel seed derived from
    /// `seed` (channel 0 uses `seed` itself).
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an inconsistent config.
    pub fn new(config: FabricConfig, seed: u64) -> Result<Self, String> {
        VpnmFabric::with_engines(config, seed, |_, cfg, s| crate::VpnmController::new(cfg, s))
    }

    /// Aggregate statistics of all per-channel DRAM devices.
    pub fn merged_dram_stats(&self) -> vpnm_dram::DramStats {
        let mut stats = vpnm_dram::DramStats::default();
        for ch in &self.channels {
            stats.merge_from(ch.dram_stats());
        }
        stats
    }
}

impl VpnmFabric<crate::ReferenceController> {
    /// Builds a fabric of [`crate::ReferenceController`] channels — the
    /// seed-formulation twin of [`VpnmFabric::new`], for differential
    /// testing at the fabric level.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an inconsistent config.
    pub fn new_reference(config: FabricConfig, seed: u64) -> Result<Self, String> {
        VpnmFabric::with_engines(config, seed, |_, cfg, s| crate::ReferenceController::new(cfg, s))
    }

    /// Aggregate statistics of all per-channel DRAM devices.
    pub fn merged_dram_stats(&self) -> vpnm_dram::DramStats {
        let mut stats = vpnm_dram::DramStats::default();
        for ch in &self.channels {
            stats.merge_from(ch.dram_stats());
        }
        stats
    }
}

impl<M: PipelinedMemory> PipelinedMemory for VpnmFabric<M> {
    fn delay(&self) -> u64 {
        VpnmFabric::delay(self)
    }

    fn tick(&mut self, request: Option<Request>) -> TickOutput {
        VpnmFabric::tick(self, request)
    }

    fn outstanding(&self) -> usize {
        VpnmFabric::outstanding(self)
    }

    fn now(&self) -> Cycle {
        VpnmFabric::now(self)
    }

    fn run_epoch(&mut self, requests: &[Option<Request>]) -> RunReport {
        // The channel-major epoch path (not the trait's tick-loop
        // default): per-channel batching, idle-span skipping, and the
        // worker pool when one is configured.
        VpnmFabric::run_epoch(self, requests)
    }

    fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        // Batch-routed dense issue (single-channel bypass included).
        VpnmFabric::issue_batch(self, requests)
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        VpnmFabric::merged_snapshot(self)
    }

    fn bank_of(&self, addr: LineAddr) -> Option<u32> {
        // Fabric-global bank index: `base.banks` banks per channel, in
        // channel order — the same keying the per-bank regulator uses.
        let (ch, local) = self.selector.route(addr.0);
        self.channels[ch as usize].bank_of(LineAddr(local)).map(|b| ch * self.config.base.banks + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealMemory, VpnmController};

    fn fabric_config(channels: u32, select: ChannelSelect) -> FabricConfig {
        FabricConfig { channels, select, base: VpnmConfig::small_test(), qos: None }
    }

    #[test]
    fn validates_geometry() {
        assert!(fabric_config(1, ChannelSelect::LowBits).validate().is_ok());
        assert!(fabric_config(4, ChannelSelect::UniversalHash).validate().is_ok());
        assert!(fabric_config(0, ChannelSelect::LowBits).validate().is_err());
        assert!(fabric_config(3, ChannelSelect::LowBits).validate().is_err());
        assert!(fabric_config(512, ChannelSelect::LowBits).validate().is_err());
        // 256 channels on an 8-bit fabric space leave no local bits.
        let mut tight = fabric_config(256, ChannelSelect::LowBits);
        tight.base.addr_bits = 8;
        assert!(tight.validate().is_err());
        // 128 channels on 10 bits leave 3 — under the 4-bit config floor,
        // caught by validating the per-channel config.
        let mut shallow = fabric_config(128, ChannelSelect::LowBits);
        shallow.base.addr_bits = 10;
        let err = shallow.validate().unwrap_err();
        assert!(err.contains("per-channel config invalid"), "{err}");
        shallow.base.addr_bits = 16;
        assert!(shallow.validate().is_ok());
    }

    #[test]
    fn channel_config_carves_bits_and_pins_delay() {
        let fc = fabric_config(4, ChannelSelect::LowBits);
        let cc = fc.channel_config();
        assert_eq!(cc.addr_bits, fc.base.addr_bits - 2);
        assert_eq!(cc.delay_override, Some(fc.base.effective_delay()));
        assert!(cc.validate().is_ok());
        // Single channel: base verbatim.
        let fc1 = fabric_config(1, ChannelSelect::LowBits);
        assert_eq!(fc1.channel_config().delay_override, fc1.base.delay_override);
    }

    #[test]
    fn deterministic_latency_across_channels() {
        for select in
            [ChannelSelect::LowBits, ChannelSelect::HighBits, ChannelSelect::UniversalHash]
        {
            let mut fab = VpnmFabric::new(fabric_config(4, select), 0xC0FFEE).unwrap();
            let d = PipelinedMemory::delay(&fab);
            let mut accepted = 0u64;
            let mut responses = Vec::new();
            for a in 0..64u64 {
                let addr = LineAddr(a * 37 % (1 << 12));
                let out = fab.issue_read(addr);
                // A stall (possible when a bit select funnels a run of
                // requests into one channel) drops the request; whatever
                // IS accepted must come back after exactly D.
                accepted += u64::from(out.accepted());
                responses.extend(out.response);
            }
            responses.extend(PipelinedMemory::drain(&mut fab));
            assert_eq!(fab.outstanding(), 0, "{select}");
            assert_eq!(responses.len() as u64, accepted, "{select}");
            assert!(accepted > 32, "{select}: most of the stream should land");
            for r in &responses {
                assert_eq!(r.latency(), d, "{select}: latency must be exactly D");
            }
        }
    }

    #[test]
    fn matches_ideal_memory_under_mixed_traffic() {
        let mut fab = VpnmFabric::new(fabric_config(4, ChannelSelect::UniversalHash), 7).unwrap();
        let mut ideal =
            IdealMemory::new(PipelinedMemory::delay(&fab), fab.config().base.cell_bytes);
        let mut fab_responses = Vec::new();
        let mut ideal_responses = Vec::new();
        let mut x = 0x1234_5678u64;
        for i in 0..2000u64 {
            // splitmix-style scramble for a deterministic mixed stream
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = LineAddr(x >> 52);
            let req = if i % 3 == 0 {
                Request::write(addr, (x as u32).to_le_bytes().to_vec())
            } else {
                Request::read(addr)
            };
            fab_responses.extend(fab.tick(Some(req.clone())).response);
            ideal_responses.extend(ideal.tick(Some(req)).response);
        }
        fab_responses.extend(PipelinedMemory::drain(&mut fab));
        ideal_responses.extend(PipelinedMemory::drain(&mut ideal));
        assert_eq!(fab_responses.len(), ideal_responses.len());
        for (f, i) in fab_responses.iter().zip(&ideal_responses) {
            assert_eq!(
                (f.addr, &f.data, f.issued_at, f.completed_at),
                (i.addr, &i.data, i.issued_at, i.completed_at)
            );
        }
    }

    #[test]
    fn single_channel_fabric_matches_bare_controller_byte_for_byte() {
        let base = VpnmConfig::small_test();
        let seed = 0xC0FFEE;
        let mut bare = VpnmController::new(base.clone(), seed).unwrap();
        let mut fab = VpnmFabric::new(FabricConfig::single(base), seed).unwrap();
        for i in 0..500u64 {
            let req = match i % 4 {
                0 => Some(Request::write(LineAddr(i % 64), vec![i as u8; 4])),
                1 | 2 => Some(Request::read(LineAddr(i % 64))),
                _ => None,
            };
            let a = bare.tick(req.clone());
            let b = VpnmFabric::tick(&mut fab, req);
            assert_eq!(a, b, "tick {i}");
        }
        assert_eq!(
            bare.snapshot().to_json(),
            fab.merged_snapshot().unwrap().to_json(),
            "one-channel fabric snapshot must serialize identically"
        );
    }

    #[test]
    fn merged_snapshot_spans_channels() {
        let mut fab = VpnmFabric::new(fabric_config(4, ChannelSelect::LowBits), 9).unwrap();
        for a in 0..32u64 {
            VpnmFabric::tick(&mut fab, Some(Request::read(LineAddr(a))));
        }
        PipelinedMemory::drain(&mut fab);

        let snap = fab.merged_snapshot().unwrap();
        assert_eq!(snap.channels, 4);
        assert_eq!(snap.metrics.reads_accepted, 32);
        assert_eq!(snap.metrics.responses, 32);
        let banks = fab.config().base.banks as usize;
        assert_eq!(snap.metrics.bank_queue_hwm.len(), 4 * banks);
        assert!(snap.to_json().contains("\"channels\": 4"));
    }

    #[test]
    fn reference_fabric_agrees_with_fast_fabric() {
        let cfg = fabric_config(2, ChannelSelect::UniversalHash);
        let mut fast = VpnmFabric::new(cfg.clone(), 42).unwrap();
        let mut reference = VpnmFabric::new_reference(cfg, 42).unwrap();
        for i in 0..300u64 {
            let req = (i % 3 != 2).then(|| {
                if i % 5 == 0 {
                    Request::write(LineAddr(i % 128), vec![1, 2, 3])
                } else {
                    Request::read(LineAddr((i * 13) % 128))
                }
            });
            let a = VpnmFabric::tick(&mut fast, req.clone());
            let b = VpnmFabric::tick(&mut reference, req);
            assert_eq!(a, b, "tick {i}");
        }
        assert_eq!(
            fast.merged_snapshot().unwrap().to_json(),
            reference.merged_snapshot().unwrap().to_json()
        );
    }

    /// Deterministic mixed stream with idle gaps: the epoch-path tests
    /// drive twin fabrics with the exact same spans.
    fn epoch_stream(n: u64, seed: u64) -> Vec<Option<Request>> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let addr = LineAddr(x >> 52);
                match i % 7 {
                    0 => Some(Request::write(addr, (x as u32).to_le_bytes().to_vec())),
                    5 | 6 => None, // idle gaps exercise per-channel skipping
                    _ => Some(Request::read(addr)),
                }
            })
            .collect()
    }

    /// Snapshot serialization with the one sanctioned epoch/tick
    /// divergence (the `cycles_skipped` drive-mode counter) masked off.
    fn snapshot_sans_skips<M: PipelinedMemory>(fab: &VpnmFabric<M>) -> String {
        let mut snap = fab.merged_snapshot().unwrap();
        snap.cycles_skipped = 0;
        snap.to_json()
    }

    #[test]
    fn run_epoch_matches_tick_sequence() {
        for channels in [1, 4] {
            let cfg = fabric_config(channels, ChannelSelect::UniversalHash);
            let mut ticked = VpnmFabric::new(cfg.clone(), 0xEE).unwrap();
            let mut epoched = VpnmFabric::new(cfg, 0xEE).unwrap();
            let stream = epoch_stream(1200, 77);

            let mut tick_responses = Vec::new();
            let mut tick_accepted = 0u64;
            for req in &stream {
                let out = VpnmFabric::tick(&mut ticked, req.clone());
                tick_accepted += u64::from(req.is_some() && out.accepted());
                tick_responses.extend(out.response);
            }
            // Two epochs with a seam in the middle: responses issued in
            // epoch one may come due in epoch two.
            let (a, b) = stream.split_at(500);
            let ra = epoched.run_epoch(a);
            let rb = epoched.run_epoch(b);
            assert_eq!(u64::from(epoched.now()), stream.len() as u64, "{channels}ch");
            assert_eq!(ra.accepted + rb.accepted, tick_accepted, "{channels}ch");

            let epoch_responses: Vec<_> = ra.responses.into_iter().chain(rb.responses).collect();
            assert_eq!(epoch_responses, tick_responses, "{channels}ch");
            assert_eq!(
                PipelinedMemory::drain(&mut epoched),
                PipelinedMemory::drain(&mut ticked),
                "{channels}ch"
            );
            assert_eq!(
                snapshot_sans_skips(&epoched),
                snapshot_sans_skips(&ticked),
                "{channels}ch: snapshots must agree modulo cycles_skipped"
            );
        }
    }

    #[test]
    fn issue_batch_matches_run_epoch() {
        // Dense spans (every cycle presents a request) through the batch
        // door must be byte-identical to the Option-slotted epoch path —
        // including across the single-channel bypass and the epoch seam.
        for channels in [1u32, 4] {
            let cfg = fabric_config(channels, ChannelSelect::UniversalHash);
            let mut epoched = VpnmFabric::new(cfg.clone(), 0xAB).unwrap();
            let mut batched = VpnmFabric::new(cfg, 0xAB).unwrap();
            let dense: Vec<Request> = epoch_stream(1200, 31).into_iter().flatten().collect();
            let slotted: Vec<Option<Request>> = dense.iter().cloned().map(Some).collect();

            let (sa, sb) = slotted.split_at(500);
            let (da, db) = dense.split_at(500);
            let ra = epoched.run_epoch(sa);
            let rb = epoched.run_epoch(sb);
            let ba = batched.issue_batch(da);
            let bb = batched.issue_batch(db);
            assert_eq!(ba, ra, "{channels}ch");
            assert_eq!(bb, rb, "{channels}ch");
            assert_eq!(batched.now(), epoched.now(), "{channels}ch");
            assert_eq!(
                PipelinedMemory::drain(&mut batched),
                PipelinedMemory::drain(&mut epoched),
                "{channels}ch"
            );
            assert_eq!(
                snapshot_sans_skips(&batched),
                snapshot_sans_skips(&epoched),
                "{channels}ch"
            );
        }
    }

    #[test]
    fn run_epoch_parallel_is_byte_identical_to_on_thread() {
        let stream = epoch_stream(2000, 13);
        let run = |workers: usize| {
            let mut fab =
                VpnmFabric::new(fabric_config(8, ChannelSelect::UniversalHash), 5).unwrap();
            fab.set_workers(workers);
            let mut report = RunReport::default();
            for span in stream.chunks(333) {
                let r = fab.run_epoch(span);
                report.accepted += r.accepted;
                report.stalled += r.stalled;
                report.rejected += r.rejected;
                report.responses.extend(r.responses);
            }
            report.responses.extend(PipelinedMemory::drain(&mut fab));
            (report, snapshot_sans_skips(&fab))
        };
        let (base_report, base_snap) = run(1);
        assert!(!base_report.responses.is_empty());
        for workers in [2, 3, 8] {
            let (report, snap) = run(workers);
            assert_eq!(report, base_report, "workers = {workers}");
            assert_eq!(snap, base_snap, "workers = {workers}");
        }
    }

    #[test]
    fn set_workers_clamps_to_channel_count() {
        let mut fab = VpnmFabric::new(fabric_config(4, ChannelSelect::LowBits), 3).unwrap();
        assert_eq!(fab.workers(), 1);
        fab.set_workers(16);
        assert_eq!(fab.workers(), 4, "more workers than channels would only idle");
        fab.set_workers(2);
        assert_eq!(fab.workers(), 2);
        fab.set_workers(0);
        assert_eq!(fab.workers(), 1, "0/1 workers mean on-thread execution");
        // Reconfiguring mid-stream must not disturb in-flight state.
        let r = fab.run_epoch(&epoch_stream(64, 1));
        fab.set_workers(4);
        let r2 = fab.run_epoch(&epoch_stream(64, 2));
        assert!(r.accepted + r2.accepted > 0);
        assert_eq!(u64::from(fab.now()), 128);
    }

    fn qos_config(mode: RegulatorMode, rate_num: u32, rate_den: u32, burst: u32) -> QosConfig {
        QosConfig { tenants: 2, mode, rate_num, rate_den, burst }
    }

    #[test]
    fn validate_checks_qos_section() {
        let mut cfg = fabric_config(2, ChannelSelect::LowBits);
        cfg.qos = Some(QosConfig { tenants: 0, ..QosConfig::tracking(1) });
        assert!(cfg.validate().is_err());
        cfg.qos = Some(qos_config(RegulatorMode::PerBank, 1, 8, 4));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn tracking_mode_counts_tenants_without_deferring() {
        let mut cfg = fabric_config(2, ChannelSelect::UniversalHash);
        cfg.qos = Some(QosConfig::tracking(2));
        let mut fab = VpnmFabric::new(cfg, 11).unwrap();
        for a in 0..40u64 {
            let req = if a % 4 == 0 {
                Request::read_as(crate::TenantId(1), LineAddr(a))
            } else {
                Request::read(LineAddr(a))
            };
            let out = VpnmFabric::tick(&mut fab, Some(req));
            assert_ne!(out.stall, Some(StallKind::Throttled), "tracking never throttles");
        }
        PipelinedMemory::drain(&mut fab);
        let ledger = fab.tenant_ledger().unwrap();
        assert_eq!(ledger.issued, [30, 10]);
        assert_eq!(ledger.deferred, [0, 0]);
        let json = fab.merged_snapshot().unwrap().to_json();
        assert!(json.contains("\"tenants\": {"), "{json}");
        assert!(json.contains("\"mode\": \"off\""), "{json}");
        assert!(json.contains("\"issued\": 30"), "{json}");
    }

    #[test]
    fn global_regulator_defers_the_greedy_tenant_only() {
        // Tenant 1 fires every cycle against a 1/4 budget; tenant 0 sends
        // one request every 8 cycles, well under budget. Only tenant 1 is
        // ever deferred, and tenant 0's acceptance is untouched.
        let mut cfg = fabric_config(2, ChannelSelect::UniversalHash);
        cfg.qos = Some(qos_config(RegulatorMode::Global, 1, 4, 2));
        let mut fab = VpnmFabric::new(cfg, 23).unwrap();
        let mut victim_stalled = 0u64;
        for i in 0..800u64 {
            let req = if i % 8 == 0 {
                Request::read_as(crate::TenantId(0), LineAddr(i % 512))
            } else {
                Request::read_as(crate::TenantId(1), LineAddr((i * 13) % 512))
            };
            let out = VpnmFabric::tick(&mut fab, Some(req.clone()));
            if req.tenant() == crate::TenantId(0) && out.stall.is_some() {
                victim_stalled += 1;
            }
        }
        PipelinedMemory::drain(&mut fab);
        let ledger = fab.tenant_ledger().unwrap().clone();
        assert_eq!(victim_stalled, 0, "the in-budget tenant is never deferred");
        assert_eq!(ledger.deferred[0], 0);
        assert_eq!(ledger.issued[0], 100);
        assert!(ledger.deferred[1] > 400, "greedy tenant deferred: {:?}", ledger.deferred);
        // The greedy tenant lands at its budgeted 1/4 rate: the bucket
        // refills 800/4 = 200 tokens over the run and starts with
        // burst = 2, so 202 is the hard ceiling.
        let issued = ledger.issued[1];
        assert!((190..=202).contains(&issued), "issued {issued}");
    }

    #[test]
    fn regulated_epoch_path_matches_tick_sequence() {
        // Regulation must be drive-mode invariant: tick-by-tick, epoch,
        // and pooled-epoch execution defer the same requests and produce
        // byte-identical snapshots — including through the (now disabled)
        // single-channel bypass.
        for channels in [1u32, 4] {
            let mut cfg = fabric_config(channels, ChannelSelect::UniversalHash);
            cfg.qos = Some(qos_config(RegulatorMode::PerBank, 1, 2, 4));
            let stream: Vec<Option<Request>> = epoch_stream(900, 5)
                .into_iter()
                .enumerate()
                .map(|(i, slot)| {
                    slot.map(|req| match req {
                        Request::Read { addr, .. } => {
                            Request::read_as(crate::TenantId((i % 2) as u16), addr)
                        }
                        Request::Write { addr, data, .. } => {
                            Request::write_as(crate::TenantId((i % 2) as u16), addr, data)
                        }
                    })
                })
                .collect();

            let mut ticked = VpnmFabric::new(cfg.clone(), 0xEE).unwrap();
            let mut tick_responses = Vec::new();
            let mut tick_throttled = 0u64;
            for req in &stream {
                let out = VpnmFabric::tick(&mut ticked, req.clone());
                tick_throttled += u64::from(out.stall == Some(StallKind::Throttled));
                tick_responses.extend(out.response);
            }
            assert!(tick_throttled > 0, "{channels}ch: the stream must exercise deferral");

            let mut epoched = VpnmFabric::new(cfg.clone(), 0xEE).unwrap();
            let (a, b) = stream.split_at(333);
            let ra = epoched.run_epoch(a);
            let rb = epoched.run_epoch(b);
            let epoch_responses: Vec<_> = ra.responses.into_iter().chain(rb.responses).collect();
            assert_eq!(epoch_responses, tick_responses, "{channels}ch");
            assert_eq!(ticked.tenant_ledger(), epoched.tenant_ledger(), "{channels}ch");

            let mut pooled = VpnmFabric::new(cfg, 0xEE).unwrap();
            pooled.set_workers(4);
            let mut pooled_responses = Vec::new();
            for span in stream.chunks(250) {
                pooled_responses.extend(pooled.run_epoch(span).responses);
            }
            assert_eq!(pooled_responses, tick_responses, "{channels}ch");
            assert_eq!(ticked.tenant_ledger(), pooled.tenant_ledger(), "{channels}ch");

            PipelinedMemory::drain(&mut ticked);
            PipelinedMemory::drain(&mut epoched);
            PipelinedMemory::drain(&mut pooled);
            assert_eq!(snapshot_sans_skips(&epoched), snapshot_sans_skips(&ticked), "{channels}ch");
            assert_eq!(snapshot_sans_skips(&pooled), snapshot_sans_skips(&ticked), "{channels}ch");
        }
    }

    #[test]
    fn responses_echo_the_issuing_tenant() {
        let mut cfg = fabric_config(2, ChannelSelect::UniversalHash);
        cfg.qos = Some(QosConfig::tracking(3));
        let mut fab = VpnmFabric::new(cfg, 31).unwrap();
        let mut expected = std::collections::VecDeque::new();
        let mut got = Vec::new();
        for i in 0..200u64 {
            let tenant = crate::TenantId((i % 3) as u16);
            let out = VpnmFabric::tick(&mut fab, Some(Request::read_as(tenant, LineAddr(i))));
            if out.accepted() {
                expected.push_back(tenant);
            }
            got.extend(out.response);
        }
        got.extend(PipelinedMemory::drain(&mut fab));
        assert_eq!(got.len(), expected.len());
        for r in got {
            assert_eq!(r.tenant, expected.pop_front().unwrap());
        }
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn run_epoch_rejects_malformed_like_tick() {
        let mut fab = VpnmFabric::new(fabric_config(2, ChannelSelect::LowBits), 1).unwrap();
        let oob = 1u64 << fab.config().base.addr_bits;
        let spans = [None, Some(Request::read(LineAddr(oob))), Some(Request::read(LineAddr(3)))];
        let r = fab.run_epoch(&spans.to_vec());
        assert_eq!(r.rejected, 1);
        assert_eq!(r.accepted, 1);
        assert_eq!(fab.fabric_rejections(), 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn malformed_requests_are_rejected_at_the_fabric() {
        let mut fab = VpnmFabric::new(fabric_config(2, ChannelSelect::LowBits), 1).unwrap();
        let cell = fab.config().base.cell_bytes;
        let out = VpnmFabric::tick(&mut fab, Some(Request::write(LineAddr(0), vec![0; cell + 1])));
        assert_eq!(out.stall, Some(StallKind::OversizedWrite));
        // One past the top of the fabric address space: rejected before routing.
        let oob = 1u64 << fab.config().base.addr_bits;
        let out = VpnmFabric::tick(&mut fab, Some(Request::read(LineAddr(oob))));
        assert_eq!(out.stall, Some(StallKind::AddressRange));
        assert_eq!(fab.fabric_rejections(), 2);
        assert_eq!(fab.merged_snapshot().unwrap().metrics.malformed_rejections, 2);
    }
}
