//! Stall forensics: a compile-time-gated, ring-buffered event tracer.
//!
//! When the paper's probabilistic guarantees are working, stalls happen
//! once per ~10¹³ accesses — which means that when one *does* happen, the
//! single `StallKind` counter in [`crate::ControllerMetrics`] tells you
//! nothing about *why*. This module records the controller's recent
//! lifecycle events (accept, merge, grant, return, queue enter/exit) in a
//! fixed-capacity ring so that the event window leading up to a stall can
//! be reconstructed after the fact — "bank 3 exceeded DSB depth 8 at cycle
//! N; here are the 64 events before it".
//!
//! # Zero overhead by construction
//!
//! Two gates keep the tracer out of the hot path:
//!
//! * **Compile time**: the `forensics` cargo feature (on by default).
//!   Building `vpnm-core` with `--no-default-features` replaces
//!   [`ForensicRing`] with a no-op stub whose `record` inlines to nothing.
//! * **Run time**: [`crate::VpnmConfig::forensics_capacity`]. The default
//!   of `0` leaves the ring disabled; every `record` call is then a single
//!   predictable branch. The benchmark guard (`controller_throughput` vs
//!   the committed `BENCH_controller.json` baseline) enforces that this
//!   stays within noise.
//!
//! Only the fast engine ([`crate::VpnmController`]) records forensic
//! events; the aggregate counters that the differential suite compares
//! between engines live in [`crate::ControllerMetrics`] instead.

use crate::delay_storage::RowId;
use crate::request::{LineAddr, StallKind};
use std::fmt;
use vpnm_sim::Cycle;

/// One lifecycle event recorded in the forensic ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForensicEvent {
    /// Interface cycle the event was recorded at. Events recorded during
    /// the memory-clock loop (grants, queue exits) carry the interface
    /// cycle in progress and may therefore appear one cycle before the
    /// interface-side events of the same tick; ring order is always
    /// faithful recording order.
    pub at: Cycle,
    /// The bank the event happened at.
    pub bank: u32,
    /// What happened.
    pub kind: ForensicKind,
}

/// The event taxonomy of the observability layer (see
/// `docs/OBSERVABILITY.md` for the full semantics of each event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForensicKind {
    /// A read was accepted and allocated delay-storage row `row`; it also
    /// entered the bank access queue at depth `queue_depth` (post-insert).
    Accepted {
        /// Cell address of the read.
        addr: LineAddr,
        /// Delay-storage row allocated for the in-flight cell.
        row: RowId,
        /// BAQ depth immediately after the insert.
        queue_depth: u32,
    },
    /// A redundant read was merged into already-in-flight row `row`
    /// (paper Section 3.4) — no queue entry, no new storage row.
    Merged {
        /// Cell address of the read.
        addr: LineAddr,
        /// The shared in-flight row.
        row: RowId,
    },
    /// A write was buffered; it entered the bank access queue at depth
    /// `queue_depth` (post-insert).
    WriteAccepted {
        /// Cell address of the write.
        addr: LineAddr,
        /// BAQ depth immediately after the insert.
        queue_depth: u32,
    },
    /// A bus grant let the bank issue or retire an access; the BAQ
    /// shrank to `queue_depth`.
    QueueExit {
        /// BAQ depth immediately after the retire.
        queue_depth: u32,
    },
    /// A read answered at its deterministic deadline, freeing (or
    /// decrementing the merge count of) row `row`.
    Returned {
        /// Cell address of the read.
        addr: LineAddr,
        /// The delay-storage row played back.
        row: RowId,
        /// True when the data had not arrived in time (a deadline miss —
        /// must never happen for a validated config).
        miss: bool,
    },
    /// An event-horizon skip ([`crate::VpnmController::run_batch`])
    /// fast-forwarded `interface_cycles` idle interface cycles in one
    /// step — no requests arrived, no bank had work, and no playback fell
    /// due anywhere in the span. Recorded with bank 0 (the span is not
    /// bank-specific). Explains apparent cycle gaps in the event stream.
    FastForward {
        /// Length of the skipped span in interface cycles.
        interface_cycles: u64,
    },
    /// A well-formed request could not be accepted: the causal context —
    /// every buffer's occupancy at the moment of the stall — is captured
    /// inline. Malformed rejections are *not* recorded (they carry no
    /// information about the controller's state).
    Stalled {
        /// Which structure was full.
        kind: StallKind,
        /// The address that stalled.
        addr: LineAddr,
        /// DSB rows live in the stalling bank (vs capacity `K`).
        storage_live: u32,
        /// BAQ depth in the stalling bank (vs capacity `Q`).
        queue_depth: u32,
        /// Write-buffer depth in the stalling bank.
        write_depth: u32,
    },
}

impl fmt::Display for ForensicEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>8}  bank {:>3}  ", self.at.as_u64(), self.bank)?;
        match self.kind {
            ForensicKind::Accepted { addr, row, queue_depth } => {
                write!(f, "accept   read  {addr} -> row {row}, queue depth {queue_depth}")
            }
            ForensicKind::Merged { addr, row } => {
                write!(f, "merge    read  {addr} into in-flight row {row}")
            }
            ForensicKind::WriteAccepted { addr, queue_depth } => {
                write!(f, "accept   write {addr}, queue depth {queue_depth}")
            }
            ForensicKind::QueueExit { queue_depth } => {
                write!(f, "retire   access, queue depth {queue_depth}")
            }
            ForensicKind::Returned { addr, row, miss } => {
                if miss {
                    write!(f, "MISS     read  {addr} row {row}: data not ready at deadline")
                } else {
                    write!(f, "return   read  {addr} from row {row}")
                }
            }
            ForensicKind::FastForward { interface_cycles } => {
                write!(f, "skip     {interface_cycles} idle interface cycles (event-horizon)")
            }
            ForensicKind::Stalled { kind, addr, storage_live, queue_depth, write_depth } => {
                write!(
                    f,
                    "STALL    {kind}: {addr} (DSB rows live {storage_live}, queue depth \
                     {queue_depth}, write buffer {write_depth})"
                )
            }
        }
    }
}

/// Fixed-capacity ring of [`ForensicEvent`]s, oldest evicted first.
///
/// This is the real implementation, compiled in when the `forensics`
/// feature is enabled (the default). A zero `capacity` disables recording
/// entirely; [`ForensicRing::record`] then costs one branch.
#[cfg(feature = "forensics")]
#[derive(Debug, Clone)]
pub struct ForensicRing {
    buf: Vec<ForensicEvent>,
    capacity: usize,
    /// Index of the logically oldest event once the ring has wrapped.
    head: usize,
    /// Total events ever recorded (recorded − retained = dropped).
    recorded: u64,
}

#[cfg(feature = "forensics")]
impl ForensicRing {
    /// Creates a ring retaining the last `capacity` events (0 disables).
    pub fn new(capacity: usize) -> Self {
        ForensicRing { buf: Vec::with_capacity(capacity), capacity, head: 0, recorded: 0 }
    }

    /// True when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, at: Cycle, bank: u32, kind: ForensicKind) {
        if self.capacity == 0 {
            return;
        }
        let ev = ForensicEvent { at, bank, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ForensicEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Renders the causal window ending at the most recent stall: the
    /// stall line itself plus every retained event leading up to it.
    /// Returns `None` when no stall event is retained.
    pub fn stall_report(&self) -> Option<String> {
        let events = self.events();
        let stall_idx =
            events.iter().rposition(|e| matches!(e.kind, ForensicKind::Stalled { .. }))?;
        let stall = &events[stall_idx];
        let mut out = String::new();
        if let ForensicKind::Stalled { kind, storage_live, queue_depth, .. } = stall.kind {
            let structure = match kind {
                StallKind::DelayStorage => {
                    format!("exceeded DSB occupancy {storage_live}")
                }
                StallKind::AccessQueue => {
                    format!("exceeded bank access queue depth {queue_depth}")
                }
                StallKind::WriteBuffer => "exhausted its write buffer".to_string(),
                StallKind::Throttled => "deferred a tenant over budget".to_string(),
                StallKind::AddressRange | StallKind::OversizedWrite => {
                    "rejected a malformed request".to_string()
                }
            };
            out.push_str(&format!(
                "bank {} {structure} at cycle {}; last {} events leading up to it:\n",
                stall.bank,
                stall.at.as_u64(),
                stall_idx + 1,
            ));
        }
        for e in &events[..=stall_idx] {
            out.push_str(&format!("  {e}\n"));
        }
        if self.dropped() > 0 {
            out.push_str(&format!(
                "  ({} earlier events evicted from the {}-entry ring)\n",
                self.dropped(),
                self.capacity
            ));
        }
        Some(out)
    }
}

/// No-op stand-in compiled when the `forensics` feature is disabled: the
/// same API surface, with `record` inlining to nothing so the hot path
/// carries no trace of the tracer.
#[cfg(not(feature = "forensics"))]
#[derive(Debug, Clone)]
pub struct ForensicRing;

#[cfg(not(feature = "forensics"))]
impl ForensicRing {
    /// Creates the disabled stub (capacity is ignored).
    pub fn new(_capacity: usize) -> Self {
        ForensicRing
    }

    /// Always false: nothing is recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Compiled away entirely.
    #[inline(always)]
    pub fn record(&mut self, _at: Cycle, _bank: u32, _kind: ForensicKind) {}

    /// Always 0.
    pub fn len(&self) -> usize {
        0
    }

    /// Always true.
    pub fn is_empty(&self) -> bool {
        true
    }

    /// Always 0.
    pub fn recorded(&self) -> u64 {
        0
    }

    /// Always 0.
    pub fn dropped(&self) -> u64 {
        0
    }

    /// Always empty.
    pub fn events(&self) -> Vec<ForensicEvent> {
        Vec::new()
    }

    /// Always `None`.
    pub fn stall_report(&self) -> Option<String> {
        None
    }
}

#[cfg(all(test, feature = "forensics"))]
mod tests {
    use super::*;

    fn accept(at: u64, bank: u32, addr: u64) -> (Cycle, u32, ForensicKind) {
        (
            Cycle::new(at),
            bank,
            ForensicKind::Accepted { addr: LineAddr(addr), row: 0, queue_depth: 1 },
        )
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = ForensicRing::new(0);
        assert!(!r.is_enabled());
        let (at, bank, kind) = accept(1, 0, 10);
        r.record(at, bank, kind);
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.stall_report(), None);
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let mut r = ForensicRing::new(4);
        for i in 0..10u64 {
            let (at, bank, kind) = accept(i, 0, i);
            r.record(at, bank, kind);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let evs = r.events();
        let cycles: Vec<u64> = evs.iter().map(|e| e.at.as_u64()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest first, newest retained");
    }

    #[test]
    fn stall_report_reconstructs_window() {
        let mut r = ForensicRing::new(8);
        for i in 0..3u64 {
            let (at, bank, kind) = accept(i, 3, i * 4);
            r.record(at, bank, kind);
        }
        r.record(
            Cycle::new(3),
            3,
            ForensicKind::Stalled {
                kind: StallKind::DelayStorage,
                addr: LineAddr(12),
                storage_live: 8,
                queue_depth: 1,
                write_depth: 0,
            },
        );
        let report = r.stall_report().expect("stall retained");
        assert!(report.contains("bank 3 exceeded DSB occupancy 8 at cycle 3"), "{report}");
        assert!(report.contains("last 4 events"), "{report}");
        assert!(report.contains("STALL"), "{report}");
        // Events after the stall are not part of the causal window.
        let (at, bank, kind) = accept(4, 1, 99);
        r.record(at, bank, kind);
        let report2 = r.stall_report().unwrap();
        assert!(!report2.contains("0x63"), "post-stall event must not appear: {report2}");
    }

    #[test]
    fn no_stall_no_report() {
        let mut r = ForensicRing::new(8);
        let (at, bank, kind) = accept(0, 0, 0);
        r.record(at, bank, kind);
        assert_eq!(r.stall_report(), None);
    }

    #[test]
    fn display_lines_are_informative() {
        let e = ForensicEvent {
            at: Cycle::new(7),
            bank: 2,
            kind: ForensicKind::Returned { addr: LineAddr(5), row: 9, miss: false },
        };
        let s = e.to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("bank   2"), "{s}");
        assert!(s.contains("row 9"), "{s}");
        let m = ForensicEvent {
            at: Cycle::new(8),
            bank: 2,
            kind: ForensicKind::Returned { addr: LineAddr(5), row: 9, miss: true },
        };
        assert!(m.to_string().contains("MISS"));
    }
}
