//! The write buffer FIFO (paper Figure 3, bottom left).
//!
//! Writes need no reply, so they are buffered (address + data) until their
//! turn on the bank comes up. The paper sizes the write buffer at half the
//! bank access queue ("we keep the write buffer equal to half of bank
//! request queue size"), making the *write buffer stall* strictly rarer
//! than the access-queue stall.

use crate::request::LineAddr;
use bytes::Bytes;
use std::collections::VecDeque;

/// A pending write (address + cell data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination cell.
    pub addr: LineAddr,
    /// Cell contents (reference-counted; cloning does not copy).
    pub data: Bytes,
}

/// The paper's **write buffer**: a bounded FIFO of pending writes, sized
/// at `⌈Q/2⌉` entries (Figure 3, bottom left; Section 4.3). Overflow is
/// the *write buffer stall*.
///
/// ```
/// use vpnm_core::write_buffer::WriteBuffer;
/// use vpnm_core::request::LineAddr;
/// let mut wb = WriteBuffer::new(1);
/// wb.push(LineAddr(3), vec![1, 2]).unwrap();
/// assert!(wb.push(LineAddr(4), vec![]).is_err());
/// let w = wb.pop().unwrap();
/// assert_eq!(w.addr, LineAddr(3));
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: VecDeque<PendingWrite>,
    capacity: usize,
}

/// Error when the write buffer is full; carries the rejected write back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBufferFull(pub PendingWrite);

impl WriteBuffer {
    /// Creates a buffer holding up to `capacity` writes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Writes currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a push would stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Buffers a write.
    ///
    /// # Errors
    ///
    /// Returns [`WriteBufferFull`] when at capacity.
    pub fn push(&mut self, addr: LineAddr, data: impl Into<Bytes>) -> Result<(), WriteBufferFull> {
        let data = data.into();
        if self.is_full() {
            return Err(WriteBufferFull(PendingWrite { addr, data }));
        }
        self.entries.push_back(PendingWrite { addr, data });
        Ok(())
    }

    /// The oldest write, without removing it (the issue path peeks first
    /// so a busy bank leaves the buffer untouched).
    pub fn front(&self) -> Option<&PendingWrite> {
        self.entries.front()
    }

    /// Pops the oldest write.
    pub fn pop(&mut self) -> Option<PendingWrite> {
        self.entries.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut wb = WriteBuffer::new(3);
        wb.push(LineAddr(1), vec![1]).unwrap();
        wb.push(LineAddr(2), vec![2]).unwrap();
        assert_eq!(wb.pop().unwrap().addr, LineAddr(1));
        assert_eq!(wb.pop().unwrap().addr, LineAddr(2));
        assert_eq!(wb.pop(), None);
    }

    #[test]
    fn overflow_returns_write() {
        let mut wb = WriteBuffer::new(1);
        wb.push(LineAddr(1), vec![9]).unwrap();
        let err = wb.push(LineAddr(2), vec![8]).unwrap_err();
        assert_eq!(err.0.addr, LineAddr(2));
        assert_eq!(err.0.data, vec![8u8]);
    }

    #[test]
    fn state_queries() {
        let mut wb = WriteBuffer::new(2);
        assert!(wb.is_empty());
        wb.push(LineAddr(0), vec![]).unwrap();
        assert_eq!(wb.len(), 1);
        assert!(!wb.is_full());
        wb.push(LineAddr(0), vec![]).unwrap();
        assert!(wb.is_full());
        assert_eq!(wb.capacity(), 2);
    }
}
