//! Per-tenant bandwidth regulation at the fabric ingress.
//!
//! VPNM's universal hashing already denies an adversary *bank targeting*
//! (paper Section 4): no access pattern concentrates load on one bank
//! with better-than-random probability. What hashing cannot do is stop a
//! tenant from simply *spending the whole interface* — on a shared
//! fabric, one firehose tenant starves every well-behaved neighbour long
//! before any bank structure overflows. Per-Bank Memory Bandwidth
//! Regulation (Sullivan et al.) shows the fix for shared DRAM:
//! per-client token buckets, optionally refined to per-bank budgets so a
//! client cannot even spend its *aggregate* allowance on one bank.
//!
//! [`Regulator`] implements both variants with deterministic integer
//! arithmetic — lazy refill from the last-touched cycle, no floats, no
//! wall clock — so a regulated run is a pure function of `(config,
//! seed)` like everything else in the simulator:
//!
//! * [`RegulatorMode::Global`]: one bucket per tenant, refilled at
//!   `rate_num/rate_den` requests per interface cycle.
//! * [`RegulatorMode::PerBank`]: one bucket per (tenant, bank), each
//!   refilled at `rate / banks` — the Sullivan-style refinement. A
//!   tenant hammering one bank exhausts that bank's sliver of its budget
//!   while its buckets for the other banks stay full.
//!
//! A denied request is **deferred**, not dropped: the fabric returns
//! [`StallKind::Throttled`](crate::StallKind::Throttled) and the caller
//! decides (retry next cycle, or — in the serving layer — account the
//! packet as a QoS drop). Deferrals are recorded in the fabric's
//! [`TenantLedger`], never in a channel's stall counters, so the
//! regulation-off snapshot stays byte-identical to the pre-QoS schema.

use crate::request::TenantId;

/// Hard cap on the tenant count (keeps per-tenant arrays trivially small).
pub const MAX_TENANTS: u16 = 4096;

/// Which token-bucket topology regulates the fabric ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegulatorMode {
    /// No regulation: tenants are tracked (ledger, snapshot section) but
    /// never deferred.
    #[default]
    Off,
    /// One bucket per tenant across the whole fabric.
    Global,
    /// One bucket per (tenant, bank); each gets `rate / banks`.
    PerBank,
}

impl RegulatorMode {
    /// The snapshot/CLI spelling (`off`, `global`, `per-bank`).
    pub fn as_str(self) -> &'static str {
        match self {
            RegulatorMode::Off => "off",
            RegulatorMode::Global => "global",
            RegulatorMode::PerBank => "per-bank",
        }
    }
}

impl std::str::FromStr for RegulatorMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(RegulatorMode::Off),
            "global" => Ok(RegulatorMode::Global),
            "per-bank" | "perbank" | "per_bank" => Ok(RegulatorMode::PerBank),
            other => Err(format!("unknown regulator '{other}' (expected off|global|per-bank)")),
        }
    }
}

/// Multi-tenant QoS configuration carried by
/// [`FabricConfig`](crate::FabricConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosConfig {
    /// Number of tenants sharing the fabric (dense IDs `0..tenants`).
    pub tenants: u16,
    /// Bucket topology.
    pub mode: RegulatorMode,
    /// Per-tenant budget numerator, in requests per interface cycle.
    pub rate_num: u32,
    /// Per-tenant budget denominator.
    pub rate_den: u32,
    /// Bucket depth in requests (how large a burst a full bucket admits).
    pub burst: u32,
}

impl QosConfig {
    /// A tracked-but-unregulated configuration for `tenants` tenants.
    pub fn tracking(tenants: u16) -> Self {
        QosConfig { tenants, mode: RegulatorMode::Off, rate_num: 1, rate_den: 1, burst: 1 }
    }

    /// Validates the configuration, returning a one-line error.
    ///
    /// # Errors
    ///
    /// Rejects zero tenant counts, counts above [`MAX_TENANTS`], zero
    /// rate components, and zero burst depth.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("qos: tenants must be >= 1".into());
        }
        if self.tenants > MAX_TENANTS {
            return Err(format!("qos: tenants must be <= {MAX_TENANTS}, got {}", self.tenants));
        }
        if self.rate_num == 0 || self.rate_den == 0 {
            return Err("qos: tenant rate must be a positive rational".into());
        }
        if self.burst == 0 {
            return Err("qos: burst depth must be >= 1".into());
        }
        Ok(())
    }

    /// Clamps an incoming tenant ID to the configured dense range.
    #[inline]
    pub fn clamp(&self, tenant: TenantId) -> usize {
        usize::from(tenant.0.min(self.tenants - 1))
    }
}

/// Deterministic token buckets keyed by tenant (and bank, in
/// [`RegulatorMode::PerBank`]).
///
/// Levels are kept in micro-tokens of `1 / (rate_den * banks_weight)`
/// requests, so refill (`rate_num` micro-tokens per cycle) and spend
/// (`rate_den * banks_weight` micro-tokens per request) are both exact
/// integers. Buckets start full and refill lazily from the cycle they
/// were last touched.
///
/// ```
/// use vpnm_core::regulator::{QosConfig, Regulator, RegulatorMode};
/// use vpnm_core::request::TenantId;
///
/// // Two tenants at 1/2 request per cycle, burst depth 1.
/// let cfg = QosConfig {
///     tenants: 2,
///     mode: RegulatorMode::Global,
///     rate_num: 1,
///     rate_den: 2,
///     burst: 1,
/// };
/// let mut reg = Regulator::new(&cfg, 1);
/// assert!(reg.admit(TenantId(0), 0, 1)); // full bucket
/// assert!(!reg.admit(TenantId(0), 0, 1)); // spent; deferred
/// assert!(!reg.admit(TenantId(0), 0, 2)); // half a token back — not enough
/// assert!(reg.admit(TenantId(0), 0, 3)); // a full token again
/// assert!(reg.admit(TenantId(1), 0, 1)); // tenants are independent
/// ```
#[derive(Debug, Clone)]
pub struct Regulator {
    banks: u32,
    cost: u64,
    refill: u64,
    cap: u64,
    level: Vec<u64>,
    last: Vec<u64>,
    tenants: u16,
}

impl Regulator {
    /// Builds the bucket array for a validated config over a fabric with
    /// `banks_total` banks (all channels combined).
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`QosConfig::validate`] or
    /// `banks_total` is 0 — both are caught earlier by
    /// [`FabricConfig::validate`](crate::FabricConfig::validate).
    pub fn new(cfg: &QosConfig, banks_total: u32) -> Self {
        cfg.validate().expect("validated by FabricConfig");
        assert!(banks_total > 0, "fabric has at least one bank");
        let banks = match cfg.mode {
            RegulatorMode::PerBank => banks_total,
            _ => 1,
        };
        let cost = u64::from(cfg.rate_den) * u64::from(banks);
        let cap = cost * u64::from(cfg.burst);
        let buckets = usize::from(cfg.tenants) * banks as usize;
        Regulator {
            banks,
            cost,
            refill: u64::from(cfg.rate_num),
            cap,
            level: vec![cap; buckets],
            last: vec![0; buckets],
            tenants: cfg.tenants,
        }
    }

    /// Number of bank buckets per tenant (1 in global mode).
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Admits or defers one request from `tenant` targeting the fabric-
    /// global `bank` at interface cycle `now`. Admission spends one
    /// request's worth of tokens; a deferral spends nothing.
    #[inline]
    pub fn admit(&mut self, tenant: TenantId, bank: u32, now: u64) -> bool {
        let t = u32::from(tenant.0.min(self.tenants - 1));
        let b = if self.banks == 1 { 0 } else { bank % self.banks };
        let idx = (t * self.banks + b) as usize;
        let dt = now.saturating_sub(self.last[idx]);
        self.last[idx] = now;
        // 128-bit refill product: a long-idle bucket's dt * refill can
        // exceed u64, but the level is clamped to cap anyway.
        let refilled = (u128::from(dt) * u128::from(self.refill))
            .min(u128::from(self.cap))
            .saturating_add(u128::from(self.level[idx]));
        let level = refilled.min(u128::from(self.cap)) as u64;
        if level >= self.cost {
            self.level[idx] = level - self.cost;
            true
        } else {
            self.level[idx] = level;
            false
        }
    }
}

/// Per-tenant accounting the fabric keeps at its ingress: how many
/// requests each tenant got past the regulator and how many were
/// deferred. The serving layer adds drop/latency attribution on top when
/// it builds the snapshot's tenant section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLedger {
    /// Requests admitted past the regulator, per tenant.
    pub issued: Vec<u64>,
    /// Requests deferred ([`StallKind::Throttled`](crate::StallKind::Throttled)),
    /// per tenant.
    pub deferred: Vec<u64>,
}

impl TenantLedger {
    /// A zeroed ledger for `tenants` tenants.
    pub fn new(tenants: u16) -> Self {
        TenantLedger {
            issued: vec![0; usize::from(tenants)],
            deferred: vec![0; usize::from(tenants)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: RegulatorMode, num: u32, den: u32, burst: u32) -> QosConfig {
        QosConfig { tenants: 3, mode, rate_num: num, rate_den: den, burst }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(QosConfig { tenants: 0, ..QosConfig::tracking(1) }.validate().is_err());
        assert!(QosConfig::tracking(MAX_TENANTS + 1).validate().is_err());
        assert!(cfg(RegulatorMode::Global, 0, 1, 1).validate().is_err());
        assert!(cfg(RegulatorMode::Global, 1, 0, 1).validate().is_err());
        assert!(cfg(RegulatorMode::Global, 1, 1, 0).validate().is_err());
        assert!(cfg(RegulatorMode::PerBank, 1, 8, 4).validate().is_ok());
        assert_eq!(QosConfig::tracking(4).clamp(TenantId(99)), 3);
    }

    #[test]
    fn mode_spellings_round_trip() {
        for mode in [RegulatorMode::Off, RegulatorMode::Global, RegulatorMode::PerBank] {
            assert_eq!(mode.as_str().parse::<RegulatorMode>().unwrap(), mode);
        }
        assert!("banana".parse::<RegulatorMode>().is_err());
    }

    #[test]
    fn global_bucket_enforces_long_run_rate() {
        // 1/4 request per cycle, burst 2: over 1000 cycles a greedy
        // tenant gets its burst plus ~250 refills, nothing more.
        let mut reg = Regulator::new(&cfg(RegulatorMode::Global, 1, 4, 2), 8);
        let mut admitted = 0u64;
        for now in 1..=1000u64 {
            if reg.admit(TenantId(0), 0, now) {
                admitted += 1;
            }
        }
        assert!((250..=252).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn per_bank_splits_the_budget_across_banks() {
        // Aggregate 1/2 per cycle over 4 banks => 1/8 per bank. A tenant
        // hammering bank 0 is capped at the sliver; spreading over all
        // four banks recovers the aggregate.
        let qos = QosConfig {
            tenants: 2,
            mode: RegulatorMode::PerBank,
            rate_num: 1,
            rate_den: 2,
            burst: 1,
        };
        let mut hammer = Regulator::new(&qos, 4);
        let mut spread = Regulator::new(&qos, 4);
        let (mut one_bank, mut four_banks) = (0u64, 0u64);
        for now in 1..=4000u64 {
            if hammer.admit(TenantId(0), 0, now) {
                one_bank += 1;
            }
            if spread.admit(TenantId(0), (now % 4) as u32, now) {
                four_banks += 1;
            }
        }
        assert!((500..=502).contains(&one_bank), "one bank admitted {one_bank}");
        assert!((1999..=2001).contains(&four_banks), "four banks admitted {four_banks}");
    }

    #[test]
    fn burst_depth_admits_back_to_back_then_throttles() {
        let mut reg = Regulator::new(&cfg(RegulatorMode::Global, 1, 8, 4), 1);
        let burst: Vec<bool> = (0..6).map(|_| reg.admit(TenantId(1), 0, 1)).collect();
        assert_eq!(burst, [true, true, true, true, false, false]);
        // After a long idle stretch the bucket is full again (clamped).
        assert!(reg.admit(TenantId(1), 0, 1_000_000));
    }

    #[test]
    fn out_of_range_tenants_and_banks_clamp() {
        let mut reg = Regulator::new(&cfg(RegulatorMode::PerBank, 1, 1, 1), 2);
        // Tenant 99 shares tenant 2's buckets; bank 7 wraps onto bank 1.
        assert!(reg.admit(TenantId(99), 7, 1));
        assert!(!reg.admit(TenantId(2), 1, 1));
    }

    #[test]
    fn idle_overflow_is_clamped_not_wrapped() {
        let mut reg = Regulator::new(&cfg(RegulatorMode::Global, u32::MAX, 1, u32::MAX), 1);
        assert!(reg.admit(TenantId(0), 0, u64::MAX));
        assert!(reg.admit(TenantId(0), 0, u64::MAX));
    }

    #[test]
    fn ledger_starts_zeroed() {
        let l = TenantLedger::new(3);
        assert_eq!(l.issued, [0, 0, 0]);
        assert_eq!(l.deferred, [0, 0, 0]);
    }
}
