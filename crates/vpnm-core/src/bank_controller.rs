//! The per-bank controller — the state machine of paper Figure 3,
//! assembled from the delay storage buffer, bank access queue, and write
//! buffer.
//!
//! Each bank controller independently upholds the invariant that a read
//! accepted at interface cycle `t` is answered at exactly `t + D` (paper
//! Section 3.3: "each bank controller is in charge of ensuring that for
//! every access at time t, it returns the result at time t + D"). Because
//! at most one request enters the whole controller per interface cycle, at
//! most one bank controller can have a playback due on any cycle, so no
//! coordination between banks is needed — and for the same reason the
//! playback *timing* wheel lives in the owning controller as one shared
//! [`CircularDelayBuffer`](crate::delay_line::CircularDelayBuffer) keyed
//! by `(bank, row)`, instead of `B` per-bank wheels all spinning in
//! lockstep. The bank controller exposes [`BankController::playback`] for
//! the owner to call when a scheduled row falls due.

use crate::access_queue::{AccessEntry, BankAccessQueue};
use crate::delay_storage::{DelayStorageBuffer, Playback, RowId};
use crate::request::{LineAddr, StallKind};
use crate::write_buffer::WriteBuffer;
use bytes::Bytes;
use vpnm_dram::DramDevice;
use vpnm_sim::Cycle;

/// One request as seen by a bank controller (after the hash stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankEvent {
    /// A read of `addr`.
    Read {
        /// Cell address.
        addr: LineAddr,
    },
    /// A write of `data` to `addr`.
    Write {
        /// Cell address.
        addr: LineAddr,
        /// Cell contents (refcounted; cloning does not copy).
        data: Bytes,
    },
}

/// Post-grant facts from one [`BankController::on_bus_grant`], packed
/// into the single return value so the controller's dense scheduling
/// lanes (busy-until, queue depth) resync without further method calls
/// on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantOutcome {
    /// Whether the grant retired a completed access (freed a queue slot).
    pub retired: bool,
    /// Whether the grant issued a new access to the DRAM.
    pub issued: bool,
    /// The bank's in-service horizon after the grant, `0` when idle —
    /// the dense-lane encoding of [`BankController::in_service_until`].
    pub busy_until: u64,
    /// Access-queue depth after the grant.
    pub depth: u32,
}

/// What the accepted event scheduled, reported back to the top-level
/// controller for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accepted {
    /// A fresh read was queued for the bank (row allocated).
    ReadQueued(RowId),
    /// A redundant read was merged into an existing row.
    ReadMerged(RowId),
    /// A write was buffered.
    WriteBuffered,
}

/// The controller for one memory bank — the paper's per-bank state
/// machine of Figure 3, composing the delay storage buffer (DSB), the
/// bank access queue, and the write buffer. (The circular delay buffer is
/// shared across banks and lives in the owning [`crate::VpnmController`].)
#[derive(Debug, Clone)]
pub struct BankController {
    bank: u32,
    storage: DelayStorageBuffer,
    queue: BankAccessQueue,
    writes: WriteBuffer,
    /// Completion time of the access currently using the bank. The front
    /// queue entry stays in the queue until this passes, so `Q` bounds the
    /// number of *overlapping* accesses (queued + in service) — the
    /// paper's definition (`Q = D/L` in Figure 1).
    in_service_until: Option<Cycle>,
    /// Whether redundant reads merge into live rows (ablation knob).
    merging: bool,
}

impl BankController {
    /// Creates a controller for `bank` with capacities `k` (storage rows),
    /// `q` (access queue) and `wb` (write buffer).
    pub fn new(bank: u32, k: usize, q: usize, wb: usize) -> Self {
        BankController {
            bank,
            storage: DelayStorageBuffer::new(k),
            queue: BankAccessQueue::new(q),
            writes: WriteBuffer::new(wb),
            in_service_until: None,
            merging: true,
        }
    }

    /// Disables (or re-enables) redundant-request merging — the ablation
    /// that shows why the paper's merging queue is necessary.
    pub fn with_merging(mut self, enabled: bool) -> Self {
        self.merging = enabled;
        self
    }

    /// The bank index this controller owns.
    pub fn bank(&self) -> u32 {
        self.bank
    }

    /// Attempts to accept an event this interface cycle.
    ///
    /// On success, a read returns the delay-storage row that the caller
    /// must schedule for playback exactly `D` interface cycles later.
    ///
    /// # Errors
    ///
    /// The stall kind when a buffer is exhausted; the event is **not**
    /// partially applied.
    #[inline]
    pub fn submit(&mut self, event: BankEvent) -> Result<Accepted, StallKind> {
        match event {
            BankEvent::Read { addr } => {
                // One CAM probe serves both the merge lookup and (on a
                // miss) the insert position for the fresh allocation.
                let hint = if self.merging {
                    match self.storage.lookup_hinted(addr) {
                        Ok(row) => {
                            // Redundant access: merge, no bank access
                            // needed (paper Figure 1, middle graph).
                            self.storage.merge(row);
                            return Ok(Accepted::ReadMerged(row));
                        }
                        Err(hint) => Some(hint),
                    }
                } else {
                    None
                };
                // Check queue space before allocating so no rollback is
                // ever needed.
                if self.queue.is_full() {
                    return Err(StallKind::AccessQueue);
                }
                let row = match hint {
                    Some(hint) => self.storage.allocate_hinted(addr, hint),
                    None => self.storage.allocate(addr),
                };
                let Some(row) = row else {
                    return Err(StallKind::DelayStorage);
                };
                self.queue.push(AccessEntry::Read { row }).expect("checked for space above");
                Ok(Accepted::ReadQueued(row))
            }
            BankEvent::Write { addr, data } => {
                if self.writes.is_full() {
                    return Err(StallKind::WriteBuffer);
                }
                if self.queue.is_full() {
                    return Err(StallKind::AccessQueue);
                }
                self.writes.push(addr, data).expect("checked for space above");
                self.queue.push(AccessEntry::Write).expect("checked for space above");
                // New readers must re-fetch from the bank; in-flight
                // readers keep the pre-write data (paper Section 4.2).
                self.storage.invalidate(addr);
                Ok(Accepted::WriteBuffered)
            }
        }
    }

    /// Plays back a row whose deadline arrived: the owning controller's
    /// delay wheel decides *when*; this consumes one counter tick and
    /// returns the served address + data (`None` data = deadline miss).
    #[inline]
    pub fn playback(&mut self, row: RowId) -> Playback {
        self.storage.playback(row)
    }

    /// Called when the round-robin bus scheduler grants this bank a memory
    /// cycle: retires the in-service access if it completed, then issues
    /// the oldest queued access to the DRAM if the bank is free. Returns
    /// the post-grant scheduling facts in one [`GrantOutcome`] so the
    /// controller's dense lanes need no follow-up accessor calls.
    ///
    /// # Panics
    ///
    /// Panics if the DRAM rejects an access for a reason other than a busy
    /// bank (range errors indicate controller/device misconfiguration).
    #[inline]
    pub fn on_bus_grant(&mut self, dram: &mut DramDevice, now_mem: Cycle) -> GrantOutcome {
        // Retire a completed access: its queue slot frees only now, so
        // Q bounds overlapping accesses including the one in service.
        let mut retired = false;
        if let Some(until) = self.in_service_until {
            if now_mem < until {
                // bank busy — the grant is wasted
                return GrantOutcome {
                    retired: false,
                    issued: false,
                    busy_until: until.as_u64(),
                    depth: self.queue.len() as u32,
                };
            }
            self.queue.pop();
            self.in_service_until = None;
            retired = true;
        }
        // A grant to a busy bank is simply wasted (paper Section 4: "some
        // of the round-robin slots are not used when … the memory bank is
        // busy") and must not count as a conflict in device stats — the
        // `try_issue` variants fold that readiness peek into the issue
        // itself, so the busy window is tested once, not twice.
        let busy_until = match self.queue.front().copied() {
            None => 0,
            Some(AccessEntry::Read { row }) => {
                let addr = self.storage.row_addr(row);
                match dram
                    .try_issue_read(self.bank, addr.0, now_mem)
                    .unwrap_or_else(|e| panic!("unexpected DRAM error: {e}"))
                {
                    Some(grant) => {
                        self.storage.fill(row, grant.data);
                        self.in_service_until = Some(grant.data_ready_at);
                        grant.data_ready_at.as_u64()
                    }
                    None => 0,
                }
            }
            Some(AccessEntry::Write) => {
                let w = self.writes.front().expect("Write queue entry implies buffered write");
                match dram
                    .try_issue_write(self.bank, w.addr.0, w.data.clone(), now_mem)
                    .unwrap_or_else(|e| panic!("unexpected DRAM error: {e}"))
                {
                    Some(done) => {
                        self.writes.pop().expect("front checked above");
                        self.in_service_until = Some(done);
                        done.as_u64()
                    }
                    None => 0,
                }
            }
        };
        GrantOutcome {
            retired,
            issued: busy_until != 0,
            busy_until,
            depth: self.queue.len() as u32,
        }
    }

    /// Warms the cache lines a `submit` of a read for `addr` will touch
    /// (see [`DelayStorageBuffer::prefetch`]). Semantically a no-op;
    /// batched drivers call it a few cycles ahead of the actual submit.
    #[inline]
    pub fn prefetch(&self, addr: LineAddr) {
        self.storage.prefetch(addr);
    }

    /// Warms the delay-storage row an upcoming playback will touch (see
    /// [`DelayStorageBuffer::prefetch_row`]). Semantically a no-op.
    #[inline]
    pub fn prefetch_row(&self, row: RowId) {
        self.storage.prefetch_row(row);
    }

    /// Warms the CAM slot an upcoming playback's unlink will probe (see
    /// [`DelayStorageBuffer::prefetch_playback`]). Semantically a no-op.
    #[inline]
    pub fn prefetch_playback(&self, row: RowId) {
        self.storage.prefetch_playback(row);
    }

    /// Rows currently live in the delay storage buffer.
    pub fn storage_occupancy(&self) -> usize {
        self.storage.live_rows()
    }

    /// Entries currently in the bank access queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Entries currently in the write buffer.
    pub fn write_buffer_depth(&self) -> usize {
        self.writes.len()
    }

    /// The memory cycle the in-service access completes at, if one is in
    /// service. Until it passes, every bus grant to this bank is wasted —
    /// the busy-horizon skip uses this to prove whole grant windows
    /// state-free.
    pub fn in_service_until(&self) -> Option<Cycle> {
        self.in_service_until
    }

    /// True when a bus grant at `now` would do useful work: there is
    /// queued work and the bank is (or will just have become) free. Used
    /// by the work-conserving scheduler ablation.
    pub fn wants_grant(&self, now: Cycle) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        match self.in_service_until {
            Some(until) => now >= until && self.queue.len() > 1,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay_line::CircularDelayBuffer;
    use vpnm_dram::DramConfig;

    fn dram() -> DramDevice {
        // 4 banks, L = 3, 8-byte cells, 64 cells/bank
        DramDevice::new(DramConfig::tiny_test())
    }

    const D: u64 = 10;

    fn controller() -> BankController {
        BankController::new(1, 4, 4, 2)
    }

    /// Test harness pairing one bank controller with its own delay wheel,
    /// as the pre-refactor BankController embedded (the production
    /// controller shares one wheel across banks; with a single bank the
    /// two are identical).
    struct Harness {
        bc: BankController,
        wheel: CircularDelayBuffer,
    }

    impl Harness {
        fn new(bc: BankController, d: u64) -> Self {
            Harness { bc, wheel: CircularDelayBuffer::new(d as usize) }
        }

        fn advance(&mut self, incoming: Option<RowId>) -> Option<Playback> {
            let due = self.wheel.tick(incoming)?;
            Some(self.bc.playback(due))
        }

        fn advance_until_due(&mut self) -> Playback {
            for _ in 0..2 * self.wheel.delay() {
                if let Some(pb) = self.advance(None) {
                    return pb;
                }
            }
            panic!("no playback within 2D cycles");
        }
    }

    #[test]
    fn read_lifecycle_end_to_end() {
        let mut h = Harness::new(controller(), D);
        let mut d = dram();
        d.poke(1, 5, vec![0xAB]);

        let acc = h.bc.submit(BankEvent::Read { addr: LineAddr(5) }).unwrap();
        let Accepted::ReadQueued(row) = acc else { panic!("expected fresh read") };

        // schedule into delay line at t0; grant the bank before the
        // deadline
        assert!(h.advance(Some(row)).is_none());
        assert!(h.bc.on_bus_grant(&mut d, Cycle::new(1)).issued);
        // ticks 1..9: nothing due
        for _ in 1..10 {
            assert!(h.advance(None).is_none());
        }
        // tick 10 (= D): playback
        let pb = h.advance(None).expect("due at D");
        assert_eq!(pb.addr, LineAddr(5));
        assert_eq!(pb.data.as_deref().map(|d| d[0]), Some(0xAB));
        assert_eq!(h.bc.storage_occupancy(), 0, "row freed after playback");
    }

    #[test]
    fn merged_read_plays_twice_with_one_bank_access() {
        let mut h = Harness::new(controller(), D);
        let mut d = dram();
        d.poke(1, 7, vec![0x11]);

        let Accepted::ReadQueued(row) = h.bc.submit(BankEvent::Read { addr: LineAddr(7) }).unwrap()
        else {
            panic!()
        };
        h.advance(Some(row));
        let Accepted::ReadMerged(row2) =
            h.bc.submit(BankEvent::Read { addr: LineAddr(7) }).unwrap()
        else {
            panic!("second read of same addr must merge")
        };
        assert_eq!(row, row2);
        h.advance(Some(row2));
        h.bc.on_bus_grant(&mut d, Cycle::new(1));
        assert_eq!(d.stats().reads, 1, "exactly one bank access for two reads");

        for _ in 2..10 {
            assert!(h.advance(None).is_none());
        }
        let pb1 = h.advance(None).unwrap();
        let pb2 = h.advance(None).unwrap();
        assert_eq!(pb1.data.as_deref(), Some(&[0x11, 0, 0, 0, 0, 0, 0, 0][..]));
        assert_eq!(pb1.data, pb2.data);
    }

    #[test]
    fn queue_stall_when_q_exhausted() {
        let mut bc = BankController::new(0, 8, 2, 2);
        bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        bc.submit(BankEvent::Read { addr: LineAddr(2) }).unwrap();
        let err = bc.submit(BankEvent::Read { addr: LineAddr(3) }).unwrap_err();
        assert_eq!(err, StallKind::AccessQueue);
        // but a merge of an in-flight address still works
        assert!(matches!(
            bc.submit(BankEvent::Read { addr: LineAddr(1) }),
            Ok(Accepted::ReadMerged(_))
        ));
    }

    #[test]
    fn storage_stall_when_k_exhausted() {
        // K = 2, Q = 8: storage fills first
        let mut bc = BankController::new(0, 2, 8, 2);
        bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        bc.submit(BankEvent::Read { addr: LineAddr(2) }).unwrap();
        let err = bc.submit(BankEvent::Read { addr: LineAddr(3) }).unwrap_err();
        assert_eq!(err, StallKind::DelayStorage);
    }

    #[test]
    fn write_buffer_stall() {
        let mut bc = BankController::new(0, 4, 8, 1);
        bc.submit(BankEvent::Write { addr: LineAddr(1), data: Bytes::new() }).unwrap();
        let err =
            bc.submit(BankEvent::Write { addr: LineAddr(2), data: Bytes::new() }).unwrap_err();
        assert_eq!(err, StallKind::WriteBuffer);
    }

    #[test]
    fn write_then_read_returns_new_data() {
        let mut h = Harness::new(controller(), D);
        let mut d = dram();
        d.poke(1, 3, vec![0x01]);

        h.bc.submit(BankEvent::Write { addr: LineAddr(3), data: vec![0x02].into() }).unwrap();
        h.advance(None);
        let Accepted::ReadQueued(row) = h.bc.submit(BankEvent::Read { addr: LineAddr(3) }).unwrap()
        else {
            panic!("read after write must not merge with stale data")
        };
        h.advance(Some(row));

        // grants: write first (FIFO), then read
        let mut now = Cycle::new(2);
        while h.bc.queue_depth() > 0 {
            if h.bc.on_bus_grant(&mut d, now).issued {
                now += 3; // wait out the bank
            } else {
                now += 1;
            }
        }
        let pb = h.advance_until_due();
        assert_eq!(pb.data.as_deref().map(|d| d[0]), Some(0x02));
    }

    #[test]
    fn read_before_write_keeps_old_data() {
        let mut h = Harness::new(controller(), D);
        let mut d = dram();
        d.poke(1, 9, vec![0xAA]);

        let Accepted::ReadQueued(row) = h.bc.submit(BankEvent::Read { addr: LineAddr(9) }).unwrap()
        else {
            panic!()
        };
        h.advance(Some(row));
        h.bc.submit(BankEvent::Write { addr: LineAddr(9), data: vec![0xBB].into() }).unwrap();
        h.advance(None);

        let mut now = Cycle::new(1);
        while h.bc.queue_depth() > 0 {
            if h.bc.on_bus_grant(&mut d, now).issued {
                now += 3;
            } else {
                now += 1;
            }
        }
        let pb = h.advance_until_due();
        // The read was issued before the write in bank FIFO order.
        assert_eq!(pb.data.as_deref().map(|d| d[0]), Some(0xAA));
        // And the write landed afterwards.
        assert_eq!(d.peek(1, 9)[0], 0xBB);
    }

    #[test]
    fn busy_bank_defers_grant_and_slots_free_on_completion() {
        let mut bc = controller();
        let mut d = dram();
        bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        bc.submit(BankEvent::Read { addr: LineAddr(2) }).unwrap();
        assert!(bc.on_bus_grant(&mut d, Cycle::new(0)).issued);
        // bank busy until cycle 3 (L = 3); the in-service access keeps its
        // queue slot so Q bounds *overlapping* accesses
        assert!(!bc.on_bus_grant(&mut d, Cycle::new(1)).issued);
        assert_eq!(bc.queue_depth(), 2);
        // completion grant retires the first access and issues the second
        assert!(bc.on_bus_grant(&mut d, Cycle::new(3)).issued);
        assert_eq!(bc.queue_depth(), 1);
        assert!(!bc.on_bus_grant(&mut d, Cycle::new(4)).issued);
        assert!(!bc.on_bus_grant(&mut d, Cycle::new(6)).issued); // retires, nothing left
        assert_eq!(bc.queue_depth(), 0);
    }

    #[test]
    fn deadline_miss_reports_none_data() {
        let mut h = Harness::new(BankController::new(0, 2, 2, 1), 2); // absurdly small D
        let Accepted::ReadQueued(row) = h.bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap()
        else {
            panic!()
        };
        h.advance(Some(row));
        h.advance(None);
        // D = 2 elapses without any bus grant
        let pb = h.advance(None).unwrap();
        assert_eq!(pb.data, None, "unfilled row at deadline is a miss");
    }

    #[test]
    fn merging_disabled_queues_every_read() {
        let mut bc = BankController::new(0, 8, 2, 1).with_merging(false);
        assert!(matches!(
            bc.submit(BankEvent::Read { addr: LineAddr(1) }),
            Ok(Accepted::ReadQueued(_))
        ));
        assert!(
            matches!(bc.submit(BankEvent::Read { addr: LineAddr(1) }), Ok(Accepted::ReadQueued(_)),),
            "same address must NOT merge when disabled"
        );
        // Q = 2 exhausted by the duplicate
        assert_eq!(
            bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap_err(),
            StallKind::AccessQueue
        );
    }

    #[test]
    fn wants_grant_reflects_state() {
        let mut bc = controller();
        let mut d = dram();
        assert!(!bc.wants_grant(Cycle::ZERO), "empty queue wants nothing");
        bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        assert!(bc.wants_grant(Cycle::ZERO));
        bc.on_bus_grant(&mut d, Cycle::ZERO);
        // in service, nothing else queued: no useful grant until more work
        assert!(!bc.wants_grant(Cycle::new(1)));
        bc.submit(BankEvent::Read { addr: LineAddr(2) }).unwrap();
        assert!(!bc.wants_grant(Cycle::new(1)), "bank still busy");
        assert!(bc.wants_grant(Cycle::new(3)), "completion frees the bank");
    }

    #[test]
    fn occupancy_queries() {
        let mut bc = controller();
        bc.submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        bc.submit(BankEvent::Write { addr: LineAddr(2), data: Bytes::new() }).unwrap();
        assert_eq!(bc.storage_occupancy(), 1);
        assert_eq!(bc.queue_depth(), 2);
        assert_eq!(bc.write_buffer_depth(), 1);
        assert_eq!(bc.bank(), 1);
    }
}
