//! Point-in-time metrics snapshots with a stable JSON serialization.
//!
//! [`MetricsSnapshot`] freezes everything the always-on aggregate layer
//! knows — counters, derived rates, log2 occupancy histograms, per-bank
//! high-water marks, CAM load factor, delay-ring utilization — together
//! with the configuration geometry needed to interpret it. The
//! [`MetricsSnapshot::to_json`] output is **byte-stable**: field order is
//! fixed, floats are printed with exactly six decimals, and a
//! `schema_version` field guards consumers against silent drift (a
//! golden-file test pins the exact bytes).
//!
//! Both engines expose `snapshot()`; because the differential suite keeps
//! their [`ControllerMetrics`] identical, the two snapshots of an
//! identical run serialize to identical bytes.
//!
//! The JSON is hand-rolled (the workspace is dependency-free by policy —
//! no serde); the grammar is small enough that the writer below is the
//! whole implementation. See `docs/OBSERVABILITY.md` for the schema.

use crate::config::VpnmConfig;
use crate::metrics::ControllerMetrics;
use crate::regulator::RegulatorMode;
use std::fmt::Write as _;
use vpnm_sim::{Cycle, FineHistogram, Histogram};

/// Bumped whenever a field is added, removed, renamed, or re-ordered in
/// the JSON output.
///
/// Version history: 1 — initial schema; 2 — added
/// `counters.cycles_skipped` (interface cycles the fast engine's
/// event-horizon skip fast-forwarded over; always 0 for the reference
/// engine and per-tick driving); 3 — added `config.channels` for the
/// multi-channel fabric ([`MetricsSnapshot::merge`]): `1` for a bare
/// controller, the channel count for a merged fabric snapshot, whose
/// per-bank high-water-mark arrays then carry `channels x banks` entries
/// grouped by channel; 4 — added the trailing `serving` member
/// ([`ServingMetrics`]): `null` for batch runs, an object with
/// end-to-end serving counters (offered/admitted/drop forensics,
/// latency-to-deterministic-return quantiles, ingress occupancy) when
/// the snapshot was taken by the `vpnm-serve` front-end; 5 — added the
/// trailing `tenants` member ([`TenantSection`]): **absent** (not
/// `null`) for single-tenant runs, so a v5 single-tenant snapshot
/// differs from v4 only in the version number; an object echoing the
/// QoS regulator configuration plus per-tenant counters
/// ([`TenantStats`]) when the run tracked more than one tenant.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 5;

/// Per-tenant counters carried in a snapshot's [`TenantSection`], one
/// entry per tenant id in `0..tenants`.
///
/// `issued`/`deferred` are filled by the fabric's ingress ledger (see
/// [`crate::regulator::TenantLedger`]): every request that reached the
/// regulator either entered the pipeline or was deferred a cycle.
/// `dropped`, `transmitted` and `latency` are filled by the serving
/// front-end, which is the only layer that can attribute losses and
/// end-to-end latency to an individual tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Requests admitted past the regulator into the pipeline.
    pub issued: u64,
    /// Requests deferred by the regulator (token budget exhausted).
    /// Deferral is back-pressure, not loss: the request may be retried
    /// the next cycle.
    pub deferred: u64,
    /// Packets of this tenant dropped at any serving-layer structure
    /// (ingress queue, flow table, flow queue, memory stall).
    pub dropped: u64,
    /// Packets of this tenant delivered back out after their
    /// deterministic delay.
    pub transmitted: u64,
    /// Latency from ingress arrival to deterministic return, in
    /// interface cycles (serving front-end only; empty for batch runs).
    pub latency: FineHistogram,
}

impl TenantStats {
    /// Mean cycles between adverse events (deferrals + drops) for this
    /// tenant over a `cycles`-long run — the per-tenant analogue of the
    /// controller-level MTS. `None` when the tenant never suffered one.
    pub fn mts(&self, cycles: u64) -> Option<f64> {
        let events = self.deferred + self.dropped;
        if events == 0 {
            None
        } else {
            Some(cycles as f64 / events as f64)
        }
    }

    /// Folds another tenant's-worth of counters into this one (counters
    /// add, latency histograms merge exactly).
    pub fn merge_from(&mut self, other: &TenantStats) {
        self.issued += other.issued;
        self.deferred += other.deferred;
        self.dropped += other.dropped;
        self.transmitted += other.transmitted;
        self.latency.merge(&other.latency);
    }
}

/// The schema-v5 `tenants` member: the regulator configuration the run
/// was executed under plus one [`TenantStats`] entry per tenant.
///
/// Only attached when a run tracks more than one tenant — single-tenant
/// snapshots omit the member entirely, keeping them byte-identical to
/// schema v4 modulo the version number.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSection {
    /// Regulator variant the run used ([`RegulatorMode::Off`] means
    /// tenants were tracked but not throttled).
    pub mode: RegulatorMode,
    /// Per-tenant budget as a fraction of aggregate bandwidth
    /// (numerator, denominator). Echoed even when `mode` is `Off`.
    pub rate: (u32, u32),
    /// Token-bucket burst depth in requests.
    pub burst: u32,
    /// Per-tenant counters, indexed by tenant id.
    pub per_tenant: Vec<TenantStats>,
}

impl TenantSection {
    /// An all-zero section for `tenants` tenants under the given
    /// regulator configuration.
    pub fn new(mode: RegulatorMode, rate: (u32, u32), burst: u32, tenants: usize) -> Self {
        TenantSection { mode, rate, burst, per_tenant: vec![TenantStats::default(); tenants] }
    }
}

/// End-to-end counters from the serving front-end (`vpnm-serve`), carried
/// on [`MetricsSnapshot`] as its trailing `serving` member.
///
/// The controller-level sections of a snapshot describe the memory system
/// in isolation; this section describes the *service* built on it — what
/// the paper's Section 2 frames as the line card's view: packets offered
/// at the interface rate, a bounded ingress queue in front of the
/// deterministic pipeline, and every loss accounted to a specific bounded
/// structure rather than silent queue growth.
///
/// Simulation-domain fields (everything except [`wall_nanos`],
/// [`mpps`] and [`producer_parks`]) are a pure function of the workload
/// seed and configuration — byte-identical across `--workers` counts and
/// across runs. The three measurement-domain fields depend on the host's
/// real clock and thread timing; [`ServingMetrics::canonical`] zeroes
/// them so determinism checks can compare everything else.
///
/// [`wall_nanos`]: ServingMetrics::wall_nanos
/// [`mpps`]: ServingMetrics::mpps
/// [`producer_parks`]: ServingMetrics::producer_parks
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingMetrics {
    /// Concurrent producer threads that fed the ingress path.
    pub producers: u32,
    /// Configured pacing rate in interface cycles per wall second;
    /// 0 when the run was unpaced (as fast as the host allows).
    pub paced_rate: u64,
    /// Configured ingress-queue bound (packets). Occupancy never exceeds
    /// it — overflow becomes `ingress_drops`, not growth.
    pub queue_bound: usize,
    /// Distinct flows admitted to the flow table.
    pub flows: u64,
    /// Packets offered by the load across all producers.
    pub offered: u64,
    /// Packets admitted past the bounded ingress queue.
    pub admitted: u64,
    /// Packets delivered back out after their deterministic delay.
    pub transmitted: u64,
    /// Tail drops at the bounded ingress queue (overload backpressure).
    pub ingress_drops: u64,
    /// Drops because the packet's per-flow buffer ring was full.
    pub flow_queue_drops: u64,
    /// Drops because the flow table was at capacity (new flow rejected).
    pub flow_table_drops: u64,
    /// Losses to memory-engine pushback (a bank structure stalled). The
    /// paper sizes the pipeline so this is astronomically rare at line
    /// rate; any non-zero value deserves forensics.
    pub stall_drops: u64,
    /// Times a producer thread blocked handing an epoch batch to the
    /// server (bounded hand-off lane full — the "park" half of
    /// reject/park backpressure). Measurement domain: depends on thread
    /// timing.
    pub producer_parks: u64,
    /// High-water mark of the transmit backlog (admitted cells waiting
    /// for their egress turn).
    pub transmit_backlog_hwm: u64,
    /// Latency from ingress arrival to deterministic return, in
    /// interface cycles, at ~6% quantile resolution
    /// ([`FineHistogram`]).
    pub latency: FineHistogram,
    /// Ingress-queue occupancy sampled once per interface cycle.
    pub ingress_occupancy: Histogram,
    /// Wall-clock duration of the run in nanoseconds. Measurement domain.
    pub wall_nanos: u64,
    /// Sustained throughput in million packets (transmitted) per wall
    /// second. Measurement domain.
    pub mpps: f64,
}

impl ServingMetrics {
    /// Returns a copy with the measurement-domain fields
    /// ([`wall_nanos`](Self::wall_nanos), [`mpps`](Self::mpps),
    /// [`producer_parks`](Self::producer_parks)) zeroed, leaving only the
    /// simulation-domain fields that must be byte-identical for a fixed
    /// seed at any `--workers` count.
    pub fn canonical(&self) -> Self {
        ServingMetrics { wall_nanos: 0, mpps: 0.0, producer_parks: 0, ..self.clone() }
    }

    /// Conservation check: every offered packet is either still admitted
    /// in-flight (`in_flight`) or accounted once — transmitted or dropped
    /// at a named bounded structure.
    pub fn conserves(&self, in_flight: u64) -> bool {
        self.offered
            == self.transmitted
                + self.ingress_drops
                + self.flow_queue_drops
                + self.flow_table_drops
                + self.stall_drops
                + in_flight
    }
}

/// A frozen copy of a controller's observable state, ready to serialize.
///
/// Capture one with [`crate::VpnmController::snapshot`] or
/// [`crate::ReferenceController::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Interface cycles elapsed when the snapshot was taken.
    pub cycles: u64,
    /// Independent memory channels represented: 1 for a single
    /// controller, `C` for a merged `C`-channel fabric snapshot.
    pub channels: u32,
    /// Bank count `B` *per channel*.
    pub banks: u32,
    /// Bank access queue entries `Q`.
    pub queue_entries: usize,
    /// Delay storage rows `K` (per bank).
    pub storage_rows: usize,
    /// Write buffer entries per bank.
    pub write_buffer_entries: usize,
    /// The deterministic delay `D` in interface cycles.
    pub delay: u64,
    /// Interface cycles covered by event-horizon skips rather than
    /// individual ticks. Pure drive-mode accounting — it lives on the
    /// snapshot, not in [`ControllerMetrics`], so metrics equality between
    /// engines (and between batched and per-tick runs) is unaffected.
    pub cycles_skipped: u64,
    /// The aggregate metrics at capture time.
    pub metrics: ControllerMetrics,
    /// Serving-side counters when this snapshot was taken by the
    /// `vpnm-serve` front-end; `None` for batch runs. Like
    /// `cycles_skipped`, this is drive-mode accounting layered above
    /// [`ControllerMetrics`], so engine equality is unaffected.
    pub serving: Option<ServingMetrics>,
    /// Per-tenant QoS section when the run tracked more than one tenant;
    /// `None` (and absent from the JSON) otherwise. Attached by the
    /// fabric's merged snapshot and enriched by the serving front-end.
    pub tenants: Option<TenantSection>,
}

impl MetricsSnapshot {
    /// Freezes `metrics` together with the geometry of `config`.
    ///
    /// `cycles_skipped` is the engine's skip accounting; engines without
    /// an event-horizon skip (the reference) pass 0.
    pub fn capture(
        config: &VpnmConfig,
        delay: u64,
        now: Cycle,
        cycles_skipped: u64,
        metrics: &ControllerMetrics,
    ) -> Self {
        MetricsSnapshot {
            cycles: now.as_u64(),
            channels: 1,
            banks: config.banks,
            queue_entries: config.queue_entries,
            storage_rows: config.storage_rows,
            write_buffer_entries: config.write_buffer_capacity(),
            delay,
            cycles_skipped,
            metrics: metrics.clone(),
            serving: None,
            tenants: None,
        }
    }

    /// Attaches a serving-side section (schema v4 `serving` member) —
    /// used by the serving front-end after merging its fabric's
    /// per-channel snapshots.
    pub fn with_serving(mut self, serving: ServingMetrics) -> Self {
        self.serving = Some(serving);
        self
    }

    /// Attaches a per-tenant QoS section (schema v5 `tenants` member) —
    /// used by the fabric's merged snapshot when a run tracks more than
    /// one tenant, and enriched in place by the serving front-end.
    pub fn with_tenants(mut self, tenants: TenantSection) -> Self {
        self.tenants = Some(tenants);
        self
    }

    /// Merges per-channel snapshots of one fabric run into a single
    /// fabric-level snapshot.
    ///
    /// Channels tick in lockstep and share one geometry, so `cycles`,
    /// `banks`, `queue_entries`, `storage_rows`, `write_buffer_entries`
    /// and `delay` must agree across `parts`; `channels` and
    /// `cycles_skipped` add, and the metrics fold via
    /// [`ControllerMetrics::merge_from`] (counters add, histograms merge,
    /// per-bank high-water marks concatenate in channel order). Merging a
    /// single snapshot is the identity apart from nothing at all — which
    /// is exactly what makes a one-channel fabric's snapshot byte-identical
    /// to the bare controller's.
    ///
    /// # Errors
    ///
    /// Returns a message when `parts` is empty or the parts disagree on
    /// cycles or geometry.
    pub fn merge(parts: &[MetricsSnapshot]) -> Result<MetricsSnapshot, String> {
        let first = parts.first().ok_or("cannot merge zero snapshots")?;
        let mut merged = MetricsSnapshot {
            cycles: first.cycles,
            channels: 0,
            banks: first.banks,
            queue_entries: first.queue_entries,
            storage_rows: first.storage_rows,
            write_buffer_entries: first.write_buffer_entries,
            delay: first.delay,
            cycles_skipped: 0,
            metrics: ControllerMetrics::new(),
            // Serving counters are per-server, not per-channel: a true
            // multi-channel merge cannot attribute them, so they only
            // survive the identity (single-part) merge. The serving
            // layer attaches its section *after* merging its fabric.
            serving: if parts.len() == 1 { first.serving.clone() } else { None },
            // Same story for the tenant section: the ledger lives at the
            // fabric ingress, above the channels, so the fabric attaches
            // it after merging its per-channel snapshots.
            tenants: if parts.len() == 1 { first.tenants.clone() } else { None },
        };
        for (i, p) in parts.iter().enumerate() {
            if p.cycles != first.cycles || p.delay != first.delay {
                return Err(format!(
                    "snapshot {i} disagrees on cycles/delay — not one lockstep run"
                ));
            }
            if (p.banks, p.queue_entries, p.storage_rows, p.write_buffer_entries)
                != (
                    first.banks,
                    first.queue_entries,
                    first.storage_rows,
                    first.write_buffer_entries,
                )
            {
                return Err(format!("snapshot {i} has a different geometry"));
            }
            merged.channels += p.channels;
            merged.cycles_skipped += p.cycles_skipped;
            merged.metrics.merge_from(&p.metrics);
        }
        Ok(merged)
    }

    /// Serializes to the stable JSON schema (version
    /// [`SNAPSHOT_SCHEMA_VERSION`]), pretty-printed with two-space
    /// indents and a trailing newline.
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", SNAPSHOT_SCHEMA_VERSION);
        let _ = writeln!(s, "  \"cycles\": {},", self.cycles);
        s.push_str("  \"config\": {\n");
        let _ = writeln!(s, "    \"channels\": {},", self.channels);
        let _ = writeln!(s, "    \"banks\": {},", self.banks);
        let _ = writeln!(s, "    \"queue_entries\": {},", self.queue_entries);
        let _ = writeln!(s, "    \"storage_rows\": {},", self.storage_rows);
        let _ = writeln!(s, "    \"write_buffer_entries\": {},", self.write_buffer_entries);
        let _ = writeln!(s, "    \"delay\": {}", self.delay);
        s.push_str("  },\n");
        s.push_str("  \"counters\": {\n");
        let _ = writeln!(s, "    \"reads_accepted\": {},", m.reads_accepted);
        let _ = writeln!(s, "    \"reads_merged\": {},", m.reads_merged);
        let _ = writeln!(s, "    \"writes_accepted\": {},", m.writes_accepted);
        let _ = writeln!(s, "    \"responses\": {},", m.responses);
        let _ = writeln!(s, "    \"delay_storage_stalls\": {},", m.delay_storage_stalls);
        let _ = writeln!(s, "    \"access_queue_stalls\": {},", m.access_queue_stalls);
        let _ = writeln!(s, "    \"write_buffer_stalls\": {},", m.write_buffer_stalls);
        let _ = writeln!(s, "    \"malformed_rejections\": {},", m.malformed_rejections);
        let _ = writeln!(s, "    \"deadline_misses\": {},", m.deadline_misses);
        let _ = writeln!(s, "    \"cycles_skipped\": {},", self.cycles_skipped);
        match m.first_stall_at {
            Some(c) => {
                let _ = writeln!(s, "    \"first_stall_at\": {}", c.as_u64());
            }
            None => s.push_str("    \"first_stall_at\": null\n"),
        }
        s.push_str("  },\n");
        s.push_str("  \"rates\": {\n");
        let _ = writeln!(s, "    \"merge_rate\": {:.6},", m.merge_rate());
        let _ = writeln!(s, "    \"stall_rate\": {:.6},", m.stall_rate());
        let _ = writeln!(s, "    \"deadline_miss_rate\": {:.6}", m.deadline_miss_rate());
        s.push_str("  },\n");
        write_dist(&mut s, "queue_depth", &m.queue_depth_hist, true);
        write_dist(&mut s, "storage_occupancy", &m.storage_occupancy_hist, true);
        s.push_str("  \"high_water_marks\": {\n");
        write_u32_array(&mut s, "bank_queue_hwm", &m.bank_queue_hwm);
        s.push_str(",\n");
        write_u32_array(&mut s, "bank_storage_hwm", &m.bank_storage_hwm);
        s.push_str(",\n");
        write_u32_array(&mut s, "bank_write_hwm", &m.bank_write_hwm);
        s.push_str(",\n");
        let _ = write!(s, "    \"outstanding\": {}", m.outstanding_hwm);
        s.push_str("\n  },\n");
        let _ = writeln!(
            s,
            "  \"cam_load_factor\": {:.6},",
            m.peak_storage_load_factor(self.storage_rows)
        );
        // Each channel carries its own D-deep delay ring, so the merged
        // capacity is channels x delay (identical to `delay` for a bare
        // controller).
        let _ = writeln!(
            s,
            "  \"delay_ring_utilization\": {:.6},",
            m.delay_ring_utilization(self.delay * u64::from(self.channels.max(1)))
        );
        let more = self.tenants.is_some();
        match &self.serving {
            None => {
                s.push_str(if more { "  \"serving\": null,\n" } else { "  \"serving\": null\n" })
            }
            Some(sv) => write_serving(&mut s, sv, more),
        }
        if let Some(t) = &self.tenants {
            write_tenants(&mut s, t, self.cycles);
        }
        s.push_str("}\n");
        s
    }
}

/// Writes the schema-v4 `serving` member (`null` for batch runs;
/// `trailing_comma` when a v5 `tenants` member follows).
fn write_serving(s: &mut String, sv: &ServingMetrics, trailing_comma: bool) {
    s.push_str("  \"serving\": {\n");
    let _ = writeln!(s, "    \"producers\": {},", sv.producers);
    let _ = writeln!(s, "    \"paced_rate\": {},", sv.paced_rate);
    let _ = writeln!(s, "    \"queue_bound\": {},", sv.queue_bound);
    let _ = writeln!(s, "    \"flows\": {},", sv.flows);
    let _ = writeln!(s, "    \"offered\": {},", sv.offered);
    let _ = writeln!(s, "    \"admitted\": {},", sv.admitted);
    let _ = writeln!(s, "    \"transmitted\": {},", sv.transmitted);
    s.push_str("    \"drops\": {\n");
    let _ = writeln!(s, "      \"ingress\": {},", sv.ingress_drops);
    let _ = writeln!(s, "      \"flow_queue\": {},", sv.flow_queue_drops);
    let _ = writeln!(s, "      \"flow_table\": {},", sv.flow_table_drops);
    let _ = writeln!(s, "      \"memory_stall\": {}", sv.stall_drops);
    s.push_str("    },\n");
    let _ = writeln!(s, "    \"producer_parks\": {},", sv.producer_parks);
    let _ = writeln!(s, "    \"transmit_backlog_hwm\": {},", sv.transmit_backlog_hwm);
    s.push_str("    \"latency_cycles\": {\n");
    let _ = writeln!(s, "      \"samples\": {},", sv.latency.total());
    let _ = writeln!(s, "      \"mean\": {:.6},", sv.latency.mean());
    let _ = writeln!(s, "      \"p50\": {},", sv.latency.quantile(0.5).unwrap_or(0));
    let _ = writeln!(s, "      \"p99\": {},", sv.latency.quantile(0.99).unwrap_or(0));
    let _ = writeln!(s, "      \"p999\": {},", sv.latency.quantile(0.999).unwrap_or(0));
    let _ = writeln!(s, "      \"max\": {},", sv.latency.max().unwrap_or(0));
    s.push_str("      \"buckets\": ");
    write_bucket_pairs(s, sv.latency.iter());
    s.push('\n');
    s.push_str("    },\n");
    s.push_str("    \"ingress_occupancy\": {\n");
    let _ = writeln!(s, "      \"samples\": {},", sv.ingress_occupancy.total());
    let _ = writeln!(s, "      \"mean\": {:.6},", sv.ingress_occupancy.mean());
    let _ = writeln!(s, "      \"max\": {},", sv.ingress_occupancy.max().unwrap_or(0));
    s.push_str("      \"log2_buckets\": ");
    write_bucket_pairs(s, sv.ingress_occupancy.iter());
    s.push('\n');
    s.push_str("    },\n");
    let _ = writeln!(s, "    \"wall_nanos\": {},", sv.wall_nanos);
    let _ = writeln!(s, "    \"mpps\": {:.6}", sv.mpps);
    s.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

/// Writes the schema-v5 `tenants` member. Only called when the section
/// exists — single-tenant snapshots omit the member entirely.
fn write_tenants(s: &mut String, t: &TenantSection, cycles: u64) {
    s.push_str("  \"tenants\": {\n");
    let _ = writeln!(s, "    \"mode\": \"{}\",", t.mode.as_str());
    let _ = writeln!(s, "    \"rate\": [{}, {}],", t.rate.0, t.rate.1);
    let _ = writeln!(s, "    \"burst\": {},", t.burst);
    s.push_str("    \"per_tenant\": [\n");
    let last = t.per_tenant.len().saturating_sub(1);
    for (id, ts) in t.per_tenant.iter().enumerate() {
        s.push_str("      {\n");
        let _ = writeln!(s, "        \"tenant\": {id},");
        let _ = writeln!(s, "        \"issued\": {},", ts.issued);
        let _ = writeln!(s, "        \"deferred\": {},", ts.deferred);
        let _ = writeln!(s, "        \"dropped\": {},", ts.dropped);
        let _ = writeln!(s, "        \"transmitted\": {},", ts.transmitted);
        match ts.mts(cycles) {
            Some(mts) => {
                let _ = writeln!(s, "        \"mts\": {mts:.6},");
            }
            None => s.push_str("        \"mts\": null,\n"),
        }
        s.push_str("        \"latency_cycles\": {\n");
        let _ = writeln!(s, "          \"samples\": {},", ts.latency.total());
        let _ = writeln!(s, "          \"mean\": {:.6},", ts.latency.mean());
        let _ = writeln!(s, "          \"p50\": {},", ts.latency.quantile(0.5).unwrap_or(0));
        let _ = writeln!(s, "          \"p99\": {},", ts.latency.quantile(0.99).unwrap_or(0));
        let _ = writeln!(s, "          \"max\": {},", ts.latency.max().unwrap_or(0));
        s.push_str("          \"buckets\": ");
        write_bucket_pairs(s, ts.latency.iter());
        s.push('\n');
        s.push_str("        }\n");
        s.push_str(if id == last { "      }\n" } else { "      },\n" });
    }
    s.push_str("    ]\n");
    s.push_str("  }\n");
}

/// Writes `[[lower_bound, count], …]` with no surrounding whitespace.
fn write_bucket_pairs(s: &mut String, pairs: impl Iterator<Item = (u64, u64)>) {
    s.push('[');
    let mut first = true;
    for (lo, count) in pairs {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "[{lo}, {count}]");
    }
    s.push(']');
}

/// Writes one `"name": {mean, max, buckets: [[lower_bound, count], …]}`
/// distribution object (two-space top-level member).
fn write_dist(s: &mut String, name: &str, hist: &Histogram, trailing_comma: bool) {
    let _ = writeln!(s, "  \"{name}\": {{");
    let _ = writeln!(s, "    \"samples\": {},", hist.total());
    let _ = writeln!(s, "    \"mean\": {:.6},", hist.mean());
    let _ = writeln!(s, "    \"max\": {},", hist.max().unwrap_or(0));
    s.push_str("    \"log2_buckets\": [");
    let mut first = true;
    for (lo, count) in hist.iter() {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "[{lo}, {count}]");
    }
    s.push_str("]\n");
    s.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

fn write_u32_array(s: &mut String, name: &str, values: &[u32]) {
    let _ = write!(s, "    \"{name}\": [");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_self_consistent() {
        let cfg = VpnmConfig::small_test();
        let mut m = ControllerMetrics::with_banks(cfg.banks as usize);
        m.reads_accepted = 10;
        m.reads_merged = 2;
        m.responses = 10;
        m.sample_cycle(3, 12);
        m.sample_cycle(1, 5);
        m.note_bank_storage(0, 6);
        m.note_outstanding(4);
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(100), 25, &m);
        let a = snap.to_json();
        let b = snap.clone().to_json();
        assert_eq!(a, b, "serialization must be pure");
        assert!(a.contains("\"schema_version\": 5"));
        assert!(a.contains("\"serving\": null"));
        assert!(!a.contains("\"tenants\""), "single-tenant snapshots omit the member: {a}");
        assert!(a.contains("\"channels\": 1"));
        assert!(a.contains("\"cycles_skipped\": 25"));
        assert!(a.contains("\"reads_accepted\": 10"));
        assert!(a.contains("\"merge_rate\": 0.200000"));
        assert!(a.contains("\"first_stall_at\": null"));
        assert!(a.contains("\"bank_storage_hwm\": [6, 0, 0, 0]"));
        // 6 rows live of K=8 → load factor 0.75
        assert!(a.contains("\"cam_load_factor\": 0.750000"), "{a}");
        assert!(a.contains("\"delay_ring_utilization\": 0.100000"), "{a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn first_stall_serializes_when_present() {
        let cfg = VpnmConfig::small_test();
        let mut m = ControllerMetrics::with_banks(cfg.banks as usize);
        m.record_stall(crate::request::StallKind::AccessQueue, Cycle::new(17));
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(20), 0, &m);
        assert!(snap.to_json().contains("\"first_stall_at\": 17"));
    }

    #[test]
    fn merge_of_one_is_identity_and_of_two_adds() {
        let cfg = VpnmConfig::small_test();
        let mut m0 = ControllerMetrics::with_banks(cfg.banks as usize);
        m0.reads_accepted = 8;
        m0.responses = 8;
        m0.sample_cycle(2, 10);
        m0.note_bank_storage(1, 3);
        m0.note_outstanding(4);
        let s0 = MetricsSnapshot::capture(&cfg, 40, Cycle::new(200), 5, &m0);

        let only = MetricsSnapshot::merge(std::slice::from_ref(&s0)).unwrap();
        assert_eq!(only, s0, "single-channel merge is the identity");
        assert_eq!(only.to_json(), s0.to_json());

        let mut m1 = ControllerMetrics::with_banks(cfg.banks as usize);
        m1.reads_accepted = 2;
        m1.access_queue_stalls = 1;
        m1.first_stall_at = Some(Cycle::new(50));
        m1.sample_cycle(1, 4);
        m1.note_outstanding(1);
        let s1 = MetricsSnapshot::capture(&cfg, 40, Cycle::new(200), 0, &m1);

        let both = MetricsSnapshot::merge(&[s0.clone(), s1]).unwrap();
        assert_eq!(both.channels, 2);
        assert_eq!(both.cycles_skipped, 5);
        assert_eq!(both.metrics.reads_accepted, 10);
        assert_eq!(both.metrics.first_stall_at, Some(Cycle::new(50)));
        assert_eq!(both.metrics.bank_storage_hwm.len(), 2 * cfg.banks as usize);
        let json = both.to_json();
        assert!(json.contains("\"channels\": 2"), "{json}");
        // outstanding_hwm 5 over 2 channels x D=40 -> 0.0625
        assert!(json.contains("\"delay_ring_utilization\": 0.062500"), "{json}");

        // Mismatched runs are refused.
        let late = MetricsSnapshot::capture(&cfg, 40, Cycle::new(999), 0, &m1);
        assert!(MetricsSnapshot::merge(&[s0, late]).is_err());
        assert!(MetricsSnapshot::merge(&[]).is_err());
    }

    fn sample_serving() -> ServingMetrics {
        let mut latency = FineHistogram::new();
        for v in [52u64, 53, 53, 60, 500] {
            latency.record(v);
        }
        let mut occ = Histogram::new();
        occ.record_n(0, 90);
        occ.record_n(3, 10);
        ServingMetrics {
            producers: 4,
            paced_rate: 0,
            queue_bound: 64,
            flows: 3,
            offered: 8,
            admitted: 6,
            transmitted: 5,
            ingress_drops: 1,
            flow_queue_drops: 1,
            flow_table_drops: 0,
            stall_drops: 0,
            producer_parks: 2,
            transmit_backlog_hwm: 3,
            latency,
            ingress_occupancy: occ,
            wall_nanos: 1_000_000,
            mpps: 5.0,
        }
    }

    #[test]
    fn serving_section_serializes_and_canonicalizes() {
        let cfg = VpnmConfig::small_test();
        let m = ControllerMetrics::with_banks(cfg.banks as usize);
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(100), 0, &m)
            .with_serving(sample_serving());
        let json = snap.to_json();
        assert!(json.contains("\"serving\": {"), "{json}");
        assert!(json.contains("\"producers\": 4"), "{json}");
        assert!(json.contains("\"ingress\": 1"), "{json}");
        assert!(json.contains("\"p50\": 53"), "{json}");
        assert!(json.contains("\"mpps\": 5.000000"), "{json}");
        assert!(json.ends_with("  }\n}\n"), "{json}");
        // Canonicalization zeroes exactly the measurement-domain fields.
        let canon = snap.serving.as_ref().unwrap().canonical();
        assert_eq!(canon.wall_nanos, 0);
        assert_eq!(canon.mpps, 0.0);
        assert_eq!(canon.producer_parks, 0);
        assert_eq!(canon.offered, 8);
        assert_eq!(canon.latency, snap.serving.as_ref().unwrap().latency);
    }

    #[test]
    fn serving_conservation_check() {
        let sv = sample_serving();
        // 8 offered = 5 transmitted + 1 ingress + 1 flow_queue + 1 in flight
        assert!(sv.conserves(1));
        assert!(!sv.conserves(0));
    }

    #[test]
    fn merge_keeps_serving_only_for_identity() {
        let cfg = VpnmConfig::small_test();
        let m = ControllerMetrics::with_banks(cfg.banks as usize);
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(100), 0, &m)
            .with_serving(sample_serving());
        let one = MetricsSnapshot::merge(std::slice::from_ref(&snap)).unwrap();
        assert_eq!(one, snap);
        let two = MetricsSnapshot::merge(&[snap.clone(), snap]).unwrap();
        assert_eq!(two.serving, None);
    }

    #[test]
    fn tenant_section_serializes_after_serving() {
        let cfg = VpnmConfig::small_test();
        let m = ControllerMetrics::with_banks(cfg.banks as usize);
        let mut section = TenantSection::new(RegulatorMode::PerBank, (1, 8), 16, 2);
        section.per_tenant[0].issued = 90;
        section.per_tenant[0].transmitted = 88;
        section.per_tenant[1].issued = 40;
        section.per_tenant[1].deferred = 60;
        section.per_tenant[1].dropped = 4;
        section.per_tenant[1].latency.record(52);
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(128), 0, &m).with_tenants(section);
        let json = snap.to_json();
        // `serving` keeps its slot (with a comma) and `tenants` trails it.
        assert!(json.contains("\"serving\": null,\n  \"tenants\": {"), "{json}");
        assert!(json.contains("\"mode\": \"per-bank\""), "{json}");
        assert!(json.contains("\"rate\": [1, 8]"), "{json}");
        assert!(json.contains("\"issued\": 90"), "{json}");
        // Tenant 0 never deferred or dropped → mts is null; tenant 1 had
        // 64 events over 128 cycles → mts 2.
        assert!(json.contains("\"mts\": null"), "{json}");
        assert!(json.contains("\"mts\": 2.000000"), "{json}");
        assert!(json.ends_with("  }\n}\n"), "{json}");
        // Identity merge keeps the section; a real merge drops it (the
        // fabric re-attaches its ledger afterwards).
        let one = MetricsSnapshot::merge(std::slice::from_ref(&snap)).unwrap();
        assert_eq!(one, snap);
        let two = MetricsSnapshot::merge(&[snap.clone(), snap]).unwrap();
        assert_eq!(two.tenants, None);
    }

    #[test]
    fn tenant_stats_mts_and_merge() {
        let mut a = TenantStats { issued: 10, deferred: 3, dropped: 1, ..Default::default() };
        assert_eq!(a.mts(400), Some(100.0));
        assert_eq!(TenantStats::default().mts(400), None);
        let mut b = TenantStats { issued: 5, deferred: 1, ..Default::default() };
        b.latency.record(52);
        a.merge_from(&b);
        assert_eq!(a.issued, 15);
        assert_eq!(a.deferred, 4);
        assert_eq!(a.latency.total(), 1);
    }

    #[test]
    fn bucket_pairs_use_lower_bounds() {
        let cfg = VpnmConfig::small_test();
        let mut m = ControllerMetrics::with_banks(cfg.banks as usize);
        m.sample_cycle(0, 0); // bucket 0
        m.sample_cycle(5, 100); // depth bucket [4,8), storage bucket [64,128)
        let snap = MetricsSnapshot::capture(&cfg, 40, Cycle::new(2), 0, &m);
        let json = snap.to_json();
        assert!(json.contains("[0, 1], [4, 1]"), "{json}");
        assert!(json.contains("[64, 1]"), "{json}");
    }
}
