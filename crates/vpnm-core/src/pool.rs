//! A persistent worker pool with per-worker bounded SPSC lanes.
//!
//! The parallel [`crate::VpnmFabric`] execution mode needs to hand each
//! channel's epoch of work to a dedicated thread every few thousand
//! simulated cycles. Spawning scoped threads per epoch (the
//! shard-and-collect pattern the measurement harnesses use) would pay a
//! thread launch per epoch; this pool generalizes that pattern into a
//! fixed set of **persistent** workers created once and fed through
//! bounded rendezvous channels, so the steady-state cost of an epoch
//! hand-off is two queue operations per worker.
//!
//! The pool is deliberately minimal and fully deterministic from the
//! caller's point of view:
//!
//! * Each worker owns one **bounded SPSC job lane** (capacity 1) and one
//!   result lane. [`WorkerPool::submit`] enqueues onto a specific
//!   worker's lane; [`WorkerPool::recv`] blocks on that worker's result.
//!   Work never migrates between workers, so a caller that partitions
//!   work by index gets the same partition every epoch (cache affinity)
//!   and results arrive exactly where they are awaited — scheduling
//!   cannot reorder anything the caller observes.
//! * Jobs are values (`J: Send`) and results are values (`R: Send`);
//!   workers share no state with the caller. Determinism is then the
//!   caller's job-construction invariant, not a synchronization property.
//!
//! The pool is engine-agnostic (any `Fn(worker, J) -> R`), so the
//! upcoming serving front-end can reuse it for request-shard workers.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// One worker's communication lanes.
struct Lane<J, R> {
    jobs: SyncSender<J>,
    results: Receiver<R>,
}

/// A fixed set of persistent worker threads, each fed through its own
/// bounded SPSC lane. See the [module docs](self) for the design.
pub struct WorkerPool<J, R> {
    lanes: Vec<Lane<J, R>>,
    threads: Vec<JoinHandle<()>>,
}

impl<J, R> std::fmt::Debug for WorkerPool<J, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.lanes.len()).finish()
    }
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawns `workers` persistent threads, each running `f(worker_index,
    /// job)` for every job submitted to its lane until the pool is
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new<F>(workers: usize, f: F) -> Self
    where
        F: Fn(usize, J) -> R + Send + Clone + 'static,
    {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let mut lanes = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            // Rendezvous-adjacent lanes: capacity 1 keeps at most one
            // epoch of work in flight per worker, which bounds memory and
            // means `submit` back-pressures instead of queueing unboundedly.
            let (job_tx, job_rx) = sync_channel::<J>(1);
            let (result_tx, result_rx) = sync_channel::<R>(1);
            let f = f.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("vpnm-worker-{w}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            // A send failure means the pool was dropped
                            // mid-epoch; the worker just winds down.
                            if result_tx.send(f(w, job)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
            lanes.push(Lane { jobs: job_tx, results: result_rx });
        }
        WorkerPool { lanes, threads }
    }
}

// Only spawning (`new`) needs the `Send` bounds; the lane operations are
// plain channel sends/receives, and keeping them unbounded lets generic
// callers hold an `Option<WorkerPool<…>>` without infecting their own
// type parameters (a pool can only be *constructed* with `Send` payloads).
impl<J, R> WorkerPool<J, R> {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// Enqueues `job` on `worker`'s lane, blocking while the lane is full
    /// (at most one job may be in flight per worker).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or the worker thread died (a
    /// panic inside a job).
    pub fn submit(&self, worker: usize, job: J) {
        self.lanes[worker].jobs.send(job).expect("worker thread alive");
    }

    /// Blocks until `worker` finishes its oldest in-flight job and
    /// returns the result.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or the worker thread died (a
    /// panic inside a job).
    pub fn recv(&self, worker: usize) -> R {
        self.lanes[worker].results.recv().expect("worker thread alive")
    }
}

impl<J, R> Drop for WorkerPool<J, R> {
    fn drop(&mut self) {
        // Closing the job lanes ends each worker's recv loop; joining
        // bounds the pool's thread lifetime to the pool value itself.
        self.lanes.clear();
        for t in self.threads.drain(..) {
            // A worker that panicked already surfaced its panic to the
            // caller at recv time; don't double-panic during drop.
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_round_trip_on_their_own_lane() {
        let pool = WorkerPool::new(3, |w, x: u64| (w, x * 2));
        for w in 0..3 {
            pool.submit(w, w as u64 + 10);
        }
        // Results arrive on the lane the job was submitted to, tagged
        // with that worker's index.
        for w in 0..3 {
            assert_eq!(pool.recv(w), (w, (w as u64 + 10) * 2));
        }
    }

    #[test]
    fn workers_process_many_epochs() {
        let pool = WorkerPool::new(2, |_, xs: Vec<u64>| xs.iter().sum::<u64>());
        for epoch in 0..50u64 {
            pool.submit(0, vec![epoch, 1]);
            pool.submit(1, vec![epoch, 2]);
            assert_eq!(pool.recv(0), epoch + 1);
            assert_eq!(pool.recv(1), epoch + 2);
        }
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn drop_joins_all_workers() {
        // If drop failed to close lanes and join, this would leak threads;
        // the test passing (and not hanging) is the assertion.
        let pool = WorkerPool::new(4, |_, x: u8| x);
        pool.submit(2, 9);
        assert_eq!(pool.recv(2), 9);
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_a_caller_bug() {
        let _ = WorkerPool::<u8, u8>::new(0, |_, x| x);
    }
}
