//! The controller's universal hash unit (`HU` in paper Figure 2).
//!
//! [`HashEngine`] is a closed enum over the hash families provided by
//! `vpnm-hash`, so configs remain plain data and the controller avoids
//! generic/dynamic dispatch in its hot path.

use std::fmt;
use vpnm_hash::{
    AffinePermutation, BankHasher, H3Hash, LowBitsHash, MultiplyShiftHash, TabulationHash,
};

/// Which universal hash family the controller uses for its bank mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashKind {
    /// Carter–Wegman H3 (XOR network) — the hardware-canonical choice and
    /// the default.
    H3,
    /// Dietzfelbinger multiply–shift.
    MultiplyShift,
    /// Simple tabulation.
    Tabulation,
    /// Invertible affine GF(2) permutation (bijective placement).
    Affine,
    /// **Not universal**: plain low-order address bits, as a conventional
    /// controller would use. Provided for the adversary experiments that
    /// show why randomization is necessary.
    LowBits,
}

impl HashKind {
    /// Pipeline latency of a hardware realization, in interface cycles.
    pub fn latency_cycles(self, addr_bits: u32) -> u64 {
        let xor_depth = u64::from(32 - (addr_bits.max(2) - 1).leading_zeros());
        match self {
            HashKind::H3 | HashKind::Affine => xor_depth,
            HashKind::MultiplyShift => 3,
            HashKind::Tabulation => 2,
            HashKind::LowBits => 0,
        }
    }
}

impl fmt::Display for HashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HashKind::H3 => "h3",
            HashKind::MultiplyShift => "multiply-shift",
            HashKind::Tabulation => "tabulation",
            HashKind::Affine => "affine-permutation",
            HashKind::LowBits => "low-bits",
        };
        f.write_str(s)
    }
}

/// A keyed instance of one of the [`HashKind`] families.
#[derive(Debug, Clone)]
pub enum HashEngine {
    /// See [`HashKind::H3`].
    H3(H3Hash),
    /// See [`HashKind::MultiplyShift`].
    MultiplyShift(MultiplyShiftHash),
    /// See [`HashKind::Tabulation`].
    Tabulation(TabulationHash),
    /// See [`HashKind::Affine`].
    Affine(AffinePermutation),
    /// See [`HashKind::LowBits`].
    LowBits(LowBitsHash),
}

impl HashEngine {
    /// Keys an engine of the requested family from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate dimensions (`bank_bits == 0`,
    /// `bank_bits >= addr_bits`).
    pub fn from_seed(kind: HashKind, addr_bits: u32, bank_bits: u32, seed: u64) -> Self {
        assert!(bank_bits >= 1 && bank_bits < addr_bits, "bank_bits must be in 1..addr_bits");
        match kind {
            HashKind::H3 => HashEngine::H3(H3Hash::from_seed(addr_bits, bank_bits, seed)),
            HashKind::MultiplyShift => {
                HashEngine::MultiplyShift(MultiplyShiftHash::from_seed(bank_bits, seed))
            }
            HashKind::Tabulation => {
                HashEngine::Tabulation(TabulationHash::from_seed(bank_bits, seed))
            }
            HashKind::Affine => {
                HashEngine::Affine(AffinePermutation::from_seed(addr_bits, bank_bits, seed))
            }
            HashKind::LowBits => HashEngine::LowBits(LowBitsHash::new(bank_bits)),
        }
    }

    /// Hashes a batch of addresses: `out[i] = bank_of(addrs[i])`.
    ///
    /// The enum is matched **once** for the whole batch, so the per-family
    /// inner loop runs without per-address dispatch — this is the batched
    /// ingest path's front door ([`H3Hash`] additionally hoists its
    /// byte-fold tables across the batch). Bit-identical to calling
    /// [`BankHasher::bank_of`] per element.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` and `out` differ in length.
    pub fn hash_batch(&self, addrs: &[u64], out: &mut [u32]) {
        match self {
            HashEngine::H3(h) => h.bank_of_batch(addrs, out),
            HashEngine::MultiplyShift(h) => h.bank_of_batch(addrs, out),
            HashEngine::Tabulation(h) => h.bank_of_batch(addrs, out),
            HashEngine::Affine(h) => h.bank_of_batch(addrs, out),
            HashEngine::LowBits(h) => h.bank_of_batch(addrs, out),
        }
    }

    /// The family of this engine.
    pub fn kind(&self) -> HashKind {
        match self {
            HashEngine::H3(_) => HashKind::H3,
            HashEngine::MultiplyShift(_) => HashKind::MultiplyShift,
            HashEngine::Tabulation(_) => HashKind::Tabulation,
            HashEngine::Affine(_) => HashKind::Affine,
            HashEngine::LowBits(_) => HashKind::LowBits,
        }
    }
}

impl BankHasher for HashEngine {
    fn num_banks(&self) -> u32 {
        match self {
            HashEngine::H3(h) => h.num_banks(),
            HashEngine::MultiplyShift(h) => h.num_banks(),
            HashEngine::Tabulation(h) => h.num_banks(),
            HashEngine::Affine(h) => h.num_banks(),
            HashEngine::LowBits(h) => h.num_banks(),
        }
    }

    fn bank_of(&self, addr: u64) -> u32 {
        match self {
            HashEngine::H3(h) => h.bank_of(addr),
            HashEngine::MultiplyShift(h) => h.bank_of(addr),
            HashEngine::Tabulation(h) => h.bank_of(addr),
            HashEngine::Affine(h) => h.bank_of(addr),
            HashEngine::LowBits(h) => h.bank_of(addr),
        }
    }

    fn bank_of_batch(&self, addrs: &[u64], out: &mut [u32]) {
        self.hash_batch(addrs, out)
    }

    fn latency_cycles(&self) -> u64 {
        match self {
            HashEngine::H3(h) => h.latency_cycles(),
            HashEngine::MultiplyShift(h) => h.latency_cycles(),
            HashEngine::Tabulation(h) => h.latency_cycles(),
            HashEngine::Affine(h) => h.latency_cycles(),
            HashEngine::LowBits(h) => h.latency_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct_and_map_in_range() {
        for kind in [
            HashKind::H3,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::Affine,
            HashKind::LowBits,
        ] {
            let e = HashEngine::from_seed(kind, 20, 4, 99);
            assert_eq!(e.kind(), kind);
            assert_eq!(e.num_banks(), 16);
            for a in (0..1000u64).step_by(17) {
                assert!(e.bank_of(a) < 16, "{kind} out of range");
            }
        }
    }

    #[test]
    fn latency_matches_kind_helper() {
        for kind in [
            HashKind::H3,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::Affine,
            HashKind::LowBits,
        ] {
            let e = HashEngine::from_seed(kind, 32, 5, 1);
            assert_eq!(e.latency_cycles(), kind.latency_cycles(32), "{kind}");
        }
    }

    #[test]
    fn hash_batch_matches_scalar_for_all_kinds() {
        for kind in [
            HashKind::H3,
            HashKind::MultiplyShift,
            HashKind::Tabulation,
            HashKind::Affine,
            HashKind::LowBits,
        ] {
            let e = HashEngine::from_seed(kind, 24, 4, 321);
            let addrs: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut out = vec![0u32; addrs.len()];
            e.hash_batch(&addrs, &mut out);
            for (&a, &b) in addrs.iter().zip(&out) {
                assert_eq!(b, e.bank_of(a), "{kind} addr {a:#x}");
            }
        }
    }

    #[test]
    fn low_bits_is_deterministic_modulo() {
        let e = HashEngine::from_seed(HashKind::LowBits, 16, 3, 0);
        for a in 0..32u64 {
            assert_eq!(e.bank_of(a), (a % 8) as u32);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(HashKind::H3.to_string(), "h3");
        assert_eq!(HashKind::LowBits.to_string(), "low-bits");
    }
}
