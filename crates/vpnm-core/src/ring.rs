//! Shared power-of-two ring primitives.
//!
//! Two users, one ring discipline: the controller's
//! [`crate::access_queue::BankAccessQueue`] (single-threaded, paper
//! Figure 3) and the serving front door's producer lanes (lock-free
//! SPSC) both index a power-of-two slot array with a cached mask and
//! unchecked, mask-reduced access. This module is that common core:
//!
//! * [`RingSlots`] — the bare slot array + mask, for single-threaded
//!   FIFOs that keep their own head/len bookkeeping.
//! * [`spsc`] — a bounded single-producer single-consumer channel over
//!   the same slot discipline, with cache-line-padded head/tail indices
//!   and spin-then-yield blocking that counts producer parks.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A power-of-two slot array with a cached index mask and unchecked,
/// mask-reduced access — the storage half of every ring in the
/// workspace. Callers keep their own head/tail bookkeeping and promise
/// to reduce indices by [`RingSlots::mask`] before access.
///
/// ```
/// use vpnm_core::ring::RingSlots;
/// let ring = RingSlots::from_fn(3, |i| i as u32); // rounds up to 4 slots
/// assert_eq!(ring.mask(), 3);
/// assert_eq!(*ring.get(5 & ring.mask()), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingSlots<T> {
    slots: Box<[T]>,
    /// `slots.len() - 1`, cached so hot paths don't re-derive it from
    /// the box's fat pointer.
    mask: u32,
}

impl<T> RingSlots<T> {
    /// Allocates at least `min_slots` slots, rounded up to a power of
    /// two, each initialized by `init(slot_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_slots == 0` or the rounded size exceeds `u32`
    /// range.
    pub fn from_fn(min_slots: usize, init: impl FnMut(usize) -> T) -> Self {
        assert!(min_slots > 0, "ring needs at least one slot");
        assert!(min_slots <= u32::MAX as usize / 2, "ring capacity too large");
        let n = min_slots.next_power_of_two();
        RingSlots { slots: (0..n).map(init).collect(), mask: n as u32 - 1 }
    }

    /// The index mask (`slot count - 1`).
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Number of slots (a power of two, `mask + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Rings are never empty (the constructor rejects zero slots).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Unchecked slot access for mask-reduced indices.
    #[inline]
    pub fn get(&self, i: u32) -> &T {
        debug_assert!(i <= self.mask);
        // SAFETY: callers reduce `i` by `self.mask`, and
        // `slots.len() == mask + 1` by construction (power of two).
        unsafe { self.slots.get_unchecked(i as usize) }
    }

    /// Unchecked mutable slot access for mask-reduced indices.
    #[inline]
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        debug_assert!(i <= self.mask);
        // SAFETY: as in [`RingSlots::get`].
        unsafe { self.slots.get_unchecked_mut(i as usize) }
    }
}

/// A `u32` padded to a cache line so the producer's tail and the
/// consumer's head never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedAtomicU32(AtomicU32);

struct SpscShared<T> {
    /// Free-running indices reduced by `mask` on slot access; `tail` is
    /// producer-owned, `head` consumer-owned.
    tail: PaddedAtomicU32,
    head: PaddedAtomicU32,
    /// Set by either side's `Drop`; the survivor observes it instead of
    /// spinning forever.
    disconnected: AtomicBool,
    /// Times the producer found the lane full and had to park (spin,
    /// then yield). Incremented with `Release` so a consumer's
    /// `Acquire` read after the producer thread exits sees every park.
    parks: AtomicU64,
    mask: u32,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the channel hands each slot to exactly one side at a time —
// the producer writes a slot strictly before publishing it via `tail`
// (Release), the consumer reads it strictly after observing that store
// (Acquire) and returns it via `head` the same way.
unsafe impl<T: Send> Sync for SpscShared<T> {}
unsafe impl<T: Send> Send for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop the unreceived items.
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            let slot = &self.slots[(i & self.mask) as usize];
            // SAFETY: slots in [head, tail) hold initialized values the
            // consumer never took.
            unsafe { slot.get().read().assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Producer half of an [`spsc`] channel.
#[derive(Debug)]
pub struct SpscSender<T> {
    shared: Arc<SpscShared<T>>,
}

/// Consumer half of an [`spsc`] channel.
#[derive(Debug)]
pub struct SpscReceiver<T> {
    shared: Arc<SpscShared<T>>,
}

impl<T> std::fmt::Debug for SpscShared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscShared").field("mask", &self.mask).finish_non_exhaustive()
    }
}

/// Why a [`SpscSender::try_send`] could not take the value.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The lane is at capacity; the value is handed back.
    Full(T),
    /// The receiver is gone; the value is handed back.
    Disconnected(T),
}

/// Why a receive returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The lane is currently empty (the producer may still send).
    Empty,
    /// The lane is empty and the producer is gone.
    Disconnected,
}

/// Spins briefly, then yields to the scheduler. On a single-CPU host
/// the counterpart thread cannot run until we yield, so the spin
/// budget stays small.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Creates a bounded lock-free SPSC channel with at least `min_depth`
/// slots (rounded up to a power of two).
///
/// ```
/// use vpnm_core::ring::spsc;
/// let (tx, mut rx) = spsc::<u64>(2);
/// tx.send(7);
/// assert_eq!(rx.recv(), Ok(7));
/// drop(tx);
/// use vpnm_core::ring::RecvError;
/// assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
/// ```
pub fn spsc<T: Send>(min_depth: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(min_depth > 0, "spsc lane needs at least one slot");
    let n = min_depth.next_power_of_two();
    assert!(n <= (u32::MAX as usize) / 4, "spsc lane too deep");
    let shared = Arc::new(SpscShared {
        tail: PaddedAtomicU32(AtomicU32::new(0)),
        head: PaddedAtomicU32(AtomicU32::new(0)),
        disconnected: AtomicBool::new(false),
        parks: AtomicU64::new(0),
        mask: n as u32 - 1,
        slots: (0..n).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
    });
    (SpscSender { shared: Arc::clone(&shared) }, SpscReceiver { shared })
}

impl<T: Send> SpscSender<T> {
    /// Capacity of the lane (a power of two).
    pub fn capacity(&self) -> usize {
        self.shared.mask as usize + 1
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the lane is at capacity,
    /// [`TrySendError::Disconnected`] when the receiver is gone; both
    /// hand the value back.
    #[inline]
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let s = &*self.shared;
        if s.disconnected.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let tail = s.tail.0.load(Ordering::Relaxed);
        let head = s.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > s.mask {
            return Err(TrySendError::Full(value));
        }
        let slot = &s.slots[(tail & s.mask) as usize];
        // SAFETY: [head, tail) is full, so `tail` itself is a free slot
        // the consumer will not touch until we publish it below.
        unsafe { slot.get().write(MaybeUninit::new(value)) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues, parking (spin-then-yield) while the lane is full. Each
    /// full-on-first-try send counts one park, mirroring the serving
    /// layer's `producer_parks` accounting. Returns `false` (dropping
    /// `value`) only if the receiver disconnected.
    pub fn send(&self, value: T) -> bool {
        let mut v = value;
        let mut first = true;
        let mut spins = 0u32;
        loop {
            match self.try_send(v) {
                Ok(()) => return true,
                Err(TrySendError::Disconnected(_)) => return false,
                Err(TrySendError::Full(back)) => {
                    if first {
                        first = false;
                        self.shared.parks.fetch_add(1, Ordering::Release);
                    }
                    v = back;
                    backoff(&mut spins);
                }
            }
        }
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.shared.disconnected.store(true, Ordering::Release);
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Attempts to dequeue without blocking.
    ///
    /// # Errors
    ///
    /// [`RecvError::Empty`] when nothing is queued yet,
    /// [`RecvError::Disconnected`] when the lane is empty **and** the
    /// producer is gone (queued values are still delivered first).
    #[inline]
    pub fn try_recv(&mut self) -> Result<T, RecvError> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        let tail = s.tail.0.load(Ordering::Acquire);
        if head == tail {
            return if s.disconnected.load(Ordering::Acquire) {
                // Re-check: the producer may have published between the
                // tail load and the disconnect load.
                if s.tail.0.load(Ordering::Acquire) != head {
                    Err(RecvError::Empty)
                } else {
                    Err(RecvError::Disconnected)
                }
            } else {
                Err(RecvError::Empty)
            };
        }
        let slot = &s.slots[(head & s.mask) as usize];
        // SAFETY: `head != tail` under Acquire means the producer
        // published this slot; only the consumer reads it.
        let value = unsafe { slot.get().read().assume_init() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Ok(value)
    }

    /// Dequeues, parking (spin-then-yield) while the lane is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] once the lane is empty and the
    /// producer is gone.
    pub fn recv(&mut self) -> Result<T, RecvError> {
        let mut spins = 0u32;
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(RecvError::Disconnected) => return Err(RecvError::Disconnected),
                Err(RecvError::Empty) => backoff(&mut spins),
            }
        }
    }

    /// Producer park count, read with `Acquire` so it is exact once the
    /// producer thread has been joined (see `IngressRig::join`).
    pub fn parks(&self) -> u64 {
        self.shared.parks.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.shared.disconnected.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_slots_round_up_and_mask() {
        let r = RingSlots::from_fn(5, |i| i);
        assert_eq!(r.len(), 8);
        assert_eq!(r.mask(), 7);
        assert_eq!(*r.get(11 & r.mask()), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn ring_slots_get_mut() {
        let mut r = RingSlots::from_fn(2, |_| 0u64);
        *r.get_mut(1) = 9;
        assert_eq!(*r.get(1), 9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn ring_slots_zero_rejected() {
        let _ = RingSlots::from_fn(0, |i| i);
    }

    #[test]
    fn spsc_fifo_and_capacity() {
        let (tx, mut rx) = spsc::<u32>(2);
        assert_eq!(tx.capacity(), 2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
    }

    #[test]
    fn spsc_send_parks_when_full() {
        let (tx, mut rx) = spsc::<u32>(1);
        assert!(tx.send(1));
        let t = std::thread::spawn(move || tx.send(2) && tx.send(3));
        // Drain slowly; the producer must park at least once on the
        // full lane and still deliver in order.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(t.join().unwrap());
        assert!(rx.parks() >= 1, "full 1-deep lane must have parked");
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn spsc_disconnect_drains_then_reports() {
        let (tx, mut rx) = spsc::<String>(4);
        tx.try_send("a".into()).unwrap();
        tx.try_send("b".into()).unwrap();
        drop(tx);
        assert_eq!(rx.recv().as_deref(), Ok("a"));
        assert_eq!(rx.try_recv().as_deref(), Ok("b"));
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn spsc_receiver_drop_fails_sender() {
        let (tx, rx) = spsc::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert!(!tx.send(2));
    }

    #[test]
    fn spsc_unreceived_items_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = spsc::<D>(4);
        tx.try_send(D).unwrap();
        tx.try_send(D).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn spsc_cross_thread_stress() {
        let (tx, mut rx) = spsc::<u64>(8);
        let n = 10_000u64;
        let t = std::thread::spawn(move || {
            for i in 0..n {
                assert!(tx.send(i));
            }
        });
        for i in 0..n {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }
}
