//! The delay storage buffer — the merging queue at the heart of each bank
//! controller (paper Figure 3, left).
//!
//! The buffer holds `K` rows. Each row stores the address of a pending /
//! accessing / waiting request, a redundant-request counter, and (once the
//! bank access completes) the data words. A row is allocated on the first
//! read of an address, *merged into* by redundant reads of the same address
//! (paper Section 3.4: the patterns "A,A,A,…" and "A,B,A,B,…" must not
//! consume extra rows), and freed when its counter drains to zero after the
//! last playback.
//!
//! The address CAM match is gated by a valid flag: an incoming **write** to
//! a matching address clears the flag (the row's data is now stale for new
//! readers) but the row keeps serving the reads that merged before the
//! write, exactly as the paper describes in Section 4.2.
//!
//! # Performance
//!
//! In hardware the CAM search and the "first zero circuit" (free-row scan)
//! are single-cycle combinational logic; the original software model made
//! them O(K) linear scans on every read. This implementation keeps the
//! *semantics* of those scans — lookup returns the **lowest-index** valid
//! live row for an address, allocate claims the **lowest-index** free row —
//! but answers them from an address→row hash index and a free-row bitset,
//! so the per-read cost is O(1) amortized (O(K/64) for allocate). The
//! lowest-index tie-break only matters when several valid rows share an
//! address, which cannot happen while merging is enabled but does happen
//! in merging-off ablations; that rare removal path falls back to an O(K)
//! rescan so behaviour stays bit-identical to the linear model.

use crate::request::LineAddr;
use bytes::Bytes;

/// Index of a row in the delay storage buffer (the id stored in the bank
/// access queue and the circular delay buffer, `log2 K` bits in hardware).
pub type RowId = u32;

/// Result of one playback: the served address and, if the bank access
/// completed in time, the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Playback {
    /// The address this playback serves.
    pub addr: LineAddr,
    /// The data, or `None` on a deadline miss. Cloned by refcount from the
    /// row, not copied.
    pub data: Option<Bytes>,
}

/// Line-aligned so every (randomly indexed) row touch on the hot path —
/// allocate, fill, playback — costs exactly one cache line.
#[derive(Debug, Clone, Default)]
#[repr(align(64))]
struct Row {
    /// Address held by this row, when the row is live.
    addr: LineAddr,
    /// Address-valid flag: participates in CAM matching. Cleared by a
    /// matching write while the row drains.
    addr_valid: bool,
    /// Outstanding playbacks against this row (the paper's `C`-bit
    /// counter).
    counter: u32,
    /// CAM slot the row's address was last indexed under — lets the
    /// unlink on the playback path skip the probe. May go stale when a
    /// backward-shift deletion moves the slot, so consumers must validate
    /// (slot used and address matches) before trusting it.
    cam_slot: u32,
    /// Data words, present once the bank read completed.
    data: Option<Bytes>,
}

impl Row {
    fn is_free(&self) -> bool {
        self.counter == 0
    }
}

/// Hash-index entry: the lowest-index valid live row holding an address,
/// plus how many valid live rows hold it (more than one only with merging
/// disabled).
#[derive(Debug, Clone, Copy)]
struct CamEntry {
    row: RowId,
    valid_rows: u16,
    /// Probe distance from the address's home slot — lets the
    /// backward-shift deletion decide slot movability without re-hashing
    /// every scanned address. Bounded by the live entry count (≤ `K`), so
    /// `u16` holds it for any accepted `K`.
    dist: u16,
}

// Full-avalanche integer hash for the CAM index: the workspace's one
// canonical SplitMix64 (bit-identical to the private copy it replaces).
use vpnm_hash::fast::splitmix64 as mix64;

/// One CAM table slot, packed to 16 bytes (4 per cache line). A slot is
/// unused iff `entry.valid_rows == 0` — every live entry counts at least
/// one valid row, so no separate flag is needed and the table stays half
/// the size it would be with one.
#[derive(Debug, Clone, Copy)]
struct CamSlot {
    addr: LineAddr,
    entry: CamEntry,
}

impl CamSlot {
    #[inline]
    fn used(&self) -> bool {
        self.entry.valid_rows != 0
    }
}

/// The address→row CAM index: an open-addressed table with linear probing
/// and backward-shift deletion. At most `K` distinct addresses are ever
/// live at once (each needs at least one row), so sizing the table to the
/// next power of two ≥ `2K` bounds the load factor at ½ and keeps probe
/// chains to a couple of cache hits — measurably cheaper per request than
/// a general-purpose `HashMap` on this three-ops-per-request path.
#[derive(Debug, Clone)]
struct CamIndex {
    slots: Vec<CamSlot>,
    mask: usize,
}

impl CamIndex {
    fn new(k: usize) -> Self {
        assert!(k <= usize::from(u16::MAX), "CAM sized for at most {} rows", u16::MAX);
        let cap = (2 * k).next_power_of_two().max(8);
        let empty =
            CamSlot { addr: LineAddr(0), entry: CamEntry { row: 0, valid_rows: 0, dist: 0 } };
        CamIndex { slots: vec![empty; cap], mask: cap - 1 }
    }

    #[inline]
    fn home(&self, addr: LineAddr) -> usize {
        mix64(addr.0) as usize & self.mask
    }

    /// Unchecked slot access for mask-reduced indices — the probe loops
    /// run once per accepted request, and `i & mask` can never reach
    /// `slots.len()`, so the bounds check is pure overhead there.
    #[inline]
    fn slot(&self, i: usize) -> &CamSlot {
        debug_assert!(i < self.slots.len());
        // SAFETY: every caller derives `i` via `& self.mask`, and
        // `slots.len() == mask + 1` by construction (power of two).
        unsafe { self.slots.get_unchecked(i) }
    }

    /// Probes `addr`'s chain: `Ok(slot)` when present, `Err((slot, dist))`
    /// with the unused slot terminating the chain (and its probe distance
    /// from home) when absent — exactly where [`CamIndex::note_alloc`]
    /// would insert, letting the read hot path reuse one probe for both
    /// the search and the insert.
    #[inline]
    fn probe(&self, addr: LineAddr) -> Result<usize, (usize, u16)> {
        let mut i = self.home(addr);
        let mut dist = 0u16;
        loop {
            let s = self.slot(i);
            if !s.used() {
                return Err((i, dist));
            }
            if s.addr == addr {
                return Ok(i);
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    /// Slot index holding `addr`, if present.
    #[inline]
    fn find(&self, addr: LineAddr) -> Option<usize> {
        self.probe(addr).ok()
    }

    #[inline]
    fn get(&self, addr: LineAddr) -> Option<CamEntry> {
        self.find(addr).map(|i| self.slots[i].entry)
    }

    /// Registers a newly allocated valid row: bumps the duplicate count
    /// (keeping the lowest row index) or inserts a fresh entry. The ½ load
    /// bound guarantees a free slot exists. Returns the slot used, for the
    /// row's `cam_slot` hint.
    fn note_alloc(&mut self, addr: LineAddr, row: RowId) -> usize {
        let mut i = self.home(addr);
        let mut dist = 0u16;
        loop {
            let s = &mut self.slots[i];
            if !s.used() {
                *s = CamSlot { addr, entry: CamEntry { row, valid_rows: 1, dist } };
                return i;
            }
            if s.addr == addr {
                s.entry.row = s.entry.row.min(row);
                s.entry.valid_rows += 1;
                return i;
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    /// Empties slot `i`, back-shifting displaced successors so probe
    /// chains stay unbroken (no tombstones). Movability comes from each
    /// slot's stored probe distance — no re-hash of scanned addresses.
    fn remove_at(&mut self, mut i: usize) {
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let s = *self.slot(j);
            if !s.used() {
                break;
            }
            // `j`'s element may fill the hole at `i` iff its home precedes
            // or equals `i` in cyclic probe order, i.e. its probe distance
            // reaches back to the hole.
            let off = j.wrapping_sub(i) & self.mask;
            if usize::from(s.entry.dist) >= off {
                self.slots[i] = s;
                self.slots[i].entry.dist = s.entry.dist - off as u16;
                i = j;
            }
        }
        self.slots[i].entry.valid_rows = 0;
    }
}

/// An opaque CAM insert position returned by a
/// [`DelayStorageBuffer::lookup_hinted`] miss, consumable by
/// [`DelayStorageBuffer::allocate_hinted`]. Invalidated by any other CAM
/// mutation in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamHint(usize, u16);

/// The paper's **delay storage buffer (DSB)**: the `K`-row merging CAM of
/// one bank controller (Figure 3, left). Overflow is the *delay storage
/// stall* of Section 4.3 — the rarest of the three stall classes at paper
/// sizing.
///
/// ```
/// use vpnm_core::delay_storage::DelayStorageBuffer;
/// use vpnm_core::request::LineAddr;
///
/// let mut dsb = DelayStorageBuffer::new(2);
/// let row = dsb.allocate(LineAddr(7)).expect("free row");
/// assert_eq!(dsb.lookup(LineAddr(7)), Some(row));
/// dsb.merge(row);                        // a redundant request
/// dsb.fill(row, vec![1, 2, 3]);          // bank access completes
/// assert_eq!(dsb.playback(row).data.as_deref(), Some(&[1, 2, 3][..]));
/// assert_eq!(dsb.playback(row).data.as_deref(), Some(&[1, 2, 3][..]));
/// assert_eq!(dsb.live_rows(), 0);        // counter drained, row freed
/// ```
#[derive(Debug, Clone)]
pub struct DelayStorageBuffer {
    rows: Vec<Row>,
    live: usize,
    /// CAM index: address → lowest valid live row (+ duplicate count).
    cam: CamIndex,
    /// Free-row bitset ("first zero circuit"); bit set = row free.
    free: Vec<u64>,
}

impl DelayStorageBuffer {
    /// Creates a buffer with `k` rows.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "delay storage buffer needs at least one row");
        let mut free = vec![0u64; k.div_ceil(64)];
        for (i, word) in free.iter_mut().enumerate() {
            let bits = (k - i * 64).min(64);
            *word = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        }
        DelayStorageBuffer { rows: vec![Row::default(); k], live: 0, cam: CamIndex::new(k), free }
    }

    /// Capacity `K`.
    pub fn capacity(&self) -> usize {
        self.rows.len()
    }

    /// Rows currently allocated (counter > 0).
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// CAM search: the row currently holding `addr` with a set valid flag
    /// (the lowest-index one, matching the hardware priority encoder).
    pub fn lookup(&self, addr: LineAddr) -> Option<RowId> {
        self.cam.get(addr).map(|e| e.row)
    }

    /// Issues a hardware prefetch for `p`'s cache line (see
    /// [`crate::prefetch::prefetch_read`], shared with the serving
    /// layer's batched flow-table probes).
    #[inline]
    fn warm<T>(p: *const T) {
        crate::prefetch::prefetch_read(p);
    }

    /// Warms the CAM home slot of `addr` so a
    /// [`DelayStorageBuffer::lookup_hinted`] issued a few cycles later
    /// finds the line already in cache. Semantically a no-op.
    #[inline]
    pub fn prefetch(&self, addr: LineAddr) {
        let i = self.cam.home(addr);
        Self::warm(&raw const self.cam.slots[i]);
    }

    /// Warms a row ahead of its playback deadline (see
    /// [`DelayStorageBuffer::prefetch`]) — by playback time the row was
    /// last touched a full bank access ago and has long left the cache.
    #[inline]
    pub fn prefetch_row(&self, row: RowId) {
        Self::warm(&raw const self.rows[row as usize]);
    }

    /// Second warmup stage before a playback: with the row line already
    /// resident (an earlier [`DelayStorageBuffer::prefetch_row`]), touch
    /// the CAM slot its unlink will hit — the row's cached slot, exact
    /// unless a backward shift moved the entry since.
    #[inline]
    pub fn prefetch_playback(&self, row: RowId) {
        let r = &self.rows[row as usize];
        if r.addr_valid {
            Self::warm(&raw const self.cam.slots[r.cam_slot as usize]);
        }
    }

    /// CAM search that, on a miss, hands back the insert position as a
    /// [`CamHint`] so a subsequent [`DelayStorageBuffer::allocate_hinted`]
    /// can skip re-probing. Exactly [`DelayStorageBuffer::lookup`]
    /// otherwise.
    #[inline]
    pub fn lookup_hinted(&self, addr: LineAddr) -> Result<RowId, CamHint> {
        match self.cam.probe(addr) {
            Ok(i) => Ok(self.cam.slots[i].entry.row),
            Err((i, dist)) => Err(CamHint(i, dist)),
        }
    }

    /// [`DelayStorageBuffer::allocate`] with the CAM insert slot already
    /// known from a [`DelayStorageBuffer::lookup_hinted`] miss. The hint
    /// is only valid while no CAM mutation happened in between (the
    /// submit path calls the two back to back).
    #[inline]
    pub fn allocate_hinted(&mut self, addr: LineAddr, hint: CamHint) -> Option<RowId> {
        debug_assert!(!self.cam.slots[hint.0].used(), "stale CAM hint");
        debug_assert!(self.cam.probe(addr) == Err((hint.0, hint.1)), "hint for wrong address");
        let idx = self.first_free()?;
        self.free[idx as usize / 64] &= !(1u64 << (idx as usize % 64));
        let row = &mut self.rows[idx as usize];
        row.addr = addr;
        row.addr_valid = true;
        row.counter = 1;
        row.cam_slot = hint.0 as u32;
        row.data = None;
        self.live += 1;
        self.cam.slots[hint.0] =
            CamSlot { addr, entry: CamEntry { row: idx, valid_rows: 1, dist: hint.1 } };
        Some(idx)
    }

    /// Allocates a free row for `addr` with counter 1 (the "first zero
    /// circuit" of the paper). Returns `None` when every row is live —
    /// the *delay storage buffer stall* condition.
    pub fn allocate(&mut self, addr: LineAddr) -> Option<RowId> {
        let idx = self.first_free()?;
        self.free[idx as usize / 64] &= !(1u64 << (idx as usize % 64));
        let row = &mut self.rows[idx as usize];
        row.addr = addr;
        row.addr_valid = true;
        row.counter = 1;
        row.data = None;
        self.live += 1;
        let slot = self.cam.note_alloc(addr, idx);
        self.rows[idx as usize].cam_slot = slot as u32;
        Some(idx)
    }

    fn first_free(&self) -> Option<RowId> {
        for (i, &word) in self.free.iter().enumerate() {
            if word != 0 {
                return Some((i * 64) as RowId + word.trailing_zeros());
            }
        }
        None
    }

    /// Unlinks a (still or formerly) valid row from the CAM index,
    /// promoting the next-lowest duplicate if one exists. Only the
    /// duplicate case (merging disabled) pays the O(K) rescan.
    #[inline]
    fn cam_remove(&mut self, addr: LineAddr, row: RowId) {
        // Open addressing keeps one slot per address, so a used slot whose
        // address matches IS the entry — the row's cached slot then saves
        // the probe. A backward shift may have moved the entry since the
        // hint was written; only that stale case re-probes.
        let hint = self.rows[row as usize].cam_slot as usize;
        let hinted = self.cam.slots[hint];
        let i = if hinted.used() && hinted.addr == addr {
            hint
        } else {
            self.cam.find(addr).expect("CAM entry for valid row")
        };
        let entry = &mut self.cam.slots[i].entry;
        entry.valid_rows -= 1;
        if entry.valid_rows == 0 {
            self.cam.remove_at(i);
        } else if entry.row == row {
            let next = self
                .rows
                .iter()
                .position(|r| !r.is_free() && r.addr_valid && r.addr == addr)
                .expect("duplicate valid row promised by CAM count");
            self.cam.slots[i].entry.row = next as RowId;
        }
    }

    /// Registers a redundant request against a live row (counter += 1).
    ///
    /// # Panics
    ///
    /// Panics if the row is free — merging into a free row is a controller
    /// bug.
    pub fn merge(&mut self, row: RowId) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "merge into free row {row}");
        r.counter += 1;
    }

    /// The address a live row is serving (used when issuing the bank
    /// read).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the row is free.
    #[inline]
    pub fn row_addr(&self, row: RowId) -> LineAddr {
        let r = &self.rows[row as usize];
        debug_assert!(!r.is_free(), "address of free row {row}");
        r.addr
    }

    /// Stores the data returned by the bank access.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the row is free.
    #[inline]
    pub fn fill(&mut self, row: RowId, data: impl Into<Bytes>) {
        let r = &mut self.rows[row as usize];
        debug_assert!(!r.is_free(), "fill of free row {row}");
        r.data = Some(data.into());
    }

    /// True once [`DelayStorageBuffer::fill`] has run for this row.
    pub fn is_filled(&self, row: RowId) -> bool {
        self.rows[row as usize].data.is_some()
    }

    /// Plays one response back from a row at its deadline, decrementing
    /// the counter and freeing the row when it drains.
    ///
    /// The returned [`Playback`] carries the row's address and its data;
    /// `data` is `None` only if the bank access has not completed — a
    /// deadline violation indicating a mis-configured `D`, which the
    /// controller records as a deadline miss. The counter is consumed
    /// either way so rows cannot leak.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the row is free.
    #[inline]
    pub fn playback(&mut self, row: RowId) -> Playback {
        let r = &mut self.rows[row as usize];
        debug_assert!(!r.is_free(), "playback of free row {row}");
        let addr = r.addr;
        r.counter -= 1;
        // The last playback moves the data out instead of cloning it —
        // the common (unmerged) case then costs no refcount round-trip.
        let data = if r.counter == 0 { r.data.take() } else { r.data.clone() };
        if r.counter == 0 {
            let was_valid = r.addr_valid;
            r.addr_valid = false;
            self.live -= 1;
            self.free[row as usize / 64] |= 1u64 << (row as usize % 64);
            if was_valid {
                self.cam_remove(addr, row);
            }
        }
        Playback { addr, data }
    }

    /// Write-match invalidation: clears the valid flag of the row holding
    /// `addr` (if any) so future reads re-fetch from the bank, while the
    /// row keeps serving already-merged reads. Returns whether a row
    /// matched.
    pub fn invalidate(&mut self, addr: LineAddr) -> bool {
        match self.cam.get(addr) {
            Some(entry) => {
                let row = entry.row;
                self.rows[row as usize].addr_valid = false;
                self.cam_remove(addr, row);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_stall() {
        let mut dsb = DelayStorageBuffer::new(3);
        for i in 0..3u64 {
            assert!(dsb.allocate(LineAddr(i)).is_some());
        }
        assert_eq!(dsb.live_rows(), 3);
        assert_eq!(dsb.allocate(LineAddr(99)), None, "K exhausted must stall");
    }

    #[test]
    fn freed_rows_are_reusable() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(1)).unwrap();
        dsb.fill(r, vec![7]);
        assert_eq!(dsb.playback(r).data.as_deref(), Some(&[7u8][..]));
        assert_eq!(dsb.live_rows(), 0);
        assert!(dsb.allocate(LineAddr(2)).is_some());
    }

    #[test]
    fn lookup_only_matches_valid_live_rows() {
        let mut dsb = DelayStorageBuffer::new(2);
        assert_eq!(dsb.lookup(LineAddr(4)), None);
        let r = dsb.allocate(LineAddr(4)).unwrap();
        assert_eq!(dsb.lookup(LineAddr(4)), Some(r));
        dsb.invalidate(LineAddr(4));
        assert_eq!(dsb.lookup(LineAddr(4)), None, "invalidated row must not match");
        // but the row still serves its pending playback
        dsb.fill(r, vec![1]);
        let pb = dsb.playback(r);
        assert_eq!(pb.data.as_deref(), Some(&[1u8][..]));
        assert_eq!(pb.addr, LineAddr(4));
    }

    #[test]
    fn merge_extends_row_lifetime() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(9)).unwrap();
        dsb.merge(r);
        dsb.merge(r);
        dsb.fill(r, vec![5]);
        for _ in 0..3 {
            assert_eq!(dsb.playback(r).data.as_deref(), Some(&[5u8][..]));
        }
        assert_eq!(dsb.live_rows(), 0);
    }

    #[test]
    fn a_b_a_b_uses_two_rows() {
        // The paper's requirement: "we need to handle A,B,A,B,... with
        // only two queue entries."
        let mut dsb = DelayStorageBuffer::new(2);
        let ra = dsb.allocate(LineAddr(0xA)).unwrap();
        let rb = dsb.allocate(LineAddr(0xB)).unwrap();
        for _ in 0..100 {
            dsb.merge(dsb.lookup(LineAddr(0xA)).unwrap());
            dsb.merge(dsb.lookup(LineAddr(0xB)).unwrap());
        }
        assert_eq!(dsb.live_rows(), 2);
        assert_eq!(dsb.lookup(LineAddr(0xA)), Some(ra));
        assert_eq!(dsb.lookup(LineAddr(0xB)), Some(rb));
    }

    #[test]
    fn playback_before_fill_is_a_deadline_miss() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(1)).unwrap();
        assert!(!dsb.is_filled(r));
        let pb = dsb.playback(r);
        assert_eq!(pb.data, None);
        assert_eq!(pb.addr, LineAddr(1));
        // the counter is consumed even on a miss so rows cannot leak
        assert_eq!(dsb.live_rows(), 0);
    }

    #[test]
    fn write_invalidation_allows_new_version_row() {
        let mut dsb = DelayStorageBuffer::new(2);
        let old = dsb.allocate(LineAddr(3)).unwrap();
        dsb.invalidate(LineAddr(3));
        let new = dsb.allocate(LineAddr(3)).unwrap();
        assert_ne!(old, new);
        assert_eq!(dsb.lookup(LineAddr(3)), Some(new));
    }

    #[test]
    fn duplicate_valid_rows_resolve_lowest_first() {
        // With merging disabled the controller allocates a second valid
        // row for an address it never looked up. The CAM must keep
        // answering with the lowest-index valid row, exactly like the
        // hardware priority encoder / the original linear scan.
        let mut dsb = DelayStorageBuffer::new(4);
        let r0 = dsb.allocate(LineAddr(7)).unwrap();
        let r1 = dsb.allocate(LineAddr(7)).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(dsb.lookup(LineAddr(7)), Some(r0));
        // Freeing the lowest promotes the next duplicate.
        dsb.fill(r0, vec![1]);
        dsb.playback(r0);
        assert_eq!(dsb.lookup(LineAddr(7)), Some(r1));
        // Reallocating the freed slot 0 makes it the lowest again.
        let r0b = dsb.allocate(LineAddr(7)).unwrap();
        assert_eq!(r0b, 0);
        assert_eq!(dsb.lookup(LineAddr(7)), Some(r0b));
        // Invalidation hits only the lowest duplicate (seed semantics).
        assert!(dsb.invalidate(LineAddr(7)));
        assert_eq!(dsb.lookup(LineAddr(7)), Some(r1));
        assert!(dsb.invalidate(LineAddr(7)));
        assert_eq!(dsb.lookup(LineAddr(7)), None);
    }

    #[test]
    #[should_panic(expected = "merge into free row")]
    fn merge_free_row_is_a_bug() {
        let mut dsb = DelayStorageBuffer::new(1);
        dsb.merge(0);
    }

    #[test]
    fn row_addr_reports_address() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(0x42)).unwrap();
        assert_eq!(dsb.row_addr(r), LineAddr(0x42));
    }

    #[test]
    fn large_capacity_spans_multiple_free_words() {
        let mut dsb = DelayStorageBuffer::new(130);
        let rows: Vec<RowId> = (0..130u64).map(|i| dsb.allocate(LineAddr(i)).unwrap()).collect();
        assert_eq!(rows, (0..130).collect::<Vec<RowId>>(), "lowest-free order");
        assert_eq!(dsb.allocate(LineAddr(999)), None);
        // Free a high row and a low row; the low one must be claimed first.
        dsb.fill(rows[128], vec![1]);
        dsb.playback(rows[128]);
        dsb.fill(rows[3], vec![1]);
        dsb.playback(rows[3]);
        assert_eq!(dsb.allocate(LineAddr(1000)), Some(3));
        assert_eq!(dsb.allocate(LineAddr(1001)), Some(128));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Read(u8),
        /// Allocate without CAM lookup, as the merging-off controller does.
        BlindRead(u8),
        Fill(u8),
        Playback,
        Invalidate(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::Read),
            any::<u8>().prop_map(Op::BlindRead),
            any::<u8>().prop_map(Op::Fill),
            Just(Op::Playback),
            any::<u8>().prop_map(Op::Invalidate),
        ]
    }

    /// The original O(K) model: plain linear scans, no index structures.
    /// The indexed implementation must agree with it on every observable.
    struct LinearModel {
        rows: Vec<(LineAddr, bool, u32)>, // (addr, valid, counter)
    }

    impl LinearModel {
        fn new(k: usize) -> Self {
            LinearModel { rows: vec![(LineAddr(0), false, 0); k] }
        }
        fn lookup(&self, addr: LineAddr) -> Option<RowId> {
            self.rows
                .iter()
                .position(|&(a, valid, c)| c > 0 && valid && a == addr)
                .map(|i| i as RowId)
        }
        fn allocate(&mut self, addr: LineAddr) -> Option<RowId> {
            let idx = self.rows.iter().position(|&(_, _, c)| c == 0)?;
            self.rows[idx] = (addr, true, 1);
            Some(idx as RowId)
        }
        fn playback(&mut self, row: RowId) {
            let r = &mut self.rows[row as usize];
            r.2 -= 1;
            if r.2 == 0 {
                r.1 = false;
            }
        }
        fn invalidate(&mut self, addr: LineAddr) -> bool {
            match self.lookup(addr) {
                Some(row) => {
                    self.rows[row as usize].1 = false;
                    true
                }
                None => false,
            }
        }
        fn live(&self) -> usize {
            self.rows.iter().filter(|&&(_, _, c)| c > 0).count()
        }
    }

    proptest! {
        /// Counter conservation: playbacks never exceed reads, live rows
        /// never exceed capacity, and a drained buffer is fully free.
        #[test]
        fn conservation(ops in proptest::collection::vec(op(), 1..300)) {
            let k = 8;
            let mut dsb = DelayStorageBuffer::new(k);
            let mut scheduled: Vec<RowId> = Vec::new(); // pending playbacks, FIFO
            let mut reads = 0u64;
            let mut playbacks = 0u64;
            for op in &ops {
                match op {
                    Op::Read(a) | Op::BlindRead(a) => {
                        let addr = LineAddr(u64::from(*a % 16));
                        let row = match dsb.lookup(addr) {
                            Some(r) => { dsb.merge(r); Some(r) }
                            None => dsb.allocate(addr),
                        };
                        if let Some(r) = row {
                            scheduled.push(r);
                            reads += 1;
                        }
                    }
                    Op::Fill(a) => {
                        if let Some(r) = dsb.lookup(LineAddr(u64::from(*a % 16))) {
                            dsb.fill(r, vec![*a]);
                        }
                    }
                    Op::Playback => {
                        if !scheduled.is_empty() {
                            let r = scheduled.remove(0);
                            dsb.playback(r);
                            playbacks += 1;
                        }
                    }
                    Op::Invalidate(a) => {
                        dsb.invalidate(LineAddr(u64::from(*a % 16)));
                    }
                }
                prop_assert!(dsb.live_rows() <= k);
                prop_assert!(playbacks <= reads);
            }
            // drain all remaining playbacks: buffer must come back empty
            while !scheduled.is_empty() {
                let r = scheduled.remove(0);
                dsb.playback(r);
            }
            prop_assert_eq!(dsb.live_rows(), 0);
        }

        /// The indexed CAM + free bitset must be observationally identical
        /// to the original linear-scan model, including the duplicate-row
        /// corner the merging-off controller exercises (`BlindRead`).
        #[test]
        fn matches_linear_scan_model(ops in proptest::collection::vec(op(), 1..400)) {
            let k = 6;
            let mut dsb = DelayStorageBuffer::new(k);
            let mut model = LinearModel::new(k);
            let mut scheduled: Vec<RowId> = Vec::new();
            for op in &ops {
                match op {
                    Op::Read(a) => {
                        let addr = LineAddr(u64::from(*a % 8));
                        prop_assert_eq!(dsb.lookup(addr), model.lookup(addr));
                        let row = match dsb.lookup(addr) {
                            Some(r) => { dsb.merge(r); model.rows[r as usize].2 += 1; Some(r) }
                            None => {
                                let got = dsb.allocate(addr);
                                prop_assert_eq!(got, model.allocate(addr));
                                got
                            }
                        };
                        if let Some(r) = row { scheduled.push(r); }
                    }
                    Op::BlindRead(a) => {
                        // merging disabled: allocate without lookup
                        let addr = LineAddr(u64::from(*a % 8));
                        let got = dsb.allocate(addr);
                        prop_assert_eq!(got, model.allocate(addr));
                        if let Some(r) = got { scheduled.push(r); }
                    }
                    Op::Fill(a) => {
                        let addr = LineAddr(u64::from(*a % 8));
                        prop_assert_eq!(dsb.lookup(addr), model.lookup(addr));
                        if let Some(r) = dsb.lookup(addr) { dsb.fill(r, vec![*a]); }
                    }
                    Op::Playback => {
                        if !scheduled.is_empty() {
                            let r = scheduled.remove(0);
                            dsb.playback(r);
                            model.playback(r);
                        }
                    }
                    Op::Invalidate(a) => {
                        let addr = LineAddr(u64::from(*a % 8));
                        prop_assert_eq!(dsb.invalidate(addr), model.invalidate(addr));
                    }
                }
                prop_assert_eq!(dsb.live_rows(), model.live());
                // every address agrees after every operation
                for probe in 0..8u64 {
                    prop_assert_eq!(dsb.lookup(LineAddr(probe)), model.lookup(LineAddr(probe)));
                }
            }
        }
    }
}
