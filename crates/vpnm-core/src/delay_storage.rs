//! The delay storage buffer — the merging queue at the heart of each bank
//! controller (paper Figure 3, left).
//!
//! The buffer holds `K` rows. Each row stores the address of a pending /
//! accessing / waiting request, a redundant-request counter, and (once the
//! bank access completes) the data words. A row is allocated on the first
//! read of an address, *merged into* by redundant reads of the same address
//! (paper Section 3.4: the patterns "A,A,A,…" and "A,B,A,B,…" must not
//! consume extra rows), and freed when its counter drains to zero after the
//! last playback.
//!
//! The address CAM match is gated by a valid flag: an incoming **write** to
//! a matching address clears the flag (the row's data is now stale for new
//! readers) but the row keeps serving the reads that merged before the
//! write, exactly as the paper describes in Section 4.2.

use crate::request::LineAddr;

/// Index of a row in the delay storage buffer (the id stored in the bank
/// access queue and the circular delay buffer, `log2 K` bits in hardware).
pub type RowId = u32;

/// Result of one playback: the served address and, if the bank access
/// completed in time, the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Playback {
    /// The address this playback serves.
    pub addr: LineAddr,
    /// The data, or `None` on a deadline miss.
    pub data: Option<Vec<u8>>,
}

#[derive(Debug, Clone, Default)]
struct Row {
    /// Address held by this row, when the row is live.
    addr: LineAddr,
    /// Address-valid flag: participates in CAM matching. Cleared by a
    /// matching write while the row drains.
    addr_valid: bool,
    /// Outstanding playbacks against this row (the paper's `C`-bit
    /// counter).
    counter: u32,
    /// Data words, present once the bank read completed.
    data: Option<Vec<u8>>,
}

impl Row {
    fn is_free(&self) -> bool {
        self.counter == 0
    }
}

/// The delay storage buffer of one bank controller.
///
/// ```
/// use vpnm_core::delay_storage::DelayStorageBuffer;
/// use vpnm_core::request::LineAddr;
///
/// let mut dsb = DelayStorageBuffer::new(2);
/// let row = dsb.allocate(LineAddr(7)).expect("free row");
/// assert_eq!(dsb.lookup(LineAddr(7)), Some(row));
/// dsb.merge(row);                       // a redundant request
/// dsb.fill(row, vec![1, 2, 3]);          // bank access completes
/// assert_eq!(dsb.playback(row).data, Some(vec![1, 2, 3]));
/// assert_eq!(dsb.playback(row).data, Some(vec![1, 2, 3]));
/// assert_eq!(dsb.live_rows(), 0);        // counter drained, row freed
/// ```
#[derive(Debug, Clone)]
pub struct DelayStorageBuffer {
    rows: Vec<Row>,
    live: usize,
}

impl DelayStorageBuffer {
    /// Creates a buffer with `k` rows.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "delay storage buffer needs at least one row");
        DelayStorageBuffer { rows: vec![Row::default(); k], live: 0 }
    }

    /// Capacity `K`.
    pub fn capacity(&self) -> usize {
        self.rows.len()
    }

    /// Rows currently allocated (counter > 0).
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// CAM search: the row currently holding `addr` with a set valid flag.
    pub fn lookup(&self, addr: LineAddr) -> Option<RowId> {
        self.rows
            .iter()
            .position(|r| !r.is_free() && r.addr_valid && r.addr == addr)
            .map(|i| i as RowId)
    }

    /// Allocates a free row for `addr` with counter 1 (the "first zero
    /// circuit" of the paper). Returns `None` when every row is live —
    /// the *delay storage buffer stall* condition.
    pub fn allocate(&mut self, addr: LineAddr) -> Option<RowId> {
        let idx = self.rows.iter().position(Row::is_free)?;
        let row = &mut self.rows[idx];
        row.addr = addr;
        row.addr_valid = true;
        row.counter = 1;
        row.data = None;
        self.live += 1;
        Some(idx as RowId)
    }

    /// Registers a redundant request against a live row (counter += 1).
    ///
    /// # Panics
    ///
    /// Panics if the row is free — merging into a free row is a controller
    /// bug.
    pub fn merge(&mut self, row: RowId) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "merge into free row {row}");
        r.counter += 1;
    }

    /// The address a live row is serving (used when issuing the bank
    /// read).
    ///
    /// # Panics
    ///
    /// Panics if the row is free.
    pub fn row_addr(&self, row: RowId) -> LineAddr {
        let r = &self.rows[row as usize];
        assert!(!r.is_free(), "address of free row {row}");
        r.addr
    }

    /// Stores the data returned by the bank access.
    ///
    /// # Panics
    ///
    /// Panics if the row is free.
    pub fn fill(&mut self, row: RowId, data: Vec<u8>) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "fill of free row {row}");
        r.data = Some(data);
    }

    /// True once [`DelayStorageBuffer::fill`] has run for this row.
    pub fn is_filled(&self, row: RowId) -> bool {
        self.rows[row as usize].data.is_some()
    }

    /// Plays one response back from a row at its deadline, decrementing
    /// the counter and freeing the row when it drains.
    ///
    /// The returned [`Playback`] carries the row's address and its data;
    /// `data` is `None` only if the bank access has not completed — a
    /// deadline violation indicating a mis-configured `D`, which the
    /// controller records as a deadline miss. The counter is consumed
    /// either way so rows cannot leak.
    ///
    /// # Panics
    ///
    /// Panics if the row is free.
    pub fn playback(&mut self, row: RowId) -> Playback {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "playback of free row {row}");
        let addr = r.addr;
        let data = r.data.clone();
        r.counter -= 1;
        if r.counter == 0 {
            r.addr_valid = false;
            r.data = None;
            self.live -= 1;
        }
        Playback { addr, data }
    }

    /// Write-match invalidation: clears the valid flag of the row holding
    /// `addr` (if any) so future reads re-fetch from the bank, while the
    /// row keeps serving already-merged reads. Returns whether a row
    /// matched.
    pub fn invalidate(&mut self, addr: LineAddr) -> bool {
        if let Some(row) = self.lookup(addr) {
            self.rows[row as usize].addr_valid = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_stall() {
        let mut dsb = DelayStorageBuffer::new(3);
        for i in 0..3u64 {
            assert!(dsb.allocate(LineAddr(i)).is_some());
        }
        assert_eq!(dsb.live_rows(), 3);
        assert_eq!(dsb.allocate(LineAddr(99)), None, "K exhausted must stall");
    }

    #[test]
    fn freed_rows_are_reusable() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(1)).unwrap();
        dsb.fill(r, vec![7]);
        assert_eq!(dsb.playback(r).data, Some(vec![7]));
        assert_eq!(dsb.live_rows(), 0);
        assert!(dsb.allocate(LineAddr(2)).is_some());
    }

    #[test]
    fn lookup_only_matches_valid_live_rows() {
        let mut dsb = DelayStorageBuffer::new(2);
        assert_eq!(dsb.lookup(LineAddr(4)), None);
        let r = dsb.allocate(LineAddr(4)).unwrap();
        assert_eq!(dsb.lookup(LineAddr(4)), Some(r));
        dsb.invalidate(LineAddr(4));
        assert_eq!(dsb.lookup(LineAddr(4)), None, "invalidated row must not match");
        // but the row still serves its pending playback
        dsb.fill(r, vec![1]);
        let pb = dsb.playback(r);
        assert_eq!(pb.data, Some(vec![1]));
        assert_eq!(pb.addr, LineAddr(4));
    }

    #[test]
    fn merge_extends_row_lifetime() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(9)).unwrap();
        dsb.merge(r);
        dsb.merge(r);
        dsb.fill(r, vec![5]);
        for _ in 0..3 {
            assert_eq!(dsb.playback(r).data, Some(vec![5]));
        }
        assert_eq!(dsb.live_rows(), 0);
    }

    #[test]
    fn a_b_a_b_uses_two_rows() {
        // The paper's requirement: "we need to handle A,B,A,B,... with
        // only two queue entries."
        let mut dsb = DelayStorageBuffer::new(2);
        let ra = dsb.allocate(LineAddr(0xA)).unwrap();
        let rb = dsb.allocate(LineAddr(0xB)).unwrap();
        for _ in 0..100 {
            dsb.merge(dsb.lookup(LineAddr(0xA)).unwrap());
            dsb.merge(dsb.lookup(LineAddr(0xB)).unwrap());
        }
        assert_eq!(dsb.live_rows(), 2);
        assert_eq!(dsb.lookup(LineAddr(0xA)), Some(ra));
        assert_eq!(dsb.lookup(LineAddr(0xB)), Some(rb));
    }

    #[test]
    fn playback_before_fill_is_a_deadline_miss() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(1)).unwrap();
        assert!(!dsb.is_filled(r));
        let pb = dsb.playback(r);
        assert_eq!(pb.data, None);
        assert_eq!(pb.addr, LineAddr(1));
        // the counter is consumed even on a miss so rows cannot leak
        assert_eq!(dsb.live_rows(), 0);
    }

    #[test]
    fn write_invalidation_allows_new_version_row() {
        let mut dsb = DelayStorageBuffer::new(2);
        let old = dsb.allocate(LineAddr(3)).unwrap();
        dsb.invalidate(LineAddr(3));
        let new = dsb.allocate(LineAddr(3)).unwrap();
        assert_ne!(old, new);
        assert_eq!(dsb.lookup(LineAddr(3)), Some(new));
    }

    #[test]
    #[should_panic(expected = "merge into free row")]
    fn merge_free_row_is_a_bug() {
        let mut dsb = DelayStorageBuffer::new(1);
        dsb.merge(0);
    }

    #[test]
    fn row_addr_reports_address() {
        let mut dsb = DelayStorageBuffer::new(1);
        let r = dsb.allocate(LineAddr(0x42)).unwrap();
        assert_eq!(dsb.row_addr(r), LineAddr(0x42));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Read(u8),
        Fill(u8),
        Playback,
        Invalidate(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::Read),
            any::<u8>().prop_map(Op::Fill),
            Just(Op::Playback),
            any::<u8>().prop_map(Op::Invalidate),
        ]
    }

    proptest! {
        /// Counter conservation: playbacks never exceed reads, live rows
        /// never exceed capacity, and a drained buffer is fully free.
        #[test]
        fn conservation(ops in proptest::collection::vec(op(), 1..300)) {
            let k = 8;
            let mut dsb = DelayStorageBuffer::new(k);
            let mut scheduled: Vec<RowId> = Vec::new(); // pending playbacks, FIFO
            let mut reads = 0u64;
            let mut playbacks = 0u64;
            for op in &ops {
                match op {
                    Op::Read(a) => {
                        let addr = LineAddr(u64::from(*a % 16));
                        let row = match dsb.lookup(addr) {
                            Some(r) => { dsb.merge(r); Some(r) }
                            None => dsb.allocate(addr),
                        };
                        if let Some(r) = row {
                            scheduled.push(r);
                            reads += 1;
                        }
                    }
                    Op::Fill(a) => {
                        if let Some(r) = dsb.lookup(LineAddr(u64::from(*a % 16))) {
                            dsb.fill(r, vec![*a]);
                        }
                    }
                    Op::Playback => {
                        if !scheduled.is_empty() {
                            let r = scheduled.remove(0);
                            dsb.playback(r);
                            playbacks += 1;
                        }
                    }
                    Op::Invalidate(a) => {
                        dsb.invalidate(LineAddr(u64::from(*a % 16)));
                    }
                }
                prop_assert!(dsb.live_rows() <= k);
                prop_assert!(playbacks <= reads);
            }
            // drain all remaining playbacks: buffer must come back empty
            while !scheduled.is_empty() {
                let r = scheduled.remove(0);
                dsb.playback(r);
            }
            prop_assert_eq!(dsb.live_rows(), 0);
        }
    }
}
