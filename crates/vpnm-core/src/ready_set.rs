//! Incrementally maintained ready-bank index for the bus scheduler.
//!
//! The bus scheduler must answer, every *memory* cycle, "which banks have
//! queued work?". The original implementation answered it by scanning all
//! `B` bank controllers; [`ReadySet`] keeps one bit per bank — set exactly
//! when the bank's access queue is non-empty — maintained by the owning
//! controller at the only two places a queue length can change (request
//! submit and grant retirement). Grant picking then costs O(active banks),
//! and an all-clear set licenses the idle fast-forward (every bus grant
//! would be a no-op, so whole memory-cycle windows can be skipped).

/// A fixed-capacity bitset over bank indices with rotated iteration.
///
/// An implementation artifact of this reproduction, not a structure from
/// the paper: it only accelerates the bus scheduler's "which banks have
/// queued work?" query and never changes what is scheduled.
#[derive(Debug, Clone)]
pub struct ReadySet {
    words: Vec<u64>,
    banks: u32,
    count: u32,
}

impl ReadySet {
    /// An empty set over `banks` banks.
    pub fn new(banks: u32) -> Self {
        ReadySet { words: vec![0; (banks as usize).div_ceil(64)], banks, count: 0 }
    }

    /// Number of banks this set covers.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Marks `bank` ready (idempotent).
    #[inline]
    pub fn insert(&mut self, bank: u32) {
        debug_assert!(bank < self.banks);
        let w = &mut self.words[bank as usize / 64];
        let bit = 1u64 << (bank % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
        }
    }

    /// Clears `bank` (idempotent).
    #[inline]
    pub fn remove(&mut self, bank: u32) {
        debug_assert!(bank < self.banks);
        let w = &mut self.words[bank as usize / 64];
        let bit = 1u64 << (bank % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
        }
    }

    /// Whether `bank` is marked ready.
    #[inline]
    pub fn contains(&self, bank: u32) -> bool {
        self.words[bank as usize / 64] & (1u64 << (bank % 64)) != 0
    }

    /// Number of ready banks.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True when no bank is ready.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the ready banks in the rotated order `from, from+1, …,
    /// banks-1, 0, …, from-1` — the same order a round-robin scan starting
    /// at `from` would visit them, which the work-conserving scheduler's
    /// tie-break depends on.
    pub fn iter_from(&self, from: u32) -> RotatedIter<'_> {
        debug_assert!(from < self.banks.max(1));
        RotatedIter { set: self, next: from, remaining: self.banks, yielded: 0, count: self.count }
    }
}

/// Iterator over set bits in rotated order. Skips empty 64-bit words, so a
/// sparse set costs O(words + population) per full scan rather than
/// O(banks).
#[derive(Debug)]
pub struct RotatedIter<'a> {
    set: &'a ReadySet,
    next: u32,
    remaining: u32,
    yielded: u32,
    count: u32,
}

impl Iterator for RotatedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.remaining > 0 && self.yielded < self.count {
            let bank = self.next;
            let word_idx = bank as usize / 64;
            let bit = bank % 64;
            // Bits of this word at positions >= bit, clipped to the span
            // we may still visit before wrapping/finishing.
            let word = self.set.words[word_idx] >> bit;
            if word == 0 {
                // Whole rest of the word is clear: hop to the next word
                // boundary in one step — capped at the wrap point, since
                // rotation wraps at `banks`, not at the word edge.
                let hop = (64 - bit).min(self.remaining).min(self.set.banks - bank);
                self.remaining -= hop;
                self.next = (bank + hop) % self.set.banks.max(1);
                continue;
            }
            let tz = word.trailing_zeros();
            if tz >= self.remaining {
                // The next set bit lies beyond the span (i.e. past the
                // wrap point); consume the span and wrap.
                self.next = (bank + self.remaining) % self.set.banks.max(1);
                self.remaining = 0;
                continue;
            }
            let found = bank + tz;
            let step = tz + 1;
            self.remaining -= step;
            self.next = (bank + step) % self.set.banks.max(1);
            self.yielded += 1;
            return Some(found);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ReadySet::new(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        s.insert(69); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert!(!s.contains(33));
        s.remove(69);
        s.remove(69);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(69));
    }

    #[test]
    fn rotated_iteration_matches_naive_scan() {
        // Exhaustive cross-check against the O(B) modular scan the
        // original scheduler used, over many shapes and start points.
        for banks in [1u32, 2, 3, 32, 63, 64, 65, 130] {
            for pattern in 0..32u32 {
                let mut s = ReadySet::new(banks);
                let mut member = vec![false; banks as usize];
                // a pseudo-random-ish membership derived from the pattern
                for b in 0..banks {
                    if (b.wrapping_mul(2654435761).wrapping_add(pattern * 97)) % 3 == 0 {
                        s.insert(b);
                        member[b as usize] = true;
                    }
                }
                for from in 0..banks {
                    let naive: Vec<u32> = (0..banks)
                        .map(|i| (from + i) % banks)
                        .filter(|&b| member[b as usize])
                        .collect();
                    let fast: Vec<u32> = s.iter_from(from).collect();
                    assert_eq!(fast, naive, "banks={banks} pattern={pattern} from={from}");
                }
            }
        }
    }

    #[test]
    fn empty_and_full_sets_iterate_correctly() {
        let s = ReadySet::new(100);
        assert_eq!(s.iter_from(42).count(), 0);
        let mut f = ReadySet::new(100);
        for b in 0..100 {
            f.insert(b);
        }
        let order: Vec<u32> = f.iter_from(99).collect();
        assert_eq!(order[0], 99);
        assert_eq!(order[1], 0);
        assert_eq!(order.len(), 100);
    }
}
