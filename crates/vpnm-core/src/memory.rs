//! The [`PipelinedMemory`] abstraction and the ideal reference
//! implementation.
//!
//! The whole point of VPNM is that algorithm designers can program against
//! "a flat deeply pipelined memory with fully deterministic latency"
//! (paper Section 1). [`PipelinedMemory`] is that programming model as a
//! trait; [`IdealMemory`] realizes it with a perfect (bank-free, stall-free)
//! memory, serving as the differential-testing oracle: whenever a
//! [`crate::VpnmController`] accepts the same request stream without
//! stalls, its responses must be byte-identical to `IdealMemory`'s.

use crate::controller::RunReport;
use crate::metrics::ControllerMetrics;
use crate::request::{LineAddr, Request, Response, TickOutput};
use crate::snapshot::MetricsSnapshot;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use vpnm_sim::Cycle;

/// A memory with the VPNM timing abstraction: one request per interface
/// cycle in, read responses exactly `delay()` cycles later.
///
/// The first four methods are the required core; the rest is the widened
/// request-lifecycle surface (issue helpers, drain, metrics/snapshot/stall
/// observability) with object-safe defaults, so simple models like
/// [`IdealMemory`] implement only the core while both real engines
/// ([`crate::VpnmController`], [`crate::ReferenceController`]) and the
/// multi-channel [`crate::VpnmFabric`] override the full surface.
/// Differential harnesses, bins and apps can therefore drive any engine —
/// or a fabric of engines — through one generic interface.
pub trait PipelinedMemory {
    /// The deterministic read latency `D` in interface cycles.
    fn delay(&self) -> u64;

    /// Advances one interface cycle, optionally presenting a request.
    fn tick(&mut self, request: Option<Request>) -> TickOutput;

    /// Reads accepted but not yet answered.
    fn outstanding(&self) -> usize;

    /// Current interface cycle.
    fn now(&self) -> Cycle;

    /// Issues a host-tenant read this cycle:
    /// `tick(Some(Request::read(addr)))`.
    fn issue_read(&mut self, addr: LineAddr) -> TickOutput {
        self.tick(Some(Request::read(addr)))
    }

    /// Issues a host-tenant write this cycle:
    /// `tick(Some(Request::write(addr, data)))`.
    fn issue_write(&mut self, addr: LineAddr, data: Bytes) -> TickOutput {
        self.tick(Some(Request::write(addr, data)))
    }

    /// The bank `addr` maps to under this memory's (hashed) bank mapping,
    /// when the model has banks at all. The fabric's per-bank regulator
    /// keys its token buckets off this; models without banks
    /// ([`IdealMemory`]) return `None` and per-bank regulation degrades
    /// to a single bucket per tenant.
    fn bank_of(&self, addr: LineAddr) -> Option<u32> {
        let _ = addr;
        None
    }

    /// Ticks with no new requests until every outstanding read has been
    /// answered, returning the responses in delivery order.
    ///
    /// The default drives [`PipelinedMemory::tick`] under the same budget
    /// the engines use inherently (`(outstanding + 1) * D + D` cycles — a
    /// correct implementation answers everything within `D`; the slack
    /// guards against a broken one looping forever). Engines with a faster
    /// inherent drain (idle fast-forward) override this.
    fn drain(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        let budget = (self.outstanding() as u64 + 1) * self.delay() + self.delay();
        for _ in 0..budget {
            if self.outstanding() == 0 {
                break;
            }
            out.extend(self.tick(None).response);
        }
        out
    }

    /// Advances `requests.len()` interface cycles as one **epoch**,
    /// presenting `requests[i]` on cycle `i`, and returns the collected
    /// responses (in delivery order) plus acceptance counts.
    ///
    /// This is the batched front door the epoch-synchronized
    /// [`crate::VpnmFabric`] workers drive: one call hands an engine a
    /// whole span of cycles, so implementations can amortize per-cycle
    /// costs across the span. The contract is observational equivalence
    /// with the per-tick path: responses, stall accounting, clock, and
    /// metrics must be exactly what the equivalent
    /// [`PipelinedMemory::tick`] sequence produces. The one sanctioned
    /// exception is the `cycles_skipped` drive-mode counter — engines
    /// with event-horizon skipping ([`crate::VpnmController`], which
    /// routes this method to its `run_batch`) account skipped idle spans
    /// there, while the per-tick path grinds through them.
    fn run_epoch(&mut self, requests: &[Option<Request>]) -> RunReport {
        let mut report = RunReport::default();
        for req in requests {
            let presented = req.is_some();
            let out = self.tick(req.clone());
            if let Some(r) = out.response {
                report.responses.push(r);
            }
            match out.stall {
                None => report.accepted += u64::from(presented),
                Some(kind) if kind.is_rejection() => report.rejected += 1,
                Some(_) => report.stalled += 1,
            }
        }
        report
    }

    /// [`PipelinedMemory::run_epoch`] over a **sparse** epoch: advances
    /// `len` interface cycles presenting `requests[k].1` on cycle
    /// `requests[k].0` (offsets strictly increasing, `< len`); all other
    /// cycles are idle.
    ///
    /// Same observational-equivalence contract as `run_epoch` (it *is*
    /// the same epoch, just encoded sparsely). The default densifies and
    /// delegates, which is correct for every engine; engines with
    /// event-horizon skipping override it to jump the gaps directly —
    /// [`crate::VpnmController`] routes it to its `run_sparse`, making
    /// the cost proportional to the requests and responses in the span
    /// rather than to `len`. The [`crate::VpnmFabric`] epoch path feeds
    /// each channel through this method: a channel of a `C`-channel
    /// fabric only ever sees its own `1/C` slice of the stream.
    fn run_epoch_sparse(&mut self, len: u64, requests: &[(u64, Request)]) -> RunReport {
        let mut dense: Vec<Option<Request>> = vec![None; len as usize];
        for (offset, req) in requests {
            dense[*offset as usize] = Some(req.clone());
        }
        self.run_epoch(&dense)
    }

    /// Dense batch issue: advances exactly `requests.len()` interface
    /// cycles presenting `requests[i]` on cycle `i` — the saturated-load
    /// special case of [`PipelinedMemory::run_epoch`] where every slot
    /// carries a request, so implementations can drop the per-cycle
    /// `Option` handling and idle-gap machinery entirely and batch the
    /// address hashing / routing across the whole span.
    ///
    /// Same observational-equivalence contract as `run_epoch` over the
    /// `Some`-wrapped slice. The default ticks; [`crate::VpnmController`]
    /// routes it to its chunked-hashing `issue_batch`, and
    /// [`crate::VpnmFabric`] to its batch-routed epoch path.
    fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        let mut report = RunReport::default();
        for req in requests {
            let out = self.tick(Some(req.clone()));
            if let Some(r) = out.response {
                report.responses.push(r);
            }
            match out.stall {
                None => report.accepted += 1,
                Some(kind) if kind.is_rejection() => report.rejected += 1,
                Some(_) => report.stalled += 1,
            }
        }
        report
    }

    /// The aggregate metrics, for engines that keep them. `None` for
    /// models without an accounting layer ([`IdealMemory`]) and for
    /// composites whose metrics only exist in merged snapshot form
    /// ([`crate::VpnmFabric`]).
    fn metrics(&self) -> Option<&ControllerMetrics> {
        None
    }

    /// A point-in-time [`MetricsSnapshot`], for engines that keep
    /// metrics; composites return their merged fabric-level snapshot.
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Total stalls recorded so far — the flat stall surface used by
    /// MTS-style harnesses. Zero for models that cannot stall.
    fn total_stalls(&self) -> u64 {
        self.snapshot().map_or(0, |s| s.metrics.total_stalls())
    }
}

/// Boxed engines forward everything, so `Box<dyn PipelinedMemory>` (and
/// boxed concrete engines) slot into generic harnesses unchanged.
impl<M: PipelinedMemory + ?Sized> PipelinedMemory for Box<M> {
    fn delay(&self) -> u64 {
        (**self).delay()
    }
    fn tick(&mut self, request: Option<Request>) -> TickOutput {
        (**self).tick(request)
    }
    fn outstanding(&self) -> usize {
        (**self).outstanding()
    }
    fn now(&self) -> Cycle {
        (**self).now()
    }
    fn issue_read(&mut self, addr: LineAddr) -> TickOutput {
        (**self).issue_read(addr)
    }
    fn issue_write(&mut self, addr: LineAddr, data: Bytes) -> TickOutput {
        (**self).issue_write(addr, data)
    }
    fn bank_of(&self, addr: LineAddr) -> Option<u32> {
        (**self).bank_of(addr)
    }
    fn drain(&mut self) -> Vec<Response> {
        (**self).drain()
    }
    fn run_epoch(&mut self, requests: &[Option<Request>]) -> RunReport {
        (**self).run_epoch(requests)
    }
    fn run_epoch_sparse(&mut self, len: u64, requests: &[(u64, Request)]) -> RunReport {
        (**self).run_epoch_sparse(len, requests)
    }
    fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        (**self).issue_batch(requests)
    }
    fn metrics(&self) -> Option<&ControllerMetrics> {
        (**self).metrics()
    }
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        (**self).snapshot()
    }
    fn total_stalls(&self) -> u64 {
        (**self).total_stalls()
    }
}

impl PipelinedMemory for crate::VpnmController {
    fn delay(&self) -> u64 {
        // Explicit paths: the inherent methods share these names.
        crate::VpnmController::delay(self)
    }

    fn tick(&mut self, request: Option<Request>) -> TickOutput {
        crate::VpnmController::tick(self, request)
    }

    fn outstanding(&self) -> usize {
        crate::VpnmController::outstanding(self)
    }

    fn now(&self) -> Cycle {
        crate::VpnmController::now(self)
    }

    fn drain(&mut self) -> Vec<Response> {
        // The inherent drain takes the idle fast-forward path.
        crate::VpnmController::drain(self)
    }

    fn run_epoch(&mut self, requests: &[Option<Request>]) -> RunReport {
        // The inherent batched path: pre-hashed banks plus event-horizon
        // skipping over idle runs. A property test pins it byte-identical
        // to the tick sequence (modulo `cycles_skipped`).
        crate::VpnmController::run_batch(self, requests, requests.len() as u64)
    }

    fn run_epoch_sparse(&mut self, len: u64, requests: &[(u64, Request)]) -> RunReport {
        // The native sparse drive: idle gaps are jumped from the offsets
        // alone, so no dense span is ever materialized or scanned.
        crate::VpnmController::run_sparse(self, len, requests)
    }

    fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        // The dense fast path: chunked batched hashing, no Option or
        // skip machinery. A property test pins it to `run_batch`.
        crate::VpnmController::issue_batch(self, requests)
    }

    fn bank_of(&self, addr: LineAddr) -> Option<u32> {
        Some(crate::VpnmController::bank_of(self, addr))
    }

    fn metrics(&self) -> Option<&ControllerMetrics> {
        Some(crate::VpnmController::metrics(self))
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(crate::VpnmController::snapshot(self))
    }

    fn total_stalls(&self) -> u64 {
        crate::VpnmController::metrics(self).total_stalls()
    }
}

impl PipelinedMemory for crate::ReferenceController {
    fn delay(&self) -> u64 {
        crate::ReferenceController::delay(self)
    }

    fn tick(&mut self, request: Option<Request>) -> TickOutput {
        crate::ReferenceController::tick(self, request)
    }

    fn outstanding(&self) -> usize {
        crate::ReferenceController::outstanding(self)
    }

    fn now(&self) -> Cycle {
        crate::ReferenceController::now(self)
    }

    fn drain(&mut self) -> Vec<Response> {
        crate::ReferenceController::drain(self)
    }

    fn bank_of(&self, addr: LineAddr) -> Option<u32> {
        Some(crate::ReferenceController::bank_of(self, addr))
    }

    fn metrics(&self) -> Option<&ControllerMetrics> {
        Some(crate::ReferenceController::metrics(self))
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(crate::ReferenceController::snapshot(self))
    }

    fn total_stalls(&self) -> u64 {
        crate::ReferenceController::metrics(self).total_stalls()
    }
}

/// A perfect pipelined memory: flat storage, never stalls, exact `D`-cycle
/// latency. Used as the golden model in differential tests and as a
/// drop-in for application development.
///
/// ```
/// use vpnm_core::memory::{IdealMemory, PipelinedMemory};
/// use vpnm_core::{LineAddr, Request};
///
/// let mut mem = IdealMemory::new(4, 8);
/// mem.tick(Some(Request::write(LineAddr(1), vec![9])));
/// mem.tick(Some(Request::read(LineAddr(1))));
/// let mut got = None;
/// for _ in 0..4 {
///     got = got.or(mem.tick(None).response);
/// }
/// assert_eq!(got.unwrap().data[0], 9);
/// ```
#[derive(Debug, Clone)]
pub struct IdealMemory {
    delay: u64,
    cell_bytes: usize,
    store: HashMap<LineAddr, Bytes>,
    in_flight: VecDeque<PendingRead>,
    now: Cycle,
    /// Shared zero cell for reads of never-written addresses.
    zero: Bytes,
}

#[derive(Debug, Clone)]
struct PendingRead {
    addr: LineAddr,
    data: Bytes,
    issued_at: Cycle,
    due_at: Cycle,
    tenant: crate::request::TenantId,
}

impl IdealMemory {
    /// Creates an ideal memory with latency `delay` and `cell_bytes`-byte
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` or `cell_bytes == 0`.
    pub fn new(delay: u64, cell_bytes: usize) -> Self {
        assert!(delay > 0, "delay must be positive");
        assert!(cell_bytes > 0, "cell_bytes must be positive");
        IdealMemory {
            delay,
            cell_bytes,
            store: HashMap::new(),
            in_flight: VecDeque::new(),
            now: Cycle::ZERO,
            zero: Bytes::from(vec![0u8; cell_bytes]),
        }
    }

    /// Zero-time backdoor read (oracle access). Returns a refcounted view
    /// of the stored cell — no copy.
    pub fn peek(&self, addr: LineAddr) -> Bytes {
        self.store.get(&addr).cloned().unwrap_or_else(|| self.zero.clone())
    }
}

impl PipelinedMemory for IdealMemory {
    fn delay(&self) -> u64 {
        self.delay
    }

    fn tick(&mut self, request: Option<Request>) -> TickOutput {
        self.now += 1;
        if let Some(req) = request {
            match req {
                Request::Read { addr, tenant } => {
                    // Data is snapshotted at accept time: in-flight reads
                    // are not affected by later writes, matching the
                    // VPNM row-invalidation semantics.
                    let data = self.peek(addr);
                    self.in_flight.push_back(PendingRead {
                        addr,
                        data,
                        issued_at: self.now,
                        due_at: self.now + self.delay,
                        tenant,
                    });
                }
                Request::Write { addr, data, .. } => {
                    assert!(
                        data.len() <= self.cell_bytes,
                        "write of {} bytes exceeds cell size {}",
                        data.len(),
                        self.cell_bytes
                    );
                    // Pad only short writes (the single copy on this path).
                    let cell = if data.len() == self.cell_bytes {
                        data
                    } else {
                        let mut padded = data.to_vec();
                        padded.resize(self.cell_bytes, 0);
                        Bytes::from(padded)
                    };
                    self.store.insert(addr, cell);
                }
            }
        }
        let response = match self.in_flight.front() {
            Some(p) if p.due_at == self.now => {
                let p = self.in_flight.pop_front().expect("front checked");
                Some(Response {
                    addr: p.addr,
                    data: p.data,
                    issued_at: p.issued_at,
                    completed_at: p.due_at,
                    tenant: p.tenant,
                })
            }
            _ => None,
        };
        TickOutput { response, stall: None }
    }

    fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn now(&self) -> Cycle {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VpnmConfig, VpnmController};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ideal_memory_latency_exact() {
        let mut m = IdealMemory::new(5, 4);
        m.tick(Some(Request::read(LineAddr(0))));
        for i in 0..5u64 {
            let out = m.tick(None);
            if i < 4 {
                assert!(out.response.is_none());
            } else {
                let r = out.response.expect("due at D");
                assert_eq!(r.latency(), 5);
            }
        }
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn ideal_memory_snapshot_semantics() {
        let mut m = IdealMemory::new(3, 1);
        m.tick(Some(Request::write(LineAddr(1), vec![1])));
        m.tick(Some(Request::read(LineAddr(1))));
        // write lands while the read is in flight — read keeps snapshot
        m.tick(Some(Request::write(LineAddr(1), vec![2])));
        let mut responses = Vec::new();
        for _ in 0..4 {
            responses.extend(m.tick(None).response);
        }
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].data[0], 1);
        assert_eq!(m.peek(LineAddr(1))[0], 2);
    }

    /// The core abstraction claim of the paper, checked differentially:
    /// on any request stream VPNM accepts without stalling, its responses
    /// are identical (address, data, timing offset) to a perfect pipeline
    /// of the same depth.
    #[test]
    fn vpnm_equals_ideal_on_stall_free_streams() {
        let mut vpnm = VpnmController::new(VpnmConfig::test_roomy(), 11).unwrap();
        let mut ideal = IdealMemory::new(vpnm.delay(), 8);
        let mut rng = StdRng::seed_from_u64(21);
        let mut vpnm_rs = Vec::new();
        let mut ideal_rs = Vec::new();
        for _ in 0..5000 {
            let addr = rng.gen_range(0..256u64);
            let req = if rng.gen_bool(0.25) {
                Request::write(LineAddr(addr), vec![rng.gen::<u8>()])
            } else {
                Request::read(LineAddr(addr))
            };
            let out_v = vpnm.tick(Some(req.clone()));
            assert!(out_v.accepted(), "stall would invalidate the comparison");
            let out_i = ideal.tick(Some(req));
            vpnm_rs.extend(out_v.response);
            ideal_rs.extend(out_i.response);
        }
        // drain both
        while vpnm.outstanding() > 0 || ideal.outstanding() > 0 {
            vpnm_rs.extend(vpnm.tick(None).response);
            ideal_rs.extend(ideal.tick(None).response);
        }
        assert_eq!(vpnm_rs.len(), ideal_rs.len());
        for (v, i) in vpnm_rs.iter().zip(&ideal_rs) {
            assert_eq!(v.addr, i.addr);
            assert_eq!(v.issued_at, i.issued_at);
            assert_eq!(v.completed_at, i.completed_at);
            assert_eq!(v.data[0], i.data[0], "data mismatch at {}", v.addr);
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut mems: Vec<Box<dyn PipelinedMemory>> = vec![
            Box::new(IdealMemory::new(4, 8)),
            Box::new(VpnmController::new(VpnmConfig::small_test(), 0).unwrap()),
        ];
        for m in &mut mems {
            m.tick(Some(Request::read(LineAddr(3))));
            assert_eq!(m.outstanding(), 1);
            assert!(m.delay() > 0);
        }
    }
}
