//! Controller-level accounting: throughput, merges, stalls, occupancy.

use crate::request::StallKind;
use vpnm_sim::{Cycle, RunningStats};

/// Counters and distributions accumulated by a running controller.
///
/// `first_stall_at` is the measured quantity behind the paper's Mean Time
/// to Stall experiments: run a workload, read off when (if ever) the first
/// stall happened.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerMetrics {
    /// Reads accepted at the interface.
    pub reads_accepted: u64,
    /// Of those, reads merged into an in-flight row (redundant accesses,
    /// paper Section 3.4).
    pub reads_merged: u64,
    /// Writes accepted at the interface.
    pub writes_accepted: u64,
    /// Read responses delivered.
    pub responses: u64,
    /// Stall events by kind.
    pub delay_storage_stalls: u64,
    /// Bank access queue stalls.
    pub access_queue_stalls: u64,
    /// Write buffer stalls.
    pub write_buffer_stalls: u64,
    /// Malformed requests rejected (out-of-range address or oversized
    /// write payload). Rejections are not stalls: they do not count
    /// toward [`total_stalls`](Self::total_stalls) and do not set
    /// [`first_stall_at`](Self::first_stall_at), because they say nothing
    /// about the controller's capacity — only about the caller.
    pub malformed_rejections: u64,
    /// Interface cycle of the first stall, if any ever happened.
    pub first_stall_at: Option<Cycle>,
    /// Deadline misses: playbacks whose data had not arrived (must stay 0
    /// for a validated config; counted rather than panicking so that
    /// deliberately mis-configured experiments can observe it).
    pub deadline_misses: u64,
    /// Distribution of delay-storage-buffer occupancy sampled per
    /// interface cycle.
    pub storage_occupancy: RunningStats,
    /// Distribution of bank-access-queue depth sampled per interface
    /// cycle (max across banks).
    pub queue_depth: RunningStats,
}

impl ControllerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a stall (or rejection) of the given kind at `now`.
    pub fn record_stall(&mut self, kind: StallKind, now: Cycle) {
        match kind {
            StallKind::DelayStorage => self.delay_storage_stalls += 1,
            StallKind::AccessQueue => self.access_queue_stalls += 1,
            StallKind::WriteBuffer => self.write_buffer_stalls += 1,
            StallKind::AddressRange | StallKind::OversizedWrite => {
                self.malformed_rejections += 1;
                // Rejections never count as the first stall.
                return;
            }
        }
        if self.first_stall_at.is_none() {
            self.first_stall_at = Some(now);
        }
    }

    /// Total stalls of all kinds.
    pub fn total_stalls(&self) -> u64 {
        self.delay_storage_stalls + self.access_queue_stalls + self.write_buffer_stalls
    }

    /// Total requests accepted.
    pub fn accepted(&self) -> u64 {
        self.reads_accepted + self.writes_accepted
    }

    /// Fraction of accepted reads that were merged.
    pub fn merge_rate(&self) -> f64 {
        if self.reads_accepted == 0 {
            0.0
        } else {
            self.reads_merged as f64 / self.reads_accepted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_recording_tracks_first() {
        let mut m = ControllerMetrics::new();
        m.record_stall(StallKind::AccessQueue, Cycle::new(10));
        m.record_stall(StallKind::DelayStorage, Cycle::new(20));
        m.record_stall(StallKind::WriteBuffer, Cycle::new(30));
        assert_eq!(m.first_stall_at, Some(Cycle::new(10)));
        assert_eq!(m.total_stalls(), 3);
        assert_eq!(m.access_queue_stalls, 1);
        assert_eq!(m.delay_storage_stalls, 1);
        assert_eq!(m.write_buffer_stalls, 1);
    }

    #[test]
    fn rejections_do_not_count_as_stalls() {
        let mut m = ControllerMetrics::new();
        m.record_stall(StallKind::AddressRange, Cycle::new(5));
        m.record_stall(StallKind::OversizedWrite, Cycle::new(6));
        assert_eq!(m.malformed_rejections, 2);
        assert_eq!(m.total_stalls(), 0);
        assert_eq!(m.first_stall_at, None);
        // A real stall after a rejection still registers as the first.
        m.record_stall(StallKind::AccessQueue, Cycle::new(7));
        assert_eq!(m.first_stall_at, Some(Cycle::new(7)));
        assert_eq!(m.total_stalls(), 1);
    }

    #[test]
    fn merge_rate_math() {
        let mut m = ControllerMetrics::new();
        assert_eq!(m.merge_rate(), 0.0);
        m.reads_accepted = 10;
        m.reads_merged = 4;
        assert!((m.merge_rate() - 0.4).abs() < 1e-12);
        m.writes_accepted = 5;
        assert_eq!(m.accepted(), 15);
    }
}
