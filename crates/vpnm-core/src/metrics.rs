//! Controller-level accounting: throughput, merges, stalls, occupancy.
//!
//! Two layers of instrumentation live here:
//!
//! 1. **Always-on aggregates** ([`ControllerMetrics`]): scalar counters,
//!    per-bank high-water marks, and log2-bucketed distributions. These are
//!    cheap enough (a handful of compares and adds per interface cycle) to
//!    keep enabled in every build, including benchmark runs.
//! 2. **Forensic event tracing** (see [`crate::forensics`]): a ring buffer
//!    of individual lifecycle events, compile-time gated behind the
//!    `forensics` cargo feature and runtime gated by
//!    [`crate::VpnmConfig::forensics_capacity`].
//!
//! Both engines — the fast [`crate::VpnmController`] and the seed
//! [`crate::ReferenceController`] — maintain the same
//! [`ControllerMetrics`], and the differential suite asserts exact
//! equality, so every aggregate defined here is cross-checked between two
//! independent implementations.

use crate::request::StallKind;
use vpnm_sim::{Cycle, Histogram};

/// Counters and distributions accumulated by a running controller.
///
/// `first_stall_at` is the measured quantity behind the paper's Mean Time
/// to Stall experiments: run a workload, read off when (if ever) the first
/// stall happened.
///
/// Per-bank vectors are sized by [`ControllerMetrics::with_banks`]; the
/// plain [`ControllerMetrics::new`] constructor leaves them empty (useful
/// for unit tests that only exercise the scalar counters).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerMetrics {
    /// Reads accepted at the interface.
    pub reads_accepted: u64,
    /// Of those, reads merged into an in-flight row (redundant accesses,
    /// paper Section 3.4).
    pub reads_merged: u64,
    /// Writes accepted at the interface.
    pub writes_accepted: u64,
    /// Read responses delivered.
    pub responses: u64,
    /// Stall events by kind.
    pub delay_storage_stalls: u64,
    /// Bank access queue stalls.
    pub access_queue_stalls: u64,
    /// Write buffer stalls.
    pub write_buffer_stalls: u64,
    /// Malformed requests rejected (out-of-range address or oversized
    /// write payload). Rejections are not stalls: they do not count
    /// toward [`total_stalls`](Self::total_stalls) and do not set
    /// [`first_stall_at`](Self::first_stall_at), because they say nothing
    /// about the controller's capacity — only about the caller.
    pub malformed_rejections: u64,
    /// Interface cycle of the first stall, if any ever happened.
    pub first_stall_at: Option<Cycle>,
    /// Deadline misses: playbacks whose data had not arrived (must stay 0
    /// for a validated config; counted rather than panicking so that
    /// deliberately mis-configured experiments can observe it).
    pub deadline_misses: u64,
    /// Log2-bucketed histogram of per-interface-cycle bank-access-queue
    /// depth samples (max across banks; bucket 0 = depths 0..2, bucket
    /// `i` = `[2^i, 2^(i+1))`). The histogram's exact count/sum/min/max
    /// sidecar supersedes the floating-point Welford accumulator the seed
    /// carried: integer-exact aggregates admit an O(1) bulk update
    /// ([`sample_cycles`](Self::sample_cycles)) that stays bit-identical
    /// across engines and across batched vs per-tick driving, which
    /// order-dependent float accumulation cannot.
    pub queue_depth_hist: Histogram,
    /// Log2-bucketed histogram of per-interface-cycle total delay-storage
    /// occupancy samples.
    pub storage_occupancy_hist: Histogram,
    /// Per-bank high-water mark of bank access queue (BAQ) depth.
    pub bank_queue_hwm: Vec<u32>,
    /// Per-bank high-water mark of delay storage buffer (DSB) row
    /// occupancy, sampled at interface-cycle boundaries.
    pub bank_storage_hwm: Vec<u32>,
    /// Per-bank high-water mark of write buffer depth.
    pub bank_write_hwm: Vec<u32>,
    /// High-water mark of outstanding reads (accepted, response not yet
    /// delivered) — the peak load on the circular delay buffer (CDB).
    pub outstanding_hwm: u64,
}

impl ControllerMetrics {
    /// Creates zeroed metrics with empty per-bank vectors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed metrics with per-bank high-water-mark vectors sized
    /// for `banks` banks. Both engines construct metrics this way so that
    /// the differential suite can compare them with `==`.
    pub fn with_banks(banks: usize) -> Self {
        ControllerMetrics {
            bank_queue_hwm: vec![0; banks],
            bank_storage_hwm: vec![0; banks],
            bank_write_hwm: vec![0; banks],
            ..Self::default()
        }
    }

    /// Records a stall (or rejection) of the given kind at `now`.
    pub fn record_stall(&mut self, kind: StallKind, now: Cycle) {
        match kind {
            StallKind::DelayStorage => self.delay_storage_stalls += 1,
            StallKind::AccessQueue => self.access_queue_stalls += 1,
            StallKind::WriteBuffer => self.write_buffer_stalls += 1,
            // QoS deferrals are accounted in the fabric's per-tenant
            // ledger, never in a channel's counters — they happen at the
            // ingress, before the request reaches any channel.
            StallKind::Throttled => return,
            StallKind::AddressRange | StallKind::OversizedWrite => {
                self.malformed_rejections += 1;
                // Rejections never count as the first stall.
                return;
            }
        }
        if self.first_stall_at.is_none() {
            self.first_stall_at = Some(now);
        }
    }

    /// Records the per-interface-cycle depth/occupancy samples into the
    /// log2 histograms. Called exactly once per interface cycle by each
    /// engine with identical sample values, so the distributions stay
    /// comparable with `==`.
    #[inline]
    pub fn sample_cycle(&mut self, max_queue_depth: u64, storage_live: u64) {
        self.queue_depth_hist.record(max_queue_depth);
        self.storage_occupancy_hist.record(storage_live);
    }

    /// Records `n` interface cycles that all share the same sample values
    /// in O(1) — the event-horizon skip's accounting primitive. Exactly
    /// equivalent to `n` calls to [`sample_cycle`](Self::sample_cycle)
    /// (see [`Histogram::record_n`]).
    #[inline]
    pub fn sample_cycles(&mut self, max_queue_depth: u64, storage_live: u64, n: u64) {
        self.queue_depth_hist.record_n(max_queue_depth, n);
        self.storage_occupancy_hist.record_n(storage_live, n);
    }

    /// Raises the BAQ depth high-water mark for `bank` if `depth` exceeds
    /// it. No-op (and no panic) when per-bank vectors were not sized.
    #[inline]
    pub fn note_bank_queue_depth(&mut self, bank: usize, depth: u32) {
        if let Some(h) = self.bank_queue_hwm.get_mut(bank) {
            if depth > *h {
                *h = depth;
            }
        }
    }

    /// Raises the DSB occupancy high-water mark for `bank`.
    #[inline]
    pub fn note_bank_storage(&mut self, bank: usize, occupancy: u32) {
        if let Some(h) = self.bank_storage_hwm.get_mut(bank) {
            if occupancy > *h {
                *h = occupancy;
            }
        }
    }

    /// Raises the write-buffer depth high-water mark for `bank`.
    #[inline]
    pub fn note_bank_write_depth(&mut self, bank: usize, depth: u32) {
        if let Some(h) = self.bank_write_hwm.get_mut(bank) {
            if depth > *h {
                *h = depth;
            }
        }
    }

    /// Raises the outstanding-reads high-water mark.
    #[inline]
    pub fn note_outstanding(&mut self, outstanding: u64) {
        if outstanding > self.outstanding_hwm {
            self.outstanding_hwm = outstanding;
        }
    }

    /// Folds `other` into `self` — the fabric-level metrics merge.
    ///
    /// Scalar counters add, `first_stall_at` takes the earliest,
    /// histograms merge exactly ([`Histogram::merge`]), and the per-bank
    /// high-water-mark vectors *concatenate* in merge order, so a
    /// `C`-channel fabric reports `C x B` per-bank entries grouped by
    /// channel. `outstanding_hwm` adds, which makes the merged value an
    /// upper bound on the fabric-level peak (per-channel peaks need not
    /// coincide in time); it is exact for a single channel.
    ///
    /// Merging a freshly constructed `ControllerMetrics::new()` into
    /// anything (or vice versa) is the identity on every scalar, so a
    /// one-channel merge reproduces the input bit-for-bit (modulo the
    /// concatenated per-bank vectors, which are then identical anyway).
    pub fn merge_from(&mut self, other: &ControllerMetrics) {
        self.reads_accepted += other.reads_accepted;
        self.reads_merged += other.reads_merged;
        self.writes_accepted += other.writes_accepted;
        self.responses += other.responses;
        self.delay_storage_stalls += other.delay_storage_stalls;
        self.access_queue_stalls += other.access_queue_stalls;
        self.write_buffer_stalls += other.write_buffer_stalls;
        self.malformed_rejections += other.malformed_rejections;
        self.deadline_misses += other.deadline_misses;
        self.first_stall_at = match (self.first_stall_at, other.first_stall_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.queue_depth_hist.merge(&other.queue_depth_hist);
        self.storage_occupancy_hist.merge(&other.storage_occupancy_hist);
        self.bank_queue_hwm.extend_from_slice(&other.bank_queue_hwm);
        self.bank_storage_hwm.extend_from_slice(&other.bank_storage_hwm);
        self.bank_write_hwm.extend_from_slice(&other.bank_write_hwm);
        self.outstanding_hwm += other.outstanding_hwm;
    }

    /// Total stalls of all kinds.
    pub fn total_stalls(&self) -> u64 {
        self.delay_storage_stalls + self.access_queue_stalls + self.write_buffer_stalls
    }

    /// Total requests accepted.
    pub fn accepted(&self) -> u64 {
        self.reads_accepted + self.writes_accepted
    }

    /// Total requests offered at the interface: accepted + stalled +
    /// rejected.
    pub fn offered(&self) -> u64 {
        self.accepted() + self.total_stalls() + self.malformed_rejections
    }

    /// Fraction of accepted reads that were merged.
    pub fn merge_rate(&self) -> f64 {
        if self.reads_accepted == 0 {
            0.0
        } else {
            self.reads_merged as f64 / self.reads_accepted as f64
        }
    }

    /// Fraction of offered requests that stalled. `0.0` on an empty run.
    pub fn stall_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.total_stalls() as f64 / offered as f64
        }
    }

    /// Fraction of delivered responses that missed their deadline. `0.0`
    /// on an empty run; must stay `0.0` for any validated configuration.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.responses as f64
        }
    }

    /// Peak DSB load factor across banks: the largest per-bank storage
    /// high-water mark divided by the per-bank row capacity `k`. This is
    /// the "merge-CAM load factor" of the observability layer — how close
    /// any bank's CAM-indexed delay storage came to overflowing.
    ///
    /// Returns `0.0` when `k` is zero or per-bank vectors were not sized.
    pub fn peak_storage_load_factor(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let peak = self.bank_storage_hwm.iter().copied().max().unwrap_or(0);
        peak as f64 / k as f64
    }

    /// Peak delay-ring (CDB) utilization: the outstanding-reads high-water
    /// mark divided by the ring capacity (the deterministic delay `D`).
    ///
    /// Returns `0.0` when `delay` is zero.
    pub fn delay_ring_utilization(&self, delay: u64) -> f64 {
        if delay == 0 {
            0.0
        } else {
            self.outstanding_hwm as f64 / delay as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_recording_tracks_first() {
        let mut m = ControllerMetrics::new();
        m.record_stall(StallKind::AccessQueue, Cycle::new(10));
        m.record_stall(StallKind::DelayStorage, Cycle::new(20));
        m.record_stall(StallKind::WriteBuffer, Cycle::new(30));
        assert_eq!(m.first_stall_at, Some(Cycle::new(10)));
        assert_eq!(m.total_stalls(), 3);
        assert_eq!(m.access_queue_stalls, 1);
        assert_eq!(m.delay_storage_stalls, 1);
        assert_eq!(m.write_buffer_stalls, 1);
    }

    #[test]
    fn rejections_do_not_count_as_stalls() {
        let mut m = ControllerMetrics::new();
        m.record_stall(StallKind::AddressRange, Cycle::new(5));
        m.record_stall(StallKind::OversizedWrite, Cycle::new(6));
        assert_eq!(m.malformed_rejections, 2);
        assert_eq!(m.total_stalls(), 0);
        assert_eq!(m.first_stall_at, None);
        // A real stall after a rejection still registers as the first.
        m.record_stall(StallKind::AccessQueue, Cycle::new(7));
        assert_eq!(m.first_stall_at, Some(Cycle::new(7)));
        assert_eq!(m.total_stalls(), 1);
    }

    #[test]
    fn merge_rate_math() {
        let mut m = ControllerMetrics::new();
        assert_eq!(m.merge_rate(), 0.0);
        m.reads_accepted = 10;
        m.reads_merged = 4;
        assert!((m.merge_rate() - 0.4).abs() < 1e-12);
        m.writes_accepted = 5;
        assert_eq!(m.accepted(), 15);
    }

    #[test]
    fn rates_are_zero_on_empty_run() {
        // Division-by-zero guards: a controller that never saw a request
        // must report clean zero rates, not NaN.
        let m = ControllerMetrics::new();
        assert_eq!(m.offered(), 0);
        assert_eq!(m.merge_rate(), 0.0);
        assert_eq!(m.stall_rate(), 0.0);
        assert_eq!(m.deadline_miss_rate(), 0.0);
        assert_eq!(m.peak_storage_load_factor(0), 0.0);
        assert_eq!(m.peak_storage_load_factor(16), 0.0);
        assert_eq!(m.delay_ring_utilization(0), 0.0);
        assert_eq!(m.delay_ring_utilization(1000), 0.0);
        assert!(m.merge_rate().is_finite());
        assert!(m.stall_rate().is_finite());
    }

    #[test]
    fn rates_stay_finite_on_saturated_long_runs() {
        // Saturation: counters near u64::MAX must not overflow into NaN or
        // infinity when converted to rates.
        let mut m = ControllerMetrics::new();
        m.reads_accepted = u64::MAX / 2;
        m.reads_merged = u64::MAX / 2;
        m.writes_accepted = u64::MAX / 4;
        m.access_queue_stalls = u64::MAX / 8;
        m.responses = u64::MAX / 2;
        m.deadline_misses = u64::MAX / 2;
        assert!(m.merge_rate().is_finite());
        assert!((m.merge_rate() - 1.0).abs() < 1e-9);
        assert!(m.stall_rate().is_finite());
        assert!(m.stall_rate() > 0.0 && m.stall_rate() < 1.0);
        assert!((m.deadline_miss_rate() - 1.0).abs() < 1e-9);
        m.outstanding_hwm = u64::MAX;
        assert!(m.delay_ring_utilization(1).is_finite());
    }

    #[test]
    fn stall_rate_counts_all_dispositions() {
        let mut m = ControllerMetrics::new();
        m.reads_accepted = 6;
        m.writes_accepted = 2;
        m.access_queue_stalls = 1;
        m.write_buffer_stalls = 1;
        m.malformed_rejections = 2;
        assert_eq!(m.offered(), 12);
        assert!((m.stall_rate() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn per_bank_hwms_track_maxima() {
        let mut m = ControllerMetrics::with_banks(4);
        m.note_bank_queue_depth(1, 3);
        m.note_bank_queue_depth(1, 2); // lower: ignored
        m.note_bank_storage(0, 7);
        m.note_bank_storage(0, 9);
        m.note_bank_write_depth(3, 1);
        assert_eq!(m.bank_queue_hwm, vec![0, 3, 0, 0]);
        assert_eq!(m.bank_storage_hwm, vec![9, 0, 0, 0]);
        assert_eq!(m.bank_write_hwm, vec![0, 0, 0, 1]);
        assert!((m.peak_storage_load_factor(16) - 9.0 / 16.0).abs() < 1e-12);
        // Out-of-range bank indices are ignored, not a panic.
        m.note_bank_queue_depth(99, 100);
        assert_eq!(m.bank_queue_hwm, vec![0, 3, 0, 0]);
        // Unsized vectors (plain `new`) are also safe.
        let mut empty = ControllerMetrics::new();
        empty.note_bank_storage(0, 5);
        assert_eq!(empty.peak_storage_load_factor(16), 0.0);
    }

    #[test]
    fn outstanding_hwm_and_ring_utilization() {
        let mut m = ControllerMetrics::new();
        m.note_outstanding(10);
        m.note_outstanding(4);
        m.note_outstanding(12);
        assert_eq!(m.outstanding_hwm, 12);
        assert!((m.delay_ring_utilization(48) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_from_identity_and_addition() {
        let mut a = ControllerMetrics::with_banks(2);
        a.reads_accepted = 10;
        a.reads_merged = 1;
        a.responses = 9;
        a.access_queue_stalls = 2;
        a.first_stall_at = Some(Cycle::new(30));
        a.sample_cycle(3, 12);
        a.note_bank_storage(1, 5);
        a.note_outstanding(4);

        // Folding into empty metrics reproduces the input exactly.
        let mut merged = ControllerMetrics::new();
        merged.merge_from(&a);
        assert_eq!(merged, a);

        let mut b = ControllerMetrics::with_banks(2);
        b.reads_accepted = 5;
        b.delay_storage_stalls = 1;
        b.first_stall_at = Some(Cycle::new(12));
        b.sample_cycle(1, 7);
        b.note_bank_queue_depth(0, 2);
        b.note_outstanding(3);
        merged.merge_from(&b);
        assert_eq!(merged.reads_accepted, 15);
        assert_eq!(merged.total_stalls(), 3);
        assert_eq!(merged.first_stall_at, Some(Cycle::new(12)), "earliest stall wins");
        assert_eq!(merged.queue_depth_hist.total(), 2);
        assert_eq!(merged.bank_storage_hwm, vec![0, 5, 0, 0], "per-bank vectors concatenate");
        assert_eq!(merged.bank_queue_hwm, vec![0, 0, 2, 0]);
        assert_eq!(merged.outstanding_hwm, 7, "summed upper bound");
        // first_stall_at survives merging with a stall-free side.
        let mut c = ControllerMetrics::new();
        c.merge_from(&b);
        assert_eq!(c.first_stall_at, Some(Cycle::new(12)));
    }

    #[test]
    fn sample_cycle_feeds_histograms() {
        let mut m = ControllerMetrics::new();
        m.sample_cycle(3, 100);
        m.sample_cycle(1, 50);
        assert_eq!(m.queue_depth_hist.total(), 2);
        assert_eq!(m.storage_occupancy_hist.total(), 2);
        assert_eq!(m.queue_depth_hist.max(), Some(3));
        assert_eq!(m.storage_occupancy_hist.max(), Some(100));
    }

    #[test]
    fn sample_cycles_bulk_equals_loop() {
        let mut bulk = ControllerMetrics::new();
        let mut looped = ControllerMetrics::new();
        bulk.sample_cycle(2, 9);
        looped.sample_cycle(2, 9);
        bulk.sample_cycles(0, 5, 100);
        for _ in 0..100 {
            looped.sample_cycle(0, 5);
        }
        assert_eq!(bulk, looped);
        // n = 0 is a no-op.
        bulk.sample_cycles(7, 7, 0);
        assert_eq!(bulk, looped);
    }
}
