//! Request, response, and stall types — the controller's wire format.
//!
//! Cell payloads travel as [`bytes::Bytes`]: a cheaply cloneable,
//! reference-counted byte slice. Cloning a payload on its way through the
//! delay storage buffer, delay line, and response path bumps a refcount
//! instead of copying the cell, which keeps the controller's steady-state
//! data path allocation-free.
//!
//! Requests and responses carry a [`TenantId`]: two bytes identifying
//! which client of a shared fabric issued the access. Single-tenant
//! callers never notice it — the convenience constructors default to
//! [`TenantId::HOST`], and a controller without a regulator treats every
//! tenant identically (the ID is dead freight riding the existing enum
//! padding). The fabric's QoS layer (`regulator`) keys its token buckets
//! and its per-tenant snapshot section off this ID.

use bytes::Bytes;
use std::fmt;
use vpnm_sim::Cycle;

/// A memory-line (cell) address presented at the VPNM interface.
///
/// Addresses are cell-granular (the paper buffers 64-byte cells); the
/// controller's universal hash decides which bank a given address lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// Identifies which client of a shared fabric issued a request.
///
/// Compact (`u16`) so it rides in the `Request`/`Response` enum padding
/// for free. Tenant 0 is [`TenantId::HOST`], the implicit tenant of every
/// single-tenant caller; multi-tenant runs number their tenants densely
/// from 0 so the fabric's per-tenant ledger can be a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The implicit tenant of single-tenant callers (tenant 0).
    pub const HOST: TenantId = TenantId(0);

    /// The dense per-tenant array index for this ID.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u16> for TenantId {
    fn from(v: u16) -> Self {
        TenantId(v)
    }
}

/// One request presented at the interface (at most one per interface
/// cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read the cell at `addr`; the reply arrives exactly `D` interface
    /// cycles later.
    Read {
        /// Cell address.
        addr: LineAddr,
        /// Issuing tenant ([`TenantId::HOST`] for single-tenant callers).
        tenant: TenantId,
    },
    /// Write `data` to the cell at `addr`; fire-and-forget (the paper:
    /// "unlike read requests, we need not wait for the write requests to
    /// complete").
    Write {
        /// Cell contents (at most the configured cell size). `Bytes`
        /// converts from `Vec<u8>`/`&[u8]` via `.into()`.
        addr: LineAddr,
        /// Cell contents (at most the configured cell size).
        data: Bytes,
        /// Issuing tenant ([`TenantId::HOST`] for single-tenant callers).
        tenant: TenantId,
    },
}

impl Request {
    /// Convenience constructor for a host-tenant read.
    #[inline]
    pub fn read(addr: LineAddr) -> Self {
        Request::Read { addr, tenant: TenantId::HOST }
    }

    /// Convenience constructor for a read on behalf of `tenant`.
    #[inline]
    pub fn read_as(tenant: TenantId, addr: LineAddr) -> Self {
        Request::Read { addr, tenant }
    }

    /// Convenience constructor for a host-tenant write carrying any
    /// byte-like payload.
    pub fn write(addr: LineAddr, data: impl Into<Bytes>) -> Self {
        Request::Write { addr, data: data.into(), tenant: TenantId::HOST }
    }

    /// Convenience constructor for a write on behalf of `tenant`.
    pub fn write_as(tenant: TenantId, addr: LineAddr, data: impl Into<Bytes>) -> Self {
        Request::Write { addr, data: data.into(), tenant }
    }

    /// The address this request targets.
    pub fn addr(&self) -> LineAddr {
        match self {
            Request::Read { addr, .. } | Request::Write { addr, .. } => *addr,
        }
    }

    /// The tenant that issued this request.
    pub fn tenant(&self) -> TenantId {
        match self {
            Request::Read { tenant, .. } | Request::Write { tenant, .. } => *tenant,
        }
    }

    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Request::Read { .. })
    }
}

/// A completed read delivered at its deterministic deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The address that was read.
    pub addr: LineAddr,
    /// The data (exactly one cell). Shared with the controller's internal
    /// buffers — cloning a `Response` does not copy the cell.
    pub data: Bytes,
    /// Interface cycle the read was accepted.
    pub issued_at: Cycle,
    /// Interface cycle the response was delivered (`issued_at + D`).
    pub completed_at: Cycle,
    /// The tenant whose read this answers (echoed from the request).
    pub tenant: TenantId,
}

impl Response {
    /// Observed latency in interface cycles — always exactly `D` for a
    /// correctly configured controller.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// Why a submitted request was not accepted this cycle.
///
/// The first three are the stall conditions of paper Section 4.3:
/// back-pressure from full structures, where the request is well-formed
/// and retrying later can succeed. [`Throttled`](Self::Throttled) is the
/// QoS analogue at the fabric ingress: the issuing tenant's token bucket
/// is empty, so the request is deferred — well-formed, retryable once the
/// bucket refills. The last two are *rejections* of malformed requests
/// (out-of-range address, oversized payload): retrying the identical
/// request can never succeed, so they are accounted separately from
/// stalls and never satisfied by [`StallPolicy::Block`](crate::StallPolicy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// No free row in the delay storage buffer (`K` exhausted).
    DelayStorage,
    /// The bank access queue is full (`Q` exhausted).
    AccessQueue,
    /// The write buffer FIFO is full.
    WriteBuffer,
    /// Deferred at the fabric ingress: the issuing tenant's bandwidth
    /// budget (token bucket) is exhausted this cycle. Accounted in the
    /// fabric's per-tenant ledger, never in a channel's stall counters.
    Throttled,
    /// Rejected: the address is outside the configured capacity.
    AddressRange,
    /// Rejected: write payload larger than the configured cell size.
    OversizedWrite,
}

impl StallKind {
    /// True for the rejection kinds ([`AddressRange`](Self::AddressRange),
    /// [`OversizedWrite`](Self::OversizedWrite)): the request is malformed
    /// and retrying it verbatim can never succeed.
    pub fn is_rejection(self) -> bool {
        matches!(self, StallKind::AddressRange | StallKind::OversizedWrite)
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallKind::DelayStorage => "delay storage buffer stall",
            StallKind::AccessQueue => "bank access queue stall",
            StallKind::WriteBuffer => "write buffer stall",
            StallKind::Throttled => "tenant bandwidth budget exhausted (deferred)",
            StallKind::AddressRange => "address out of range (rejected)",
            StallKind::OversizedWrite => "write larger than cell (rejected)",
        };
        f.write_str(s)
    }
}

/// Everything that happened during one interface cycle of the controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutput {
    /// The read response due this cycle, if any (at most one: the
    /// interface accepts at most one request per cycle, so at most one can
    /// be due per cycle).
    pub response: Option<Response>,
    /// If the submitted request could not be accepted, why. The request
    /// was *not* enqueued; the caller decides whether to retry it next
    /// cycle (stall the line card) or drop it. Rejection kinds
    /// ([`StallKind::is_rejection`]) must not be retried.
    pub stall: Option<StallKind>,
}

impl TickOutput {
    /// True when the submitted request (if any) was accepted.
    pub fn accepted(&self) -> bool {
        self.stall.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = Request::read(LineAddr(5));
        let w = Request::write(LineAddr(6), vec![1]);
        assert!(r.is_read());
        assert!(!w.is_read());
        assert_eq!(r.addr(), LineAddr(5));
        assert_eq!(w.addr(), LineAddr(6));
        assert_eq!(r.tenant(), TenantId::HOST);
        assert_eq!(w.tenant(), TenantId::HOST);
    }

    #[test]
    fn tenant_constructors_tag_requests() {
        let r = Request::read_as(TenantId(3), LineAddr(5));
        let w = Request::write_as(TenantId(7), LineAddr(6), vec![1]);
        assert_eq!(r.tenant(), TenantId(3));
        assert_eq!(w.tenant(), TenantId(7));
        assert_eq!(TenantId(3).index(), 3);
        assert_eq!(TenantId::from(9u16), TenantId(9));
        assert_eq!(TenantId(12).to_string(), "t12");
        assert_eq!(TenantId::default(), TenantId::HOST);
    }

    #[test]
    fn response_latency() {
        let resp = Response {
            addr: LineAddr(0),
            data: Bytes::new(),
            issued_at: Cycle::new(10),
            completed_at: Cycle::new(40),
            tenant: TenantId::HOST,
        };
        assert_eq!(resp.latency(), 30);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(LineAddr(255).to_string(), "0xff");
        assert!(StallKind::DelayStorage.to_string().contains("delay storage"));
        assert!(StallKind::AccessQueue.to_string().contains("access queue"));
        assert!(StallKind::WriteBuffer.to_string().contains("write buffer"));
        assert!(StallKind::Throttled.to_string().contains("deferred"));
        assert!(StallKind::AddressRange.to_string().contains("rejected"));
        assert!(StallKind::OversizedWrite.to_string().contains("rejected"));
    }

    #[test]
    fn rejection_kinds_are_flagged() {
        assert!(!StallKind::DelayStorage.is_rejection());
        assert!(!StallKind::AccessQueue.is_rejection());
        assert!(!StallKind::WriteBuffer.is_rejection());
        assert!(!StallKind::Throttled.is_rejection());
        assert!(StallKind::AddressRange.is_rejection());
        assert!(StallKind::OversizedWrite.is_rejection());
    }

    #[test]
    fn tick_output_accepted() {
        assert!(TickOutput::default().accepted());
        let t = TickOutput { response: None, stall: Some(StallKind::AccessQueue) };
        assert!(!t.accepted());
    }

    #[test]
    fn response_payload_clone_is_shared() {
        let data = Bytes::from(vec![7u8; 64]);
        let resp = Response {
            addr: LineAddr(1),
            data: data.clone(),
            issued_at: Cycle::ZERO,
            completed_at: Cycle::new(1),
            tenant: TenantId::HOST,
        };
        let copy = resp.clone();
        assert_eq!(copy.data.as_slice().as_ptr(), data.as_slice().as_ptr());
    }
}
