//! Request, response, and stall types — the controller's wire format.

use std::fmt;
use vpnm_sim::Cycle;

/// A memory-line (cell) address presented at the VPNM interface.
///
/// Addresses are cell-granular (the paper buffers 64-byte cells); the
/// controller's universal hash decides which bank a given address lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// One request presented at the interface (at most one per interface
/// cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read the cell at `addr`; the reply arrives exactly `D` interface
    /// cycles later.
    Read {
        /// Cell address.
        addr: LineAddr,
    },
    /// Write `data` to the cell at `addr`; fire-and-forget (the paper:
    /// "unlike read requests, we need not wait for the write requests to
    /// complete").
    Write {
        /// Cell address.
        addr: LineAddr,
        /// Cell contents (at most the configured cell size).
        data: Vec<u8>,
    },
}

impl Request {
    /// The address this request targets.
    pub fn addr(&self) -> LineAddr {
        match self {
            Request::Read { addr } | Request::Write { addr, .. } => *addr,
        }
    }

    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Request::Read { .. })
    }
}

/// A completed read delivered at its deterministic deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The address that was read.
    pub addr: LineAddr,
    /// The data (exactly one cell).
    pub data: Vec<u8>,
    /// Interface cycle the read was accepted.
    pub issued_at: Cycle,
    /// Interface cycle the response was delivered (`issued_at + D`).
    pub completed_at: Cycle,
}

impl Response {
    /// Observed latency in interface cycles — always exactly `D` for a
    /// correctly configured controller.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// The three stall conditions of paper Section 4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// No free row in the delay storage buffer (`K` exhausted).
    DelayStorage,
    /// The bank access queue is full (`Q` exhausted).
    AccessQueue,
    /// The write buffer FIFO is full.
    WriteBuffer,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallKind::DelayStorage => "delay storage buffer stall",
            StallKind::AccessQueue => "bank access queue stall",
            StallKind::WriteBuffer => "write buffer stall",
        };
        f.write_str(s)
    }
}

/// Everything that happened during one interface cycle of the controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutput {
    /// The read response due this cycle, if any (at most one: the
    /// interface accepts at most one request per cycle, so at most one can
    /// be due per cycle).
    pub response: Option<Response>,
    /// If the submitted request could not be accepted, why. The request
    /// was *not* enqueued; the caller decides whether to retry it next
    /// cycle (stall the line card) or drop it.
    pub stall: Option<StallKind>,
}

impl TickOutput {
    /// True when the submitted request (if any) was accepted.
    pub fn accepted(&self) -> bool {
        self.stall.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = Request::Read { addr: LineAddr(5) };
        let w = Request::Write { addr: LineAddr(6), data: vec![1] };
        assert!(r.is_read());
        assert!(!w.is_read());
        assert_eq!(r.addr(), LineAddr(5));
        assert_eq!(w.addr(), LineAddr(6));
    }

    #[test]
    fn response_latency() {
        let resp = Response {
            addr: LineAddr(0),
            data: vec![],
            issued_at: Cycle::new(10),
            completed_at: Cycle::new(40),
        };
        assert_eq!(resp.latency(), 30);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(LineAddr(255).to_string(), "0xff");
        assert!(StallKind::DelayStorage.to_string().contains("delay storage"));
        assert!(StallKind::AccessQueue.to_string().contains("access queue"));
        assert!(StallKind::WriteBuffer.to_string().contains("write buffer"));
    }

    #[test]
    fn tick_output_accepted() {
        assert!(TickOutput::default().accepted());
        let t = TickOutput { response: None, stall: Some(StallKind::AccessQueue) };
        assert!(!t.accepted());
    }
}
