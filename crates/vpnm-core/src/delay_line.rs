//! The circular delay buffer — the component that *creates* the virtual
//! pipeline (paper Figure 3, bottom center).
//!
//! A `D`-slot circular buffer of row ids. Every interface cycle the slot at
//! the current position is read (it was written exactly `D` cycles ago, so
//! its row id — if valid — is due for playback *now*) and then overwritten
//! with this cycle's incoming read (or invalidated if there is none). This
//! is "the only component which is accessed every cycle irrespective of the
//! input requests"; storing row ids instead of data keeps it 2–3 orders of
//! magnitude smaller than buffering the data itself, per the paper.

use crate::delay_storage::RowId;

/// The paper's **circular delay buffer (CDB)**: a `D`-slot fixed-delay
/// line of optional row ids (Figure 3, bottom center). The slot read at
/// cycle `t` was written at `t − D`, which is what makes every read
/// complete after exactly `D` cycles.
///
/// ```
/// use vpnm_core::delay_line::CircularDelayBuffer;
/// let mut cdb = CircularDelayBuffer::new(3);
/// assert_eq!(cdb.tick(Some(7)), None);   // t=0: schedule row 7 for t=3
/// assert_eq!(cdb.tick(None), None);      // t=1
/// assert_eq!(cdb.tick(None), None);      // t=2
/// assert_eq!(cdb.tick(None), Some(7));   // t=3: row 7 due
/// ```
#[derive(Debug, Clone)]
pub struct CircularDelayBuffer {
    slots: Vec<Option<RowId>>,
    pos: usize,
    occupancy: usize,
}

impl CircularDelayBuffer {
    /// Creates a delay line of `d` interface cycles.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "delay must be at least one cycle");
        CircularDelayBuffer { slots: vec![None; d], pos: 0, occupancy: 0 }
    }

    /// The configured delay `D`.
    pub fn delay(&self) -> usize {
        self.slots.len()
    }

    /// Number of scheduled (valid) slots currently in flight.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Advances one interface cycle: returns the row id scheduled `D`
    /// cycles ago (if any) and schedules `incoming` for `D` cycles from
    /// now.
    pub fn tick(&mut self, incoming: Option<RowId>) -> Option<RowId> {
        let due = self.slots[self.pos].take();
        if due.is_some() {
            self.occupancy -= 1;
        }
        if incoming.is_some() {
            self.occupancy += 1;
        }
        self.slots[self.pos] = incoming;
        self.pos = (self.pos + 1) % self.slots.len();
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_delay_for_every_slot() {
        let d = 5;
        let mut cdb = CircularDelayBuffer::new(d);
        let mut due_log = Vec::new();
        // schedule row i at cycle i for 40 cycles, expect row at cycle i+5
        for t in 0..40u32 {
            let due = cdb.tick(Some(t));
            due_log.push(due);
        }
        for (t, due) in due_log.iter().enumerate() {
            if t < d {
                assert_eq!(*due, None);
            } else {
                assert_eq!(*due, Some((t - d) as u32));
            }
        }
    }

    #[test]
    fn empty_cycles_pass_through() {
        let mut cdb = CircularDelayBuffer::new(2);
        assert_eq!(cdb.tick(None), None);
        assert_eq!(cdb.tick(Some(1)), None);
        assert_eq!(cdb.tick(None), None);
        assert_eq!(cdb.tick(None), Some(1));
        assert_eq!(cdb.tick(None), None);
    }

    #[test]
    fn occupancy_tracks_in_flight() {
        let mut cdb = CircularDelayBuffer::new(4);
        cdb.tick(Some(1));
        cdb.tick(Some(2));
        assert_eq!(cdb.occupancy(), 2);
        cdb.tick(None);
        cdb.tick(None);
        cdb.tick(None); // row 1 out
        assert_eq!(cdb.occupancy(), 1);
        cdb.tick(None); // row 2 out
        assert_eq!(cdb.occupancy(), 0);
    }

    #[test]
    fn delay_one_is_next_cycle() {
        let mut cdb = CircularDelayBuffer::new(1);
        assert_eq!(cdb.tick(Some(9)), None);
        assert_eq!(cdb.tick(None), Some(9));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_delay_rejected() {
        let _ = CircularDelayBuffer::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever is scheduled comes out exactly D ticks later, for any
        /// schedule pattern.
        #[test]
        fn exact_delay_for_arbitrary_schedules(
            d in 1usize..50,
            schedule in proptest::collection::vec(proptest::option::of(0u32..1000), 1..200),
        ) {
            let mut cdb = CircularDelayBuffer::new(d);
            let mut outputs = Vec::new();
            for &s in &schedule {
                outputs.push(cdb.tick(s));
            }
            for _ in 0..d {
                outputs.push(cdb.tick(None));
            }
            for (t, &inp) in schedule.iter().enumerate() {
                prop_assert_eq!(outputs[t + d], inp, "scheduled at {} with D={}", t, d);
            }
            prop_assert_eq!(cdb.occupancy(), 0);
        }
    }
}
