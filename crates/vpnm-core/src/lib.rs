//! # Virtually Pipelined Network Memory (VPNM)
//!
//! A faithful reproduction of the memory controller from Agrawal &
//! Sherwood, *"Virtually Pipelined Network Memory"*, MICRO-39 (2006).
//!
//! VPNM presents banked commodity DRAM as **a flat, deeply pipelined memory
//! with fully deterministic latency**: every read accepted at interface
//! cycle `t` is answered at exactly `t + D`, no matter what the access
//! pattern is — including adversarial patterns. The controller achieves
//! this with four mechanisms, each its own module here:
//!
//! 1. **Randomized bank mapping** with a universal hash
//!    ([`hash_engine`], backed by `vpnm-hash`): an adversary cannot
//!    construct bank conflicts with better-than-random probability.
//! 2. **Per-bank latency normalization** ([`bank_controller`],
//!    [`delay_line`]): each bank controller queues work ([`access_queue`],
//!    [`write_buffer`]) and answers every read after exactly `D` cycles via
//!    a circular delay buffer, hiding both conflicts and reordering.
//! 3. **Merging of redundant requests** ([`delay_storage`]): repeated
//!    reads of one address ("A,A,A,…", "A,B,A,B,…") share one buffered
//!    bank access, so they cannot overwhelm queues that randomization
//!    cannot help (same address → same bank).
//! 4. **Probabilistic worst-case analysis** (in the companion
//!    `vpnm-analysis` crate): stall probability is driven to one event per
//!    ~10¹³ accesses with modest buffer sizes.
//!
//! # Quick start
//!
//! ```
//! use vpnm_core::{Request, LineAddr, VpnmConfig, VpnmController};
//!
//! let mut mem = VpnmController::new(VpnmConfig::small_test(), 0xC0FFEE)?;
//! mem.tick(Some(Request::write(LineAddr(100), b"payload".to_vec())));
//! mem.tick(Some(Request::read(LineAddr(100))));
//! let responses = mem.drain();
//! assert_eq!(&responses[0].data[..7], b"payload");
//! assert_eq!(responses[0].latency(), mem.delay()); // deterministic D
//! # Ok::<(), String>(())
//! ```
//!
//! The [`memory::PipelinedMemory`] trait captures the programming model;
//! [`memory::IdealMemory`] is a perfect-reference implementation used as a
//! differential-testing oracle throughout the workspace. Both engines
//! ([`VpnmController`] and the seed-faithful [`ReferenceController`])
//! implement the trait in full, and [`fabric::VpnmFabric`] composes `N`
//! independent channels of either engine behind the same flat
//! deterministic-latency interface (see `DESIGN.md`, "Fabric layer").

#![warn(missing_docs)]

pub mod access_queue;
pub mod bank_controller;
pub mod config;
pub mod controller;
pub mod delay_line;
pub mod delay_storage;
pub mod fabric;
pub mod forensics;
pub mod hash_engine;
pub mod memory;
pub mod metrics;
pub mod pool;
pub mod prefetch;
pub mod ready_set;
pub mod reference;
pub mod regulator;
pub mod request;
pub mod ring;
pub mod snapshot;
pub mod write_buffer;

pub use config::{SchedulerKind, VpnmConfig};
pub use controller::{RunCounts, RunReport, StallPolicy, VpnmController};
pub use fabric::{ChannelSelect, ChannelSelector, FabricConfig, VpnmFabric};
pub use forensics::{ForensicEvent, ForensicKind, ForensicRing};
pub use hash_engine::{HashEngine, HashKind};
pub use memory::{IdealMemory, PipelinedMemory};
pub use metrics::ControllerMetrics;
pub use pool::WorkerPool;
pub use prefetch::prefetch_read;
pub use reference::ReferenceController;
pub use regulator::{QosConfig, Regulator, RegulatorMode, TenantLedger, MAX_TENANTS};
pub use request::{LineAddr, Request, Response, StallKind, TenantId, TickOutput};
pub use ring::RingSlots;
pub use snapshot::{
    MetricsSnapshot, ServingMetrics, TenantSection, TenantStats, SNAPSHOT_SCHEMA_VERSION,
};
