//! Software prefetch hint shared by the controller's playback wheel and
//! the serving layer's batched flow-table probes.

/// Issues a hardware prefetch for `p`'s cache line on targets that have
/// one; a no-op elsewhere. Fire-and-forget: unlike a dummy load, the
/// line fill occupies no register and never delays retirement.
#[inline]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint with no memory effects; it is valid
    // for any address, and SSE is baseline on x86_64.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p.cast())
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_semantically_inert() {
        let xs = [1u64, 2, 3];
        prefetch_read(xs.as_ptr());
        prefetch_read(std::ptr::null::<u64>());
        assert_eq!(xs, [1, 2, 3]);
    }
}
