//! The reference engine: the original, straightforward formulation of the
//! VPNM controller, kept as a living specification.
//!
//! [`ReferenceController`] does exactly what the seed implementation did
//! before the hot-path rework in [`controller`](crate::controller) and
//! [`delay_storage`](crate::delay_storage) — down to owning its own port
//! of the original per-bank stack:
//!
//! * the **delay storage buffer is linear**: CAM lookup, free-row search
//!   and invalidation are all O(K) scans over the rows, exactly as the
//!   seed's `DelayStorageBuffer` (the rework replaced these with a
//!   hash-indexed CAM and a free bitset);
//! * every bank owns its **own circular delay line**, all advanced in
//!   lockstep every interface cycle (the rework shares one ring);
//! * the bus scheduler **scans all `B` banks** every memory cycle;
//! * occupancy metrics are sampled with **O(B) scans** per interface
//!   cycle;
//! * the memory-clock loop runs **every memory cycle**, busy or idle (no
//!   idle fast-forward).
//!
//! It is deliberately naive: the `tests/engine_equivalence.rs` suite
//! drives it and [`VpnmController`](crate::VpnmController) with identical
//! request streams and requires cycle-for-cycle, byte-for-byte identical
//! outputs and metrics, and the `controller_throughput` benchmark uses it
//! as the baseline the fast engine's speedup is measured against.
//!
//! The only intentional departure from the seed is request validation:
//! like the fast engine, malformed requests are rejected gracefully in
//! release builds (the seed asserted unconditionally) so the two engines
//! remain comparable on every input.

use crate::access_queue::{AccessEntry, BankAccessQueue};
use crate::bank_controller::{Accepted, BankEvent};
use crate::config::{SchedulerKind, VpnmConfig};
use crate::delay_line::CircularDelayBuffer;
use crate::delay_storage::RowId;
use crate::hash_engine::HashEngine;
use crate::metrics::ControllerMetrics;
use crate::request::{LineAddr, Request, Response, StallKind, TenantId, TickOutput};
use crate::snapshot::MetricsSnapshot;
use crate::write_buffer::WriteBuffer;
use bytes::Bytes;
use vpnm_dram::{DramConfig, DramDevice, DramStats};
use vpnm_hash::BankHasher;
use vpnm_sim::trace::TraceKind;
use vpnm_sim::{Cycle, DualClock, TraceRecorder};

#[derive(Debug, Clone, Default)]
struct SeedRow {
    addr: LineAddr,
    addr_valid: bool,
    counter: u32,
    data: Option<Bytes>,
}

impl SeedRow {
    fn is_free(&self) -> bool {
        self.counter == 0
    }
}

/// The seed's delay storage buffer: plain linear scans, no index
/// structures. Must stay observably identical to the indexed
/// [`DelayStorageBuffer`](crate::delay_storage::DelayStorageBuffer)
/// (locked by that module's differential proptest and by the engine
/// equivalence suite).
#[derive(Debug, Clone)]
struct SeedDelayStorage {
    rows: Vec<SeedRow>,
    live: usize,
}

impl SeedDelayStorage {
    fn new(k: usize) -> Self {
        assert!(k > 0, "delay storage buffer needs at least one row");
        SeedDelayStorage { rows: vec![SeedRow::default(); k], live: 0 }
    }

    fn live_rows(&self) -> usize {
        self.live
    }

    fn lookup(&self, addr: LineAddr) -> Option<RowId> {
        self.rows
            .iter()
            .position(|r| !r.is_free() && r.addr_valid && r.addr == addr)
            .map(|i| i as RowId)
    }

    fn allocate(&mut self, addr: LineAddr) -> Option<RowId> {
        let idx = self.rows.iter().position(SeedRow::is_free)?;
        let row = &mut self.rows[idx];
        row.addr = addr;
        row.addr_valid = true;
        row.counter = 1;
        row.data = None;
        self.live += 1;
        Some(idx as RowId)
    }

    fn merge(&mut self, row: RowId) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "merge into free row {row}");
        r.counter += 1;
    }

    fn row_addr(&self, row: RowId) -> LineAddr {
        let r = &self.rows[row as usize];
        assert!(!r.is_free(), "address of free row {row}");
        r.addr
    }

    fn fill(&mut self, row: RowId, data: Bytes) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "fill of free row {row}");
        r.data = Some(data);
    }

    fn playback(&mut self, row: RowId) -> (LineAddr, Option<Bytes>) {
        let r = &mut self.rows[row as usize];
        assert!(!r.is_free(), "playback of free row {row}");
        let addr = r.addr;
        let data = r.data.clone();
        r.counter -= 1;
        if r.counter == 0 {
            r.addr_valid = false;
            r.data = None;
            self.live -= 1;
        }
        (addr, data)
    }

    fn invalidate(&mut self, addr: LineAddr) -> bool {
        if let Some(row) = self.lookup(addr) {
            self.rows[row as usize].addr_valid = false;
            true
        } else {
            false
        }
    }
}

/// The seed's per-bank controller: linear delay storage plus its own
/// internal circular delay line, advanced every interface cycle whether
/// or not anything is in flight.
#[derive(Debug, Clone)]
struct SeedBank {
    bank: u32,
    storage: SeedDelayStorage,
    queue: BankAccessQueue,
    writes: WriteBuffer,
    delay_line: CircularDelayBuffer,
    in_service_until: Option<Cycle>,
    merging: bool,
}

impl SeedBank {
    fn new(bank: u32, k: usize, q: usize, wb: usize, d: u64, merging: bool) -> Self {
        SeedBank {
            bank,
            storage: SeedDelayStorage::new(k),
            queue: BankAccessQueue::new(q),
            writes: WriteBuffer::new(wb),
            delay_line: CircularDelayBuffer::new(d as usize),
            in_service_until: None,
            merging,
        }
    }

    fn submit(&mut self, event: BankEvent) -> Result<Accepted, StallKind> {
        match event {
            BankEvent::Read { addr } => {
                if self.merging {
                    if let Some(row) = self.storage.lookup(addr) {
                        self.storage.merge(row);
                        return Ok(Accepted::ReadMerged(row));
                    }
                }
                if self.queue.is_full() {
                    return Err(StallKind::AccessQueue);
                }
                let Some(row) = self.storage.allocate(addr) else {
                    return Err(StallKind::DelayStorage);
                };
                self.queue.push(AccessEntry::Read { row }).expect("checked for space above");
                Ok(Accepted::ReadQueued(row))
            }
            BankEvent::Write { addr, data } => {
                if self.writes.is_full() {
                    return Err(StallKind::WriteBuffer);
                }
                if self.queue.is_full() {
                    return Err(StallKind::AccessQueue);
                }
                self.writes.push(addr, data).expect("checked for space above");
                self.queue.push(AccessEntry::Write).expect("checked for space above");
                self.storage.invalidate(addr);
                Ok(Accepted::WriteBuffered)
            }
        }
    }

    /// Advances this bank's delay line by one interface cycle.
    fn advance_delay_line(&mut self, incoming: Option<RowId>) -> Option<(LineAddr, Option<Bytes>)> {
        let due = self.delay_line.tick(incoming)?;
        Some(self.storage.playback(due))
    }

    fn on_bus_grant(&mut self, dram: &mut DramDevice, now_mem: Cycle) -> bool {
        if let Some(until) = self.in_service_until {
            if now_mem < until {
                return false; // bank busy — the grant is wasted
            }
            self.queue.pop();
            self.in_service_until = None;
        }
        let Some(front) = self.queue.front().copied() else {
            return false;
        };
        match dram.is_bank_ready(self.bank, now_mem) {
            Ok(true) => {}
            Ok(false) => return false,
            Err(e) => panic!("unexpected DRAM error on readiness: {e}"),
        }
        match front {
            AccessEntry::Read { row } => {
                let addr = self.storage.row_addr(row);
                let grant =
                    dram.issue_read(self.bank, addr.0, now_mem).expect("bank checked ready");
                self.storage.fill(row, grant.data);
                self.in_service_until = Some(grant.data_ready_at);
                true
            }
            AccessEntry::Write => {
                let w = self.writes.pop().expect("Write queue entry implies buffered write");
                let done = dram
                    .issue_write(self.bank, w.addr.0, w.data, now_mem)
                    .expect("bank checked ready");
                self.in_service_until = Some(done);
                true
            }
        }
    }

    fn wants_grant(&self, now: Cycle) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        match self.in_service_until {
            Some(until) => now >= until && self.queue.len() > 1,
            None => true,
        }
    }

    fn storage_occupancy(&self) -> usize {
        self.storage.live_rows()
    }

    fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn write_depth(&self) -> usize {
        self.writes.len()
    }
}

/// The O(B)-per-cycle, O(K)-per-request reference implementation of the
/// VPNM controller.
///
/// Behaviourally identical to [`VpnmController`](crate::VpnmController) —
/// same responses on the same cycles, same metrics, same stalls — just
/// without any of the incremental bookkeeping. See the module docs.
#[derive(Debug)]
pub struct ReferenceController {
    config: VpnmConfig,
    delay: u64,
    hash: HashEngine,
    clock: DualClock,
    dram: DramDevice,
    banks: Vec<SeedBank>,
    rr_next: u32,
    metrics: ControllerMetrics,
    outstanding: usize,
    trace: TraceRecorder,
    next_request_id: u64,
    /// Who issued the read due at each future interface cycle, indexed by
    /// `cycle % D`. The per-bank delay lines only carry row ids, so the
    /// tenant rides in this parallel wheel: slot `t % D` is read (for the
    /// response due now) *before* an accepted read overwrites it (for the
    /// response due at `t + D`).
    tenant_wheel: Vec<TenantId>,
}

impl ReferenceController {
    /// Builds a reference controller from `config`, keying the universal
    /// hash from `seed`. Same construction as the fast engine.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an inconsistent config.
    pub fn new(config: VpnmConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        let delay = config.effective_delay();
        let hash = HashEngine::from_seed(config.hash, config.addr_bits, config.bank_bits(), seed);
        let cells_per_row = 64u64;
        let total_cells = 1u64 << config.addr_bits;
        let dram_config = DramConfig {
            num_banks: config.banks,
            rows_per_bank: total_cells.div_ceil(cells_per_row),
            cells_per_row,
            cell_bytes: config.cell_bytes,
            timing: vpnm_dram::timing::TimingModel::simple(config.bank_latency),
        };
        let dram = DramDevice::new(dram_config);
        let wb = config.write_buffer_capacity();
        let banks = (0..config.banks)
            .map(|b| {
                SeedBank::new(
                    b,
                    config.storage_rows,
                    config.queue_entries,
                    wb,
                    delay,
                    config.merging,
                )
            })
            .collect();
        let trace = if config.trace_capacity > 0 {
            TraceRecorder::with_capacity(config.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        Ok(ReferenceController {
            clock: DualClock::new(config.bus_ratio),
            delay,
            hash,
            dram,
            banks,
            rr_next: 0,
            metrics: ControllerMetrics::with_banks(config.banks as usize),
            outstanding: 0,
            trace,
            next_request_id: 0,
            tenant_wheel: vec![TenantId::HOST; delay as usize],
            config,
        })
    }

    /// The deterministic latency `D` in interface cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &VpnmConfig {
        &self.config
    }

    /// The current interface cycle.
    pub fn now(&self) -> Cycle {
        self.clock.interface_now()
    }

    /// Accumulated controller metrics.
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Statistics of the underlying DRAM device.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Reads still in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The keyed hash engine.
    pub fn hash(&self) -> &HashEngine {
        &self.hash
    }

    /// The bank `addr` maps to under this controller's keyed hash.
    pub fn bank_of(&self, addr: LineAddr) -> u32 {
        self.hash.bank_of(addr.0)
    }

    /// Freezes the current aggregate metrics into a serializable
    /// [`MetricsSnapshot`]. Running both engines on the same stream
    /// yields byte-identical snapshots (the equivalence suite checks
    /// this).
    pub fn snapshot(&self) -> MetricsSnapshot {
        // The reference advances every memory cycle individually — it
        // never skips, so its snapshot reports 0 skipped cycles.
        MetricsSnapshot::capture(&self.config, self.delay, self.now(), 0, &self.metrics)
    }

    /// Advances exactly one interface cycle — the original formulation:
    /// run every memory cycle with a grant, scan for the pick, scan for
    /// the samples, advance every bank's delay line.
    pub fn tick(&mut self, request: Option<Request>) -> TickOutput {
        loop {
            let mt = self.clock.tick_memory();
            let bank = self.pick_grant(mt.memory_cycle);
            self.banks[bank].on_bus_grant(&mut self.dram, mt.memory_cycle);
            if mt.interface_tick {
                break;
            }
        }
        let now = self.clock.interface_now();
        let wheel_slot = (now.as_u64() % self.delay) as usize;
        // Read the due tenant before an accepted read reuses the slot for
        // the response this cycle schedules `D` cycles out.
        let due_tenant = self.tenant_wheel[wheel_slot];

        let mut stall = None;
        let mut read_row = None; // (bank, row) scheduled into its delay line
        if let Some(req) = request {
            let id = self.next_request_id;
            self.next_request_id += 1;
            if let Some(kind) = self.validate(&req) {
                stall = Some(kind);
                self.metrics.record_stall(kind, now);
                self.trace.record(now, id, TraceKind::Stalled);
            } else {
                let bank = self.hash.bank_of(req.addr().0) as usize;
                let tenant = req.tenant();
                let event = match req {
                    Request::Read { addr, .. } => BankEvent::Read { addr },
                    Request::Write { addr, data, .. } => BankEvent::Write { addr, data },
                };
                match self.banks[bank].submit(event) {
                    Ok(Accepted::ReadQueued(row)) => {
                        self.metrics.reads_accepted += 1;
                        self.outstanding += 1;
                        self.metrics.note_outstanding(self.outstanding as u64);
                        read_row = Some((bank, row));
                        self.tenant_wheel[wheel_slot] = tenant;
                        self.trace.record(now, id, TraceKind::Accepted);
                    }
                    Ok(Accepted::ReadMerged(row)) => {
                        self.metrics.reads_accepted += 1;
                        self.metrics.reads_merged += 1;
                        self.outstanding += 1;
                        self.metrics.note_outstanding(self.outstanding as u64);
                        read_row = Some((bank, row));
                        self.tenant_wheel[wheel_slot] = tenant;
                        self.trace.record(now, id, TraceKind::Merged);
                    }
                    Ok(Accepted::WriteBuffered) => {
                        self.metrics.writes_accepted += 1;
                        self.trace.record(now, id, TraceKind::Accepted);
                    }
                    Err(kind) => {
                        stall = Some(kind);
                        self.metrics.record_stall(kind, now);
                        self.trace.record(now, id, TraceKind::Stalled);
                    }
                }
            }
        }

        // Advance every bank's delay line. At most one bank can have a
        // playback due (one request per interface cycle).
        let mut response = None;
        for (i, bc) in self.banks.iter_mut().enumerate() {
            let incoming = match read_row {
                Some((bank, row)) if bank == i => Some(row),
                _ => None,
            };
            if let Some((addr, data)) = bc.advance_delay_line(incoming) {
                debug_assert!(response.is_none(), "two playbacks due in one cycle");
                let data = match data {
                    Some(d) => d,
                    None => {
                        self.metrics.deadline_misses += 1;
                        Bytes::from(vec![0u8; self.config.cell_bytes])
                    }
                };
                self.outstanding -= 1;
                self.metrics.responses += 1;
                response = Some(Response {
                    addr,
                    data,
                    issued_at: Cycle::new(now.as_u64() - self.delay),
                    completed_at: now,
                    tenant: due_tenant,
                });
            }
        }

        // occupancy sampling — the original O(B) scans. The per-bank
        // high-water marks piggyback on the same end-of-tick walk (the
        // fast engine maintains them incrementally at the change sites;
        // the equivalence suite requires both formulations to agree).
        let mut max_queue = 0usize;
        let mut storage = 0usize;
        for (i, b) in self.banks.iter().enumerate() {
            let q = b.queue_depth();
            max_queue = max_queue.max(q);
            storage += b.storage_occupancy();
            self.metrics.note_bank_queue_depth(i, q as u32);
            self.metrics.note_bank_storage(i, b.storage_occupancy() as u32);
            self.metrics.note_bank_write_depth(i, b.write_depth() as u32);
        }
        self.metrics.sample_cycle(max_queue as u64, storage as u64);

        TickOutput { response, stall }
    }

    /// Same request validation as the fast engine (debug builds assert,
    /// release builds reject gracefully).
    fn validate(&self, req: &Request) -> Option<StallKind> {
        let addr = req.addr();
        debug_assert!(
            addr.0 < (1u64 << self.config.addr_bits),
            "address {addr} outside the configured {}-bit space",
            self.config.addr_bits
        );
        if addr.0 >= (1u64 << self.config.addr_bits) {
            return Some(StallKind::AddressRange);
        }
        if let Request::Write { data, .. } = req {
            debug_assert!(
                data.len() <= self.config.cell_bytes,
                "write of {} bytes exceeds cell size {}",
                data.len(),
                self.config.cell_bytes
            );
            if data.len() > self.config.cell_bytes {
                return Some(StallKind::OversizedWrite);
            }
        }
        None
    }

    /// The original grant scan: visit all `B` banks from the round-robin
    /// position.
    fn pick_grant(&mut self, now_mem: Cycle) -> usize {
        let rr = self.rr_next as usize;
        self.rr_next = (self.rr_next + 1) % self.config.banks;
        match self.config.scheduler {
            SchedulerKind::RoundRobin => rr,
            SchedulerKind::WorkConserving => {
                if self.banks[rr].wants_grant(now_mem) {
                    return rr;
                }
                let b = self.config.banks as usize;
                (0..b)
                    .map(|i| (rr + i) % b)
                    .filter(|&i| self.banks[i].wants_grant(now_mem))
                    .max_by_key(|&i| self.banks[i].queue_depth())
                    .unwrap_or(rr)
            }
        }
    }

    /// Shorthand for ticking with a read request.
    pub fn tick_read(&mut self, addr: impl Into<LineAddr>) -> TickOutput {
        self.tick(Some(Request::read(addr.into())))
    }

    /// Shorthand for ticking with a write request.
    pub fn tick_write(&mut self, addr: impl Into<LineAddr>, data: impl Into<Bytes>) -> TickOutput {
        self.tick(Some(Request::write(addr.into(), data)))
    }

    /// Ticks with no request until all outstanding reads have been
    /// answered.
    ///
    /// # Panics
    ///
    /// Panics if draining takes more than `outstanding × D + D` cycles.
    pub fn drain(&mut self) -> Vec<Response> {
        let budget = (self.outstanding as u64 + 1) * self.delay + self.delay;
        let mut out = Vec::with_capacity(self.outstanding);
        let mut spent = 0u64;
        while self.outstanding > 0 {
            assert!(spent <= budget, "drain exceeded {budget} cycles");
            if let Some(r) = self.tick(None).response {
                out.push(r);
            }
            spent += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_answers_reads_at_exactly_d() {
        let mut mem = ReferenceController::new(VpnmConfig::small_test(), 3).unwrap();
        let d = mem.delay();
        assert!(mem.tick_write(11, vec![0x5A]).accepted());
        assert!(mem.tick_read(11).accepted());
        let responses = mem.drain();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].latency(), d);
        assert_eq!(responses[0].data[0], 0x5A);
    }

    #[test]
    fn reference_merges_redundant_reads() {
        let mut mem = ReferenceController::new(VpnmConfig::small_test(), 3).unwrap();
        let mut responses = 0;
        for _ in 0..100 {
            let out = mem.tick_read(9);
            assert!(out.accepted());
            responses += out.response.iter().len();
        }
        responses += mem.drain().len();
        assert_eq!(responses, 100);
        assert!(mem.metrics().reads_merged >= 90);
    }
}
