//! The bank access queue — pending bank work, `Q` entries (paper Figure 3,
//! right).
//!
//! Each entry is one pending read or write that still needs the memory
//! bank. To avoid keeping `Q` copies of address and data, a read entry is
//! just the index of its row in the delay storage buffer, and a write entry
//! carries nothing (write address/data are popped from the write buffer in
//! FIFO order) — exactly the encoding the paper describes.

use crate::delay_storage::RowId;
use crate::ring::RingSlots;

/// One pending bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessEntry {
    /// A read; the address lives in the delay storage buffer row.
    Read {
        /// Delay storage buffer row to fill.
        row: RowId,
    },
    /// A write; address and data are at the head of the write buffer.
    Write,
}

/// The paper's **bank access queue**: a bounded FIFO of [`AccessEntry`],
/// `Q` entries per bank (Figure 3, right). Overflow is the *bank access
/// queue stall* of paper Section 4.3.
///
/// ```
/// use vpnm_core::access_queue::{AccessEntry, BankAccessQueue};
/// let mut q = BankAccessQueue::new(2);
/// q.push(AccessEntry::Read { row: 0 }).unwrap();
/// q.push(AccessEntry::Write).unwrap();
/// assert!(q.push(AccessEntry::Write).is_err(), "Q exhausted");
/// assert_eq!(q.pop(), Some(AccessEntry::Read { row: 0 }));
/// ```
#[derive(Debug, Clone)]
pub struct BankAccessQueue {
    /// Power-of-two ring (wrap is a mask, see [`RingSlots`]); `capacity`
    /// still bounds pushes at the configured `Q`, which need not be a
    /// power of two.
    entries: RingSlots<AccessEntry>,
    head: u32,
    len: u32,
    capacity: u32,
}

/// Error returned when the queue is full; carries the rejected entry back
/// to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull(pub AccessEntry);

impl BankAccessQueue {
    /// Creates a queue with capacity `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "bank access queue needs at least one entry");
        assert!(q <= u32::MAX as usize / 2, "bank access queue capacity too large");
        BankAccessQueue {
            entries: RingSlots::from_fn(q, |_| AccessEntry::Write),
            head: 0,
            len: 0,
            capacity: q as u32,
        }
    }

    #[inline]
    fn mask(&self) -> u32 {
        self.entries.mask()
    }

    /// Capacity `Q`.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when a push would stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Enqueues an access.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] with the rejected entry when at capacity.
    #[inline]
    pub fn push(&mut self, entry: AccessEntry) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull(entry));
        }
        let tail = (self.head + self.len) & self.mask();
        *self.entries.get_mut(tail) = entry;
        self.len += 1;
        Ok(())
    }

    /// Dequeues the oldest access, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<AccessEntry> {
        if self.len == 0 {
            return None;
        }
        let e = *self.entries.get(self.head);
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        Some(e)
    }

    /// Peeks at the oldest access without removing it.
    #[inline]
    pub fn front(&self) -> Option<&AccessEntry> {
        if self.len == 0 {
            None
        } else {
            Some(self.entries.get(self.head))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BankAccessQueue::new(4);
        q.push(AccessEntry::Read { row: 1 }).unwrap();
        q.push(AccessEntry::Write).unwrap();
        q.push(AccessEntry::Read { row: 2 }).unwrap();
        assert_eq!(q.pop(), Some(AccessEntry::Read { row: 1 }));
        assert_eq!(q.pop(), Some(AccessEntry::Write));
        assert_eq!(q.pop(), Some(AccessEntry::Read { row: 2 }));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_returns_entry() {
        let mut q = BankAccessQueue::new(1);
        q.push(AccessEntry::Write).unwrap();
        let err = q.push(AccessEntry::Read { row: 7 }).unwrap_err();
        assert_eq!(err.0, AccessEntry::Read { row: 7 });
        assert!(q.is_full());
    }

    #[test]
    fn len_and_front_track_state() {
        let mut q = BankAccessQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
        q.push(AccessEntry::Write).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.front(), Some(&AccessEntry::Write));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = BankAccessQueue::new(0);
    }
}
