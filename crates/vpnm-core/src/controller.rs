//! The top-level VPNM memory controller (paper Figure 2): universal hash
//! unit → per-bank controllers → round-robin bus scheduler → DRAM.
//!
//! # Performance engineering
//!
//! This is the hot path of every experiment in the workspace, so the
//! implementation avoids any per-cycle work proportional to the bank count
//! `B` or allocation proportional to traffic. The algorithm is *exactly*
//! the original one — [`ReferenceController`](crate::ReferenceController)
//! keeps the O(B)-per-cycle formulation alive as a differential oracle —
//! but the bookkeeping is incremental:
//!
//! * **Ready-bank index** ([`ReadySet`]): one bit per bank, set exactly
//!   when the bank's access queue is non-empty. Grant picking iterates set
//!   bits in rotated round-robin order instead of scanning all `B` banks
//!   every memory cycle.
//! * **Idle fast-forward**: when the ready set is empty every bus grant is
//!   a no-op, so the memory-clock loop is skipped entirely via
//!   [`DualClock::advance_to_interface`] (`rr_next` still rotates by the
//!   skipped cycle count, keeping grant order bit-identical).
//! * **Shared delay wheel**: because at most one request enters the
//!   controller per interface cycle, at most one playback falls due per
//!   cycle, so one ring of `(bank, row)` slots replaces `B` per-bank
//!   delay lines all spinning in lockstep.
//! * **Incremental occupancy sampling**: the per-cycle metrics (max queue
//!   depth, total storage occupancy) are maintained with a bank-depth
//!   histogram and a live-row counter, updated only at the few points a
//!   depth can change, instead of O(B) scans per interface cycle.
//! * **Zero-allocation data path**: payloads are [`bytes::Bytes`] —
//!   refcounted views handed from DRAM storage through delay storage to
//!   [`Response`] without copying; deadline misses reuse one cached zero
//!   cell.
//!
//! Debug builds re-derive all incremental state from first principles
//! every tick (`debug_assert`s), so the whole test suite doubles as an
//! equivalence check.

use crate::bank_controller::{Accepted, BankController, BankEvent};
use crate::config::{SchedulerKind, VpnmConfig};
use crate::delay_storage::RowId;
use crate::forensics::{ForensicKind, ForensicRing};
use crate::hash_engine::HashEngine;
use crate::metrics::ControllerMetrics;
use crate::ready_set::ReadySet;
use crate::request::{LineAddr, Request, Response, StallKind, TenantId, TickOutput};
use crate::snapshot::MetricsSnapshot;
use bytes::Bytes;
use vpnm_dram::{DramConfig, DramDevice, DramStats};
use vpnm_hash::BankHasher;
use vpnm_sim::trace::TraceKind;
use vpnm_sim::{Cycle, DualClock, TraceRecorder};

/// Minimum interface cycles a busy-horizon skip must cover to be worth
/// taking: the horizon computation (ready-bank rotor scan, due-playback
/// distance, two exact clock divisions, bulk occupancy sampling) costs
/// about as much as stepping one or two idle cycles, so proving a
/// 1–3-cycle span skippable is a net loss. Tuned on the full-rate
/// 8-channel fabric workload, where grant events land every couple of
/// memory ticks and every candidate skip is short.
const SKIP_BUSY_MIN: u64 = 4;

/// How many idle cycles [`VpnmController`] waits before re-attempting a
/// busy-horizon skip after an unprofitable one (dense-event regimes pay
/// one decrement per idle cycle instead of one horizon scan).
const SKIP_BUSY_BACKOFF: u32 = 63;

/// What to do when a request cannot be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPolicy {
    /// Retry the same request on the next interface cycle (stalls the
    /// line; paper Section 4: "simply stall the controller, where the
    /// slowdown would not even be a fraction of a percent").
    Block,
    /// Drop the request (paper: "the other alternative is to simply drop
    /// the packet").
    Drop,
}

/// Summary of a batched [`VpnmController::run`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Every response that became due during the run, in order.
    pub responses: Vec<Response>,
    /// Requests accepted (including merged reads).
    pub accepted: u64,
    /// Requests that stalled on a full buffer (retryable).
    pub stalled: u64,
    /// Malformed requests rejected outright (not retryable; see
    /// [`StallKind::is_rejection`]).
    pub rejected: u64,
}

/// Acceptance counts from a sink-style run — [`RunReport`] without the
/// collected responses (those went to the caller's sink as they became
/// due).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounts {
    /// Requests accepted (including merged reads).
    pub accepted: u64,
    /// Requests that stalled on a full buffer (retryable).
    pub stalled: u64,
    /// Malformed requests rejected outright (not retryable).
    pub rejected: u64,
    /// Responses that became due during the run.
    pub responses: u64,
}

/// Run-length accumulator for the two per-cycle occupancy samples
/// ([`ControllerMetrics::sample_cycle`]'s inputs). At steady state
/// consecutive cycles sample identical values — a full-rate read stream
/// allocates and frees one storage row per cycle, holding `storage_live`
/// flat — so the batch drive loops count the run and flush it through
/// [`ControllerMetrics::sample_cycles`] in O(1) instead of updating two
/// histograms every cycle. Histogram updates commute, so the deferred
/// flush leaves the final metrics byte-identical to per-cycle recording,
/// even interleaved with the skip paths' own bulk samples.
#[derive(Default)]
struct SampleRun {
    depth: u64,
    live: u64,
    n: u64,
}

impl SampleRun {
    #[inline]
    fn push(&mut self, metrics: &mut ControllerMetrics, depth: u64, live: u64) {
        if self.n != 0 && depth == self.depth && live == self.live {
            self.n += 1;
        } else {
            self.flush(metrics);
            self.depth = depth;
            self.live = live;
            self.n = 1;
        }
    }

    #[inline]
    fn flush(&mut self, metrics: &mut ControllerMetrics) {
        if self.n != 0 {
            metrics.sample_cycles(self.depth, self.live, self.n);
            self.n = 0;
        }
    }
}

/// Index of the first set bit in `bits` at a position in `from..to`, if
/// any — the word-at-a-time scan behind the delay ring's next-due search.
fn first_set_bit(bits: &[u64], from: usize, to: usize) -> Option<usize> {
    if from >= to {
        return None;
    }
    let last_w = (to - 1) / 64;
    let mut w = from / 64;
    let mut word = bits[w] & (!0u64 << (from % 64));
    loop {
        if word != 0 {
            let p = w * 64 + word.trailing_zeros() as usize;
            return (p < to).then_some(p);
        }
        if w == last_w {
            return None;
        }
        w += 1;
        word = bits[w];
    }
}

/// The virtually pipelined memory controller.
///
/// Presents banked DRAM as a flat pipeline: every accepted read is answered
/// after exactly `D` interface cycles regardless of the access pattern.
/// Drive it one interface cycle at a time with [`VpnmController::tick`], or
/// in batches with [`VpnmController::run`].
///
/// ```
/// use vpnm_core::{Request, LineAddr, VpnmConfig, VpnmController};
///
/// let mut mem = VpnmController::new(VpnmConfig::small_test(), 42).unwrap();
/// let d = mem.delay();
///
/// // Write, then read the same cell.
/// mem.tick(Some(Request::write(LineAddr(7), vec![1, 2, 3])));
/// mem.tick(Some(Request::read(LineAddr(7))));
/// // The response arrives exactly D cycles after the read was accepted.
/// let mut response = None;
/// for _ in 0..d {
///     if let Some(r) = mem.tick(None).response {
///         response = Some(r);
///     }
/// }
/// let r = response.expect("due within D cycles");
/// assert_eq!(&r.data[..3], &[1, 2, 3]);
/// assert_eq!(r.latency(), d);
/// ```
#[derive(Debug)]
pub struct VpnmController {
    config: VpnmConfig,
    delay: u64,
    hash: HashEngine,
    clock: DualClock,
    dram: DramDevice,
    banks: Vec<BankController>,
    rr_next: u32,
    metrics: ControllerMetrics,
    outstanding: usize,
    trace: TraceRecorder,
    next_request_id: u64,
    /// Banks with a non-empty access queue (the only banks a bus grant
    /// can do anything for).
    ready: ReadySet,
    /// Struct-of-arrays mirror of each bank's `in_service_until`, as a
    /// dense `u64` lane (`0` = idle; a real completion cycle is always
    /// positive, since DRAM latencies are at least one memory cycle).
    /// The grant picker and the busy-horizon skip scan scheduling state
    /// for many banks per decision; reading a packed lane touches one
    /// cache line per eight banks instead of one [`BankController`]
    /// (queue + CAM + write buffer) per bank.
    bank_busy_until: Vec<u64>,
    /// Struct-of-arrays mirror of each bank's access-queue depth — the
    /// other half of the scheduling state, packed for the same linear
    /// scans.
    bank_queue_depth: Vec<u32>,
    /// Cached `max(bank_queue_depth)` (see [`VpnmController::max_queue_depth`]).
    max_depth_lane: u32,
    /// The shared playback wheel: slot `ring_pos` holds the `(bank, row,
    /// tenant)` scheduled `D` interface cycles ago, falling due this
    /// cycle. Carrying the tenant in the wheel slot is what lets the
    /// response echo the issuing tenant without threading tenancy through
    /// any bank structure.
    ring: Vec<Option<(u32, RowId, TenantId)>>,
    ring_pos: usize,
    /// Occupancy bitset over `ring` (bit `i` set ⇔ `ring[i].is_some()`),
    /// letting the event-horizon skip find the next due playback by
    /// scanning words instead of walking `Option` slots one by one.
    ring_occ: Vec<u64>,
    /// Total live delay-storage rows across banks.
    storage_live: u64,
    /// Interface cycles covered by event-horizon skips in
    /// [`VpnmController::run_batch`] (drive-mode accounting; not part of
    /// [`ControllerMetrics`] so metrics equality across engines and drive
    /// modes is unaffected).
    cycles_skipped: u64,
    /// Idle cycles left before the next busy-horizon skip attempt (see
    /// [`SKIP_BUSY_MIN`]): when grant events are so dense that a skip
    /// cannot pay for its own horizon computation, attempts pause for
    /// [`SKIP_BUSY_BACKOFF`] idle cycles at a time. Pure drive-mode
    /// pacing state — it never affects simulation semantics, only which
    /// cycles are stepped versus proven skippable.
    skip_backoff: u32,
    /// Cached zero cell served on deadline misses.
    zero_cell: Bytes,
    /// Forensic event ring (see [`crate::forensics`]); inert unless
    /// [`VpnmConfig::forensics_capacity`] is non-zero and the `forensics`
    /// feature is compiled in.
    forensics: ForensicRing,
}

impl VpnmController {
    /// Builds a controller from `config`, keying the universal hash from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an inconsistent config.
    pub fn new(config: VpnmConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        let delay = config.effective_delay();
        let hash = HashEngine::from_seed(config.hash, config.addr_bits, config.bank_bits(), seed);
        let cells_per_row = 64u64;
        let total_cells = 1u64 << config.addr_bits;
        let dram_config = DramConfig {
            num_banks: config.banks,
            rows_per_bank: total_cells.div_ceil(cells_per_row),
            cells_per_row,
            cell_bytes: config.cell_bytes,
            timing: vpnm_dram::timing::TimingModel::simple(config.bank_latency),
        };
        let dram = DramDevice::new(dram_config);
        let wb = config.write_buffer_capacity();
        let banks = (0..config.banks)
            .map(|b| {
                BankController::new(b, config.storage_rows, config.queue_entries, wb)
                    .with_merging(config.merging)
            })
            .collect();
        let trace = if config.trace_capacity > 0 {
            TraceRecorder::with_capacity(config.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        Ok(VpnmController {
            clock: DualClock::new(config.bus_ratio),
            delay,
            hash,
            dram,
            banks,
            rr_next: 0,
            metrics: ControllerMetrics::with_banks(config.banks as usize),
            outstanding: 0,
            trace,
            next_request_id: 0,
            ready: ReadySet::new(config.banks),
            bank_busy_until: vec![0; config.banks as usize],
            bank_queue_depth: vec![0; config.banks as usize],
            max_depth_lane: 0,
            ring: vec![None; delay as usize],
            ring_pos: 0,
            ring_occ: vec![0u64; (delay as usize).div_ceil(64)],
            storage_live: 0,
            cycles_skipped: 0,
            skip_backoff: 0,
            zero_cell: Bytes::from(vec![0u8; config.cell_bytes]),
            forensics: ForensicRing::new(config.forensics_capacity),
            config,
        })
    }

    /// The deterministic latency `D` in interface cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &VpnmConfig {
        &self.config
    }

    /// The current interface cycle (number of completed [`VpnmController::tick`] calls).
    pub fn now(&self) -> Cycle {
        self.clock.interface_now()
    }

    /// Accumulated controller metrics.
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Statistics of the underlying DRAM device.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Reads still in flight (accepted but not yet answered).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The keyed hash engine (exposed for adversary experiments that model
    /// an attacker with full knowledge of the mapping).
    pub fn hash(&self) -> &HashEngine {
        &self.hash
    }

    /// The bank `addr` maps to under the keyed universal hash (the
    /// fabric's per-bank regulator keys its buckets off this).
    pub fn bank_of(&self, addr: LineAddr) -> u32 {
        self.hash.bank_of(addr.0)
    }

    /// The lifecycle trace, when enabled via
    /// [`VpnmConfig::trace_capacity`].
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The forensic event ring, when enabled via
    /// [`VpnmConfig::forensics_capacity`] (and the `forensics` feature).
    pub fn forensics(&self) -> &ForensicRing {
        &self.forensics
    }

    /// Interface cycles covered by event-horizon skips rather than
    /// individual ticks (see [`VpnmController::run_batch`]).
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Freezes the current aggregate metrics into a serializable
    /// [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(
            &self.config,
            self.delay,
            self.now(),
            self.cycles_skipped,
            &self.metrics,
        )
    }

    /// Advances exactly one interface cycle, optionally presenting one
    /// request, and reports the response due this cycle plus any stall.
    ///
    /// Malformed requests (address outside `addr_bits`, write data larger
    /// than the cell size) are rejected gracefully: the output carries
    /// [`StallKind::AddressRange`] / [`StallKind::OversizedWrite`], the
    /// rejection is counted in
    /// [`ControllerMetrics::malformed_rejections`], and the controller
    /// keeps running. Debug builds additionally `debug_assert!` so tests
    /// catch the caller bug at its source.
    pub fn tick(&mut self, request: Option<Request>) -> TickOutput {
        // The bank hash is total over u64 (always in range), so it can be
        // computed up front; `step` only consults it after validation.
        let bank = match &request {
            Some(req) => self.hash.bank_of(req.addr().0) as usize,
            None => 0,
        };
        let mut response = None;
        let stall = self.step(request, bank, &mut |r| response = Some(r));
        let depth = self.max_queue_depth();
        self.metrics.sample_cycle(depth, self.storage_live);
        TickOutput { response, stall }
    }

    /// One interface cycle with the bank mapping already computed —
    /// [`VpnmController::tick`] with the hash hoisted out so
    /// [`VpnmController::run_batch`] can amortize hashing over a whole
    /// batch. `bank` is only read for a `Some` request that passes
    /// validation. Inlined into each drive loop so the request stays in
    /// registers instead of crossing a call boundary every simulated
    /// cycle, and a due response is handed to `emit` in place rather
    /// than moved out through a return value.
    #[inline]
    fn step(
        &mut self,
        request: Option<Request>,
        bank: usize,
        emit: &mut impl FnMut(Response),
    ) -> Option<StallKind> {
        // --- memory-clock domain: run memory cycles (with one bus grant
        // each) until the next interface edge falls. When no bank has
        // queued work a grant cannot do anything (an in-service access
        // keeps its queue slot, so empty queues imply idle banks), and the
        // whole remaining window is skipped in one step.
        loop {
            if self.ready.is_empty() {
                let skipped = self.clock.advance_to_interface();
                self.rr_next =
                    ((u64::from(self.rr_next) + skipped) & u64::from(self.config.banks - 1)) as u32;
                break;
            }
            let mt = self.clock.tick_memory();
            if let Some(bank) = self.pick_grant(mt.memory_cycle) {
                // A grant to a bank whose in-service access has not yet
                // completed is a guaranteed no-op (`on_bus_grant` bails
                // before touching anything) — the packed busy lane answers
                // that from one hot cache line, so the wasted slot never
                // dereferences the BankController at all.
                let busy = self.bank_busy_until[bank];
                if busy != 0 && mt.memory_cycle.as_u64() < busy {
                    if mt.interface_tick {
                        break;
                    }
                    continue;
                }
                let g = self.banks[bank].on_bus_grant(&mut self.dram, mt.memory_cycle);
                // A grant can issue without retiring (busy-until changes,
                // depth does not), so the busy lane resyncs on every
                // grant; the depth lane only when a retire freed a slot
                // (the one queue movement a grant can cause).
                self.bank_busy_until[bank] = g.busy_until;
                if g.retired {
                    let after = g.depth as usize;
                    self.bank_queue_depth[bank] = g.depth;
                    if g.depth + 1 == self.max_depth_lane {
                        self.rescan_max_depth();
                    }
                    if after == 0 {
                        self.ready.remove(bank as u32);
                    }
                    if self.forensics.is_enabled() {
                        self.forensics.record(
                            self.clock.interface_now(),
                            bank as u32,
                            ForensicKind::QueueExit { queue_depth: g.depth },
                        );
                    }
                }
            }
            if mt.interface_tick {
                break;
            }
        }
        let now = self.clock.interface_now();

        // --- interface-clock domain: accept at most one request …
        let mut stall = None;
        let mut read_row: Option<(u32, RowId, TenantId)> = None;
        // Bank that allocated a storage row this tick, for end-of-tick
        // high-water-mark sampling (occupancy can only set a new maximum
        // on a tick that allocated).
        let mut alloc_bank: Option<usize> = None;
        if let Some(req) = request {
            let id = self.next_request_id;
            self.next_request_id += 1;
            if let Some(kind) = self.validate(&req) {
                stall = Some(kind);
                self.metrics.record_stall(kind, now);
                self.trace.record(now, id, TraceKind::Stalled);
            } else {
                let addr = req.addr();
                let tenant = req.tenant();
                let event = match req {
                    Request::Read { addr, .. } => BankEvent::Read { addr },
                    Request::Write { addr, data, .. } => BankEvent::Write { addr, data },
                };
                match self.banks[bank].submit(event) {
                    Ok(Accepted::ReadQueued(row)) => {
                        self.metrics.reads_accepted += 1;
                        self.outstanding += 1;
                        self.metrics.note_outstanding(self.outstanding as u64);
                        read_row = Some((bank as u32, row, tenant));
                        self.trace.record(now, id, TraceKind::Accepted);
                        self.storage_live += 1;
                        alloc_bank = Some(bank);
                        let after = self.banks[bank].queue_depth();
                        self.bank_queue_depth[bank] = after as u32;
                        self.max_depth_lane = self.max_depth_lane.max(after as u32);
                        self.metrics.note_bank_queue_depth(bank, after as u32);
                        // `after > 1` means the bank was already queued
                        // (and so already in the ready set).
                        if after == 1 {
                            self.ready.insert(bank as u32);
                        }
                        if self.forensics.is_enabled() {
                            self.forensics.record(
                                now,
                                bank as u32,
                                ForensicKind::Accepted { addr, row, queue_depth: after as u32 },
                            );
                        }
                    }
                    Ok(Accepted::ReadMerged(row)) => {
                        self.metrics.reads_accepted += 1;
                        self.metrics.reads_merged += 1;
                        self.outstanding += 1;
                        self.metrics.note_outstanding(self.outstanding as u64);
                        read_row = Some((bank as u32, row, tenant));
                        self.trace.record(now, id, TraceKind::Merged);
                        self.forensics.record(now, bank as u32, ForensicKind::Merged { addr, row });
                    }
                    Ok(Accepted::WriteBuffered) => {
                        self.metrics.writes_accepted += 1;
                        self.trace.record(now, id, TraceKind::Accepted);
                        let after = self.banks[bank].queue_depth();
                        self.bank_queue_depth[bank] = after as u32;
                        self.max_depth_lane = self.max_depth_lane.max(after as u32);
                        self.metrics.note_bank_queue_depth(bank, after as u32);
                        self.metrics.note_bank_write_depth(
                            bank,
                            self.banks[bank].write_buffer_depth() as u32,
                        );
                        if after == 1 {
                            self.ready.insert(bank as u32);
                        }
                        if self.forensics.is_enabled() {
                            self.forensics.record(
                                now,
                                bank as u32,
                                ForensicKind::WriteAccepted { addr, queue_depth: after as u32 },
                            );
                        }
                    }
                    Err(kind) => {
                        stall = Some(kind);
                        self.metrics.record_stall(kind, now);
                        self.trace.record(now, id, TraceKind::Stalled);
                        if self.forensics.is_enabled() {
                            let bc = &self.banks[bank];
                            let context = ForensicKind::Stalled {
                                kind,
                                addr,
                                storage_live: bc.storage_occupancy() as u32,
                                queue_depth: bc.queue_depth() as u32,
                                write_depth: bc.write_buffer_depth() as u32,
                            };
                            self.forensics.record(now, bank as u32, context);
                        }
                    }
                }
            }
        }

        // … and advance the shared playback wheel. At most one request
        // enters per interface cycle, so at most one playback falls due.
        let due = {
            let slot = &mut self.ring[self.ring_pos];
            let due = slot.take();
            *slot = read_row;
            // The occupancy bit already equals `due.is_some()`, so at full
            // rate (due read out, new read in) the bitmap needs no write.
            if due.is_some() != read_row.is_some() {
                let bit = 1u64 << (self.ring_pos % 64);
                let word = &mut self.ring_occ[self.ring_pos / 64];
                if read_row.is_some() {
                    *word |= bit;
                } else {
                    *word &= !bit;
                }
            }
            // Branch instead of `%`: the ring length is not a power of
            // two, and this wrap runs every interface cycle.
            let next = self.ring_pos + 1;
            self.ring_pos = if next == self.ring.len() { 0 } else { next };
            due
        };
        // The playback wheel knows every future deadline, so the row
        // falling due a few cycles from now can start its cache-line fill
        // today — by its deadline the row was last touched a whole bank
        // access ago and has long left the cache. (Ring slots themselves
        // stay resident: the wheel is walked sequentially every cycle.)
        const PLAYBACK_LEAD: usize = 8;
        if self.ring.len() > PLAYBACK_LEAD {
            let mut i = self.ring_pos + PLAYBACK_LEAD;
            if i >= self.ring.len() {
                i -= self.ring.len();
            }
            if let Some((bank, row, _)) = self.ring[i] {
                self.banks[bank as usize].prefetch_row(row);
            }
        }
        if let Some((bank, row, tenant)) = due {
            let bc = &mut self.banks[bank as usize];
            let live_before = bc.storage_occupancy();
            let pb = bc.playback(row);
            self.storage_live -= (live_before - bc.storage_occupancy()) as u64;
            let miss = pb.data.is_none();
            let data = match pb.data {
                Some(d) => d,
                None => {
                    self.metrics.deadline_misses += 1;
                    self.zero_cell.clone()
                }
            };
            self.outstanding -= 1;
            self.metrics.responses += 1;
            if self.forensics.is_enabled() {
                self.forensics.record(
                    now,
                    bank,
                    ForensicKind::Returned { addr: pb.addr, row, miss },
                );
            }
            emit(Response {
                addr: pb.addr,
                data,
                issued_at: Cycle::new(now.as_u64() - self.delay),
                completed_at: now,
                tenant,
            });
        }

        // occupancy sampling for the occupancy distributions — O(1) from
        // the incrementally maintained histogram and live-row counter.
        // The per-bank storage high-water mark is sampled at the tick
        // boundary (matching the reference engine's end-of-tick scan) and
        // only for the bank that allocated a row this tick — the only
        // bank whose boundary occupancy can have risen.
        if let Some(bank) = alloc_bank {
            self.metrics.note_bank_storage(bank, self.banks[bank].storage_occupancy() as u32);
        }
        // NOTE: the per-cycle occupancy sample (`sample_cycle`) is the
        // caller's duty — `tick` records it immediately, the batch drive
        // loops run-length-batch it (see `SampleRun`). Histogram updates
        // commute, so the final metrics are identical either way.

        #[cfg(debug_assertions)]
        self.check_incremental_invariants();

        stall
    }

    /// Checks a request against the configured address space and cell
    /// size. Returns the rejection kind for malformed requests.
    fn validate(&self, req: &Request) -> Option<StallKind> {
        let addr = req.addr();
        debug_assert!(
            addr.0 < (1u64 << self.config.addr_bits),
            "address {addr} outside the configured {}-bit space",
            self.config.addr_bits
        );
        if addr.0 >= (1u64 << self.config.addr_bits) {
            return Some(StallKind::AddressRange);
        }
        if let Request::Write { data, .. } = req {
            debug_assert!(
                data.len() <= self.config.cell_bytes,
                "write of {} bytes exceeds cell size {}",
                data.len(),
                self.config.cell_bytes
            );
            if data.len() > self.config.cell_bytes {
                return Some(StallKind::OversizedWrite);
            }
        }
        None
    }

    /// Current maximum bank queue depth. Cached: accepts can only raise
    /// it (one compare), and a retire can only lower it when the retiring
    /// bank sat at the cached maximum — only that case rescans the packed
    /// depth lane (a handful of vector instructions at paper bank counts).
    #[inline]
    fn max_queue_depth(&self) -> u64 {
        u64::from(self.max_depth_lane)
    }

    /// Rescans the depth lane after a retire dethroned the cached max.
    #[inline]
    fn rescan_max_depth(&mut self) {
        self.max_depth_lane = self.bank_queue_depth.iter().copied().max().unwrap_or(0);
    }

    /// Selects this memory cycle's bus grant per the configured policy.
    ///
    /// Semantically identical to granting the round-robin owner (or, for
    /// the work-conserving policy, the deepest ready queue when the owner
    /// would waste the slot) — but `None` short-circuits grants the
    /// original formulation issued to banks with empty queues, where
    /// `on_bus_grant` is a guaranteed no-op.
    #[inline]
    fn pick_grant(&mut self, now_mem: Cycle) -> Option<usize> {
        let rr = self.rr_next;
        // `banks` is validated to be a power of two, so the round-robin
        // wrap is a mask — this runs every memory cycle, where a `div`
        // would be the single most expensive instruction in the loop.
        self.rr_next = (self.rr_next + 1) & (self.config.banks - 1);
        match self.config.scheduler {
            SchedulerKind::RoundRobin => self.ready.contains(rr).then_some(rr as usize),
            SchedulerKind::WorkConserving => {
                // The round-robin owner keeps its slot whenever it has
                // useful work (preserving the per-bank service guarantee
                // that `recommended_delay` relies on); a slot the owner
                // would waste is reclaimed by the deepest ready queue —
                // the "idle slots … can be eliminated" optimization of
                // paper Section 4. Ties break to the last candidate in
                // rotated order, matching `Iterator::max_by_key` over the
                // original scan. The candidate filter reads the packed
                // busy/depth lanes — one cache line per eight banks —
                // instead of dereferencing every ready `BankController`.
                let now = now_mem.as_u64();
                if self.lane_wants_grant(rr as usize, now) {
                    return Some(rr as usize);
                }
                let mut best: Option<(usize, u32)> = None;
                for bank in self.ready.iter_from(rr) {
                    let bank = bank as usize;
                    if !self.lane_wants_grant(bank, now) {
                        continue;
                    }
                    let depth = self.bank_queue_depth[bank];
                    match best {
                        Some((_, best_depth)) if depth < best_depth => {}
                        _ => best = Some((bank, depth)),
                    }
                }
                // The fallback grant to the owner still matters when the
                // owner's in-service access completed and can retire.
                best.map(|(bank, _)| bank)
                    .or_else(|| self.ready.contains(rr).then_some(rr as usize))
            }
        }
    }

    /// [`BankController::wants_grant`] evaluated from the packed
    /// scheduling lanes: the bank holds queued work and either sits idle
    /// or has a completed in-service access plus a successor to issue.
    /// Must stay bit-equivalent to the bank's own answer — the invariant
    /// checker and the grant property tests pin the two together.
    #[inline]
    fn lane_wants_grant(&self, bank: usize, now_mem: u64) -> bool {
        let depth = self.bank_queue_depth[bank];
        if depth == 0 {
            return false;
        }
        let busy = self.bank_busy_until[bank];
        busy == 0 || (now_mem >= busy && depth > 1)
    }

    /// Rebuilds the scheduling lanes from the per-bank ground truth.
    /// Only the tests need this: they hand-build bank states by calling
    /// [`BankController::submit`] directly, bypassing the accept path
    /// that normally keeps the lanes current.
    #[cfg(test)]
    fn resync_lanes(&mut self) {
        for (i, bc) in self.banks.iter().enumerate() {
            self.bank_queue_depth[i] = bc.queue_depth() as u32;
            self.bank_busy_until[i] = bc.in_service_until().map_or(0, |u| u.as_u64());
        }
        self.rescan_max_depth();
    }

    /// Re-derives the incremental indices from first principles — compiled
    /// only into debug builds, where every test doubles as an equivalence
    /// check between the O(1) bookkeeping and the O(B) ground truth.
    #[cfg(debug_assertions)]
    fn check_incremental_invariants(&self) {
        let max = self.banks.iter().map(BankController::queue_depth).max().unwrap_or(0);
        debug_assert_eq!(max as u64, self.max_queue_depth(), "depth lane out of sync");
        let live: usize = self.banks.iter().map(BankController::storage_occupancy).sum();
        debug_assert_eq!(live as u64, self.storage_live, "live-row counter out of sync");
        for (i, bc) in self.banks.iter().enumerate() {
            debug_assert_eq!(
                self.ready.contains(i as u32),
                bc.queue_depth() > 0,
                "ready bit out of sync for bank {i}"
            );
            debug_assert_eq!(
                self.bank_queue_depth[i] as usize,
                bc.queue_depth(),
                "queue-depth lane out of sync for bank {i}"
            );
            debug_assert_eq!(
                self.bank_busy_until[i],
                bc.in_service_until().map_or(0, |u| u.as_u64()),
                "busy-until lane out of sync for bank {i}"
            );
        }
        for (i, slot) in self.ring.iter().enumerate() {
            debug_assert_eq!(
                self.ring_occ[i / 64] >> (i % 64) & 1 == 1,
                slot.is_some(),
                "ring occupancy bit out of sync at slot {i}"
            );
        }
    }

    /// Drives the controller for `cycles` interface cycles, pulling at
    /// most one request per cycle from `source` (called with the cycle
    /// count *before* the tick; the request is presented on the following
    /// edge). Returns the responses and acceptance counts.
    ///
    /// This is the batched front door for benchmarks and experiment
    /// drivers: idle stretches (cycles where `source` returns `None` and
    /// no bank has work) cost almost nothing thanks to the idle
    /// fast-forward.
    pub fn run(
        &mut self,
        cycles: u64,
        mut source: impl FnMut(Cycle) -> Option<Request>,
    ) -> RunReport {
        let mut report = RunReport::default();
        for _ in 0..cycles {
            let request = source(self.now());
            let presented = request.is_some();
            let out = self.tick(request);
            if let Some(r) = out.response {
                report.responses.push(r);
            }
            match out.stall {
                None => report.accepted += u64::from(presented),
                Some(kind) if kind.is_rejection() => report.rejected += 1,
                Some(_) => report.stalled += 1,
            }
        }
        report
    }

    /// Drives the controller for `budget.max(requests.len())` interface
    /// cycles, presenting `requests[i]` on cycle `i` (cycles beyond the
    /// slice are idle). Produces exactly the same responses, metrics, and
    /// acceptance counts as the equivalent [`VpnmController::tick`]
    /// sequence — a property test pins this — but amortizes two costs the
    /// per-tick path pays every cycle:
    ///
    /// * **Batched hashing**: the bank mapping of every request in the
    ///   slice is computed in one [`HashEngine::hash_batch`] call up
    ///   front, letting the hash tables stay hot in cache across the
    ///   whole batch instead of being re-touched once per cycle.
    /// * **Event-horizon skipping**: inside a run of idle cycles (no
    ///   request presented, no bank with queued work), the next observable
    ///   event is the earliest of the next request, the next delay-ring
    ///   playback, and the end of the budget — so the clock jumps straight
    ///   there. This generalizes the per-tick idle fast-forward (which
    ///   still paid one `tick` call per idle interface cycle) into a true
    ///   next-event jump. Skipped spans are counted in
    ///   [`VpnmController::cycles_skipped`] and recorded as one
    ///   [`ForensicKind::FastForward`] event when forensics are enabled.
    pub fn run_batch(&mut self, requests: &[Option<Request>], budget: u64) -> RunReport {
        let len = requests.len() as u64;
        let total = budget.max(len);
        // Pre-hash every presented address in one batched pass. The hash
        // is total over u64, so malformed (out-of-range) addresses get a
        // bank too — it is simply never read, because `step` validates
        // before consulting it.
        let mut addrs: Vec<u64> = Vec::with_capacity(requests.len());
        addrs.extend(requests.iter().flatten().map(|r| r.addr().0));
        let mut banks = vec![0u32; addrs.len()];
        self.hash.hash_batch(&addrs, &mut banks);

        let mut report = RunReport::default();
        let mut samples = SampleRun::default();
        // Cursor into `banks`, advanced once per `Some` request visited
        // (skips only ever jump over `None` entries, so it stays aligned).
        let mut next_bank = 0usize;
        // Exclusive end of the known idle (all-`None`) run containing the
        // current cycle, cached so repeated skip attempts inside one gap
        // never rescan the request slice.
        let mut gap_end = 0u64;
        let mut i = 0u64;
        while i < total {
            let idle = i >= len || requests[i as usize].is_none();
            if idle {
                if gap_end <= i {
                    let mut j = i + 1;
                    while j < len && requests[j as usize].is_none() {
                        j += 1;
                    }
                    gap_end = if j >= len { total } else { j };
                }
                let n = if self.ready.is_empty() {
                    self.skip_idle(gap_end - i)
                } else {
                    self.skip_busy(gap_end - i)
                };
                if n > 0 {
                    i += n;
                    continue;
                }
                // n == 0: a playback falls due (or a bus grant does real
                // work) this very cycle — take the normal step below.
            }
            let (request, bank) = if i < len {
                match &requests[i as usize] {
                    Some(r) => {
                        let b = banks[next_bank] as usize;
                        next_bank += 1;
                        (Some(r.clone()), b)
                    }
                    None => (None, 0),
                }
            } else {
                (None, 0)
            };
            let presented = request.is_some();
            let stall = self.step(request, bank, &mut |r| report.responses.push(r));
            let depth = self.max_queue_depth();
            samples.push(&mut self.metrics, depth, self.storage_live);
            match stall {
                None => report.accepted += u64::from(presented),
                Some(kind) if kind.is_rejection() => report.rejected += 1,
                Some(_) => report.stalled += 1,
            }
            i += 1;
        }
        samples.flush(&mut self.metrics);
        report
    }

    /// [`VpnmController::run_batch`] over a **sparse** epoch: advances
    /// `len` interface cycles presenting `requests[k].1` on cycle
    /// `requests[k].0` (offsets strictly increasing, `< len`); every
    /// other cycle is idle. Exactly equivalent to `run_batch` over the
    /// densified span — same responses, metrics, and skip accounting (a
    /// test pins this) — but the cost scales with the number of requests
    /// and due playbacks, not with `len`: idle gaps are *known* from the
    /// offsets, so no dense `Option` slice is ever materialized or
    /// scanned. This is what makes a multi-channel
    /// [`crate::VpnmFabric`] epoch cheap — each channel of a `C`-channel
    /// fabric sees only `1/C` of the stream and jumps straight across the
    /// other `C-1`/`C` of the epoch.
    pub fn run_sparse(&mut self, len: u64, requests: &[(u64, Request)]) -> RunReport {
        debug_assert!(
            requests.windows(2).all(|p| p[0].0 < p[1].0)
                && requests.last().is_none_or(|&(o, _)| o < len),
            "offsets must be strictly increasing and < len"
        );
        // Pre-hash every presented address in one batched pass, exactly
        // like `run_batch` (the hash is total over u64, so malformed
        // addresses hash harmlessly — `step` validates before use).
        let mut addrs: Vec<u64> = Vec::with_capacity(requests.len());
        addrs.extend(requests.iter().map(|(_, r)| r.addr().0));
        let mut banks = vec![0u32; addrs.len()];
        self.hash.hash_batch(&addrs, &mut banks);

        let mut report = RunReport::default();
        let mut samples = SampleRun::default();
        let mut k = 0usize;
        let mut i = 0u64;
        while i < len {
            let next_req = requests.get(k).map_or(len, |&(o, _)| o);
            if i < next_req {
                let n = if self.ready.is_empty() {
                    self.skip_idle(next_req - i)
                } else {
                    self.skip_busy(next_req - i)
                };
                if n > 0 {
                    i += n;
                    continue;
                }
                // n == 0: a playback falls due (or a bus grant does real
                // work) this very cycle — take the normal (idle) step
                // below.
            }
            let (request, bank) = if i == next_req {
                let b = banks[k] as usize;
                let r = requests[k].1.clone();
                k += 1;
                (Some(r), b)
            } else {
                (None, 0)
            };
            let presented = request.is_some();
            let stall = self.step(request, bank, &mut |r| report.responses.push(r));
            let depth = self.max_queue_depth();
            samples.push(&mut self.metrics, depth, self.storage_live);
            match stall {
                None => report.accepted += u64::from(presented),
                Some(kind) if kind.is_rejection() => report.rejected += 1,
                Some(_) => report.stalled += 1,
            }
            i += 1;
        }
        samples.flush(&mut self.metrics);
        report
    }

    /// [`VpnmController::run_batch`] specialized to an all-read request
    /// stream given as raw line addresses: `addrs[i]` is presented as
    /// `Request::Read` on cycle `i`, and cycles `addrs.len()..budget` are
    /// idle. Exactly equivalent to the `run_batch` call over the same
    /// stream (a test pins this) but without materializing a
    /// `Vec<Option<Request>>` — the dominant cost of driving a full-load
    /// read benchmark, where the request enum is pure overhead around an
    /// 8-byte address.
    pub fn run_reads(&mut self, addrs: &[u64], budget: u64) -> RunReport {
        let mut responses = Vec::new();
        let counts = self.run_reads_with(addrs, budget, |r| responses.push(r));
        RunReport {
            responses,
            accepted: counts.accepted,
            stalled: counts.stalled,
            rejected: counts.rejected,
        }
    }

    /// [`VpnmController::run_reads`] with responses streamed to a sink
    /// instead of collected: throughput measurement and campaign shards
    /// fold each [`Response`] into counters on the spot, so buffering
    /// every response of a long run would be pure memory traffic.
    /// Addresses are bank-hashed in cache-sized chunks via
    /// [`HashEngine::hash_batch`].
    pub fn run_reads_with(
        &mut self,
        addrs: &[u64],
        budget: u64,
        mut on_response: impl FnMut(Response),
    ) -> RunCounts {
        const CHUNK: usize = 1024;
        let len = addrs.len() as u64;
        let total = budget.max(len);
        let mut counts = RunCounts::default();
        let mut samples = SampleRun::default();
        let mut banks = [0u32; CHUNK];
        for chunk in addrs.chunks(CHUNK) {
            let banks = &mut banks[..chunk.len()];
            self.hash.hash_batch(chunk, banks);
            for (&addr, &bank) in chunk.iter().zip(banks.iter()) {
                let stall =
                    self.step(Some(Request::read(LineAddr(addr))), bank as usize, &mut |r| {
                        counts.responses += 1;
                        on_response(r);
                    });
                let depth = self.max_queue_depth();
                samples.push(&mut self.metrics, depth, self.storage_live);
                match stall {
                    None => counts.accepted += 1,
                    Some(kind) if kind.is_rejection() => counts.rejected += 1,
                    Some(_) => counts.stalled += 1,
                }
            }
        }
        // Idle tail out to the budget, with event-horizon skipping.
        let mut i = len;
        while i < total {
            let n = if self.ready.is_empty() {
                self.skip_idle(total - i)
            } else {
                self.skip_busy(total - i)
            };
            if n > 0 {
                i += n;
                continue;
            }
            self.step(None, 0, &mut |r| {
                counts.responses += 1;
                on_response(r);
            });
            let depth = self.max_queue_depth();
            samples.push(&mut self.metrics, depth, self.storage_live);
            i += 1;
        }
        samples.flush(&mut self.metrics);
        counts
    }

    /// Dense batch issue: advances exactly `requests.len()` interface
    /// cycles, presenting `requests[i]` on cycle `i` — the saturated-load
    /// counterpart of [`VpnmController::run_batch`], for callers whose
    /// span has a request on *every* cycle (epoch-batched front-ends at
    /// line rate). Observationally identical to `run_batch` over the
    /// `Some`-wrapped slice (a property test pins this), but the drive
    /// loop carries no `Option` scanning and no idle/skip machinery:
    /// addresses are bank-hashed in cache-sized chunks through the
    /// batched (SIMD where available) [`HashEngine::hash_batch`] path,
    /// and the per-cycle work is one prefetched `step`.
    pub fn issue_batch(&mut self, requests: &[Request]) -> RunReport {
        const CHUNK: usize = 1024;
        let mut report = RunReport::default();
        let mut samples = SampleRun::default();
        // Full-rate batches answer ~one read per cycle; reserving up front
        // keeps the response collection out of the reallocation path.
        report.responses.reserve(requests.len());
        let mut addrs = [0u64; CHUNK];
        let mut banks = [0u32; CHUNK];
        for chunk in requests.chunks(CHUNK) {
            let addrs = &mut addrs[..chunk.len()];
            let banks = &mut banks[..chunk.len()];
            for (a, r) in addrs.iter_mut().zip(chunk) {
                *a = r.addr().0;
            }
            self.hash.hash_batch(addrs, banks);
            for k in 0..chunk.len() {
                let stall = self.step(Some(chunk[k].clone()), banks[k] as usize, &mut |r| {
                    report.responses.push(r)
                });
                let depth = self.max_queue_depth();
                samples.push(&mut self.metrics, depth, self.storage_live);
                match stall {
                    None => report.accepted += 1,
                    Some(kind) if kind.is_rejection() => report.rejected += 1,
                    Some(_) => report.stalled += 1,
                }
            }
        }
        samples.flush(&mut self.metrics);
        report
    }

    /// Fast-forwards through up to `gap` interface cycles that are known
    /// to present no request, with no bank holding queued work (`ready`
    /// empty). Returns the cycles actually skipped: the distance to the
    /// next due playback caps the jump, and 0 means a playback falls due
    /// on the current cycle, which needs a normal step.
    ///
    /// Every controller field changes exactly as that many `tick(None)`
    /// calls would have changed it — no grant fires (ready set empty), no
    /// playback falls due (ring span empty), and queue depths / storage
    /// occupancy are frozen, so the occupancy samples are identical by
    /// bulk-recording.
    fn skip_idle(&mut self, gap: u64) -> u64 {
        debug_assert!(self.ready.is_empty());
        // Occupied ring slots equal `outstanding` reads, so an empty
        // controller skips the whole gap without scanning.
        let n = if self.outstanding == 0 { gap } else { gap.min(self.next_due_distance()) };
        if n > 0 {
            let m = self.clock.advance_interfaces(n);
            self.rr_next =
                ((u64::from(self.rr_next) + m) & u64::from(self.config.banks - 1)) as u32;
            self.ring_pos = ((self.ring_pos as u64 + n) % self.ring.len() as u64) as usize;
            let depth = self.max_queue_depth();
            self.metrics.sample_cycles(depth, self.storage_live, n);
            self.cycles_skipped += n;
            if self.forensics.is_enabled() {
                self.forensics.record(
                    self.clock.interface_now(),
                    0,
                    ForensicKind::FastForward { interface_cycles: n },
                );
            }
        }
        n
    }

    /// The busy-bank generalization of [`VpnmController::skip_idle`]:
    /// fast-forwards through up to `gap` request-free interface cycles
    /// even while banks hold in-service accesses, by proving every bus
    /// grant in the skipped span is wasted. Under the round-robin policy
    /// the `j`-th upcoming memory tick grants bank
    /// `(rr_next + j - 1) & mask`, and a grant changes state only when it
    /// lands on a *ready* bank whose in-service access (if any) has
    /// completed — retirement, and possibly the next issue, happen on
    /// exactly that tick. Both the rotor and the completion times are
    /// known, so the earliest state-changing tick is a closed-form
    /// minimum over the ready banks; the skip covers the interface cycles
    /// that end strictly before it (and never crosses a due playback),
    /// and the following normal step replays the event exactly as the
    /// per-cycle loop would. Wasted grants have no side effects at all —
    /// `pick_grant` either returns `None` (rotor on a non-ready bank) or
    /// `on_bus_grant` bails before mutating (bank mid-service), and
    /// device stats are only touched by issued accesses — so every
    /// controller field evolves exactly as the stepped path evolves it.
    ///
    /// Returns the interface cycles skipped; 0 means the current cycle
    /// must be stepped normally. The work-conserving ablation scans all
    /// ready banks every memory tick, so its useful-grant horizon is not
    /// a rotor-landing computation — it always steps (returns 0).
    fn skip_busy(&mut self, gap: u64) -> u64 {
        debug_assert!(!self.ready.is_empty());
        if self.skip_backoff > 0 {
            self.skip_backoff -= 1;
            return 0;
        }
        if self.config.scheduler != SchedulerKind::RoundRobin {
            return 0;
        }
        let cap = if self.outstanding == 0 { gap } else { gap.min(self.next_due_distance()) };
        if cap == 0 {
            return 0;
        }
        let mem_now = self.clock.memory_now().as_u64();
        let banks = u64::from(self.config.banks);
        let mask = self.config.banks - 1;
        let mut event = u64::MAX;
        for b in self.ready.iter_from(self.rr_next) {
            // First rotor landing on `b` is tick `first`; if the bank is
            // still serving until then, the first *useful* landing is the
            // next one at or after its completion.
            let first = u64::from(b.wrapping_sub(self.rr_next) & mask) + 1;
            // Busy lane read: a dense u64 per bank instead of a pointer
            // chase into the bank controller for each ready bank.
            let free_in = self.bank_busy_until[b as usize].saturating_sub(mem_now);
            let j = if first >= free_in {
                first
            } else {
                first + (free_in - first).div_ceil(banks) * banks
            };
            event = event.min(j);
            if event == 1 {
                return 0; // the very next memory tick does useful work
            }
        }
        let n = self.clock.interfaces_within_memory(event - 1).min(cap);
        if n < SKIP_BUSY_MIN {
            // Too short to pay for this very computation: grants are
            // landing on ready banks every few memory ticks (e.g. a
            // full-rate stream keeping two banks busy), and stepping a
            // handful of idle cycles is cheaper than proving them
            // skippable. Remember that for a while so the dense regime
            // pays one branch per idle cycle, not one horizon scan.
            self.skip_backoff = SKIP_BUSY_BACKOFF;
            return 0;
        }
        let m = self.clock.advance_interfaces(n);
        debug_assert!(m < event, "skip must stop short of the state-changing tick");
        self.rr_next = ((u64::from(self.rr_next) + m) & u64::from(mask)) as u32;
        self.ring_pos = ((self.ring_pos as u64 + n) % self.ring.len() as u64) as usize;
        let depth = self.max_queue_depth();
        self.metrics.sample_cycles(depth, self.storage_live, n);
        self.cycles_skipped += n;
        if self.forensics.is_enabled() {
            self.forensics.record(
                self.clock.interface_now(),
                0,
                ForensicKind::FastForward { interface_cycles: n },
            );
        }
        n
    }

    /// Interface cycles from now until the next occupied delay-ring slot
    /// falls due (0 when `ring[ring_pos]` itself is occupied), found by
    /// scanning the occupancy bitset a word at a time.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ring is empty; callers guard on
    /// `outstanding > 0`.
    fn next_due_distance(&self) -> u64 {
        let len = self.ring.len();
        let pos = self.ring_pos;
        match first_set_bit(&self.ring_occ, pos, len) {
            Some(p) => (p - pos) as u64,
            None => {
                let p = first_set_bit(&self.ring_occ, 0, pos)
                    .expect("outstanding > 0 implies an occupied ring slot");
                (len - pos + p) as u64
            }
        }
    }

    /// Ticks with no request until all outstanding reads have been
    /// answered, returning the collected responses.
    ///
    /// # Panics
    ///
    /// Panics if draining takes more than `outstanding × D + D` cycles,
    /// which would indicate a broken deterministic-latency invariant.
    pub fn drain(&mut self) -> Vec<Response> {
        let budget = (self.outstanding as u64 + 1) * self.delay + self.delay;
        let mut out = Vec::with_capacity(self.outstanding);
        let mut spent = 0u64;
        while self.outstanding > 0 {
            assert!(spent <= budget, "drain exceeded {budget} cycles");
            if let Some(r) = self.tick(None).response {
                out.push(r);
            }
            spent += 1;
        }
        out
    }

    /// Re-keys the universal mapping and migrates the stored data — the
    /// paper's response to repeated stalls (Section 4: "change the
    /// universal mapping function and reordering the data on the
    /// occurrence of multiple stalls (an expensive operation, but
    /// certainly possible with frequency on the order of once a day)").
    ///
    /// Outstanding reads are drained first (the returned responses are
    /// handed back), then every populated line moves to its new bank.
    /// Returns `(drained_responses, lines_migrated)`.
    ///
    /// # Panics
    ///
    /// Panics if draining exceeds its budget, which would indicate a
    /// broken deterministic-latency invariant.
    pub fn rekey(&mut self, new_seed: u64) -> (Vec<Response>, u64) {
        let drained = self.drain();
        // Also flush buffered writes so the migration sees final contents.
        let mut guard = 0u64;
        while self.banks.iter().any(|b| b.queue_depth() > 0 || b.write_buffer_depth() > 0) {
            self.tick(None);
            guard += 1;
            assert!(guard <= 4 * self.delay * u64::from(self.config.banks), "write flush stuck");
        }
        let new_hash = HashEngine::from_seed(
            self.config.hash,
            self.config.addr_bits,
            self.config.bank_bits(),
            new_seed,
        );
        // Walk the populated cells: offset == line address in our layout,
        // so a line moves when its bank assignment changes.
        let mut moved = 0u64;
        for (bank, offset) in self.dram.populated() {
            let new_bank = new_hash.bank_of(offset);
            if new_bank != bank {
                let data = self.dram.take(bank, offset).expect("listed as populated");
                self.dram.poke(new_bank, offset, data);
                moved += 1;
            }
        }
        self.hash = new_hash;
        (drained, moved)
    }

    /// Submits a request under the given stall policy, ticking until it is
    /// accepted (Block) or giving up immediately (Drop). Returns all
    /// responses that became due while waiting, plus whether the request
    /// was ultimately accepted.
    ///
    /// Malformed requests are rejected immediately under either policy —
    /// retrying can never make an out-of-range address valid.
    pub fn submit_with_policy(
        &mut self,
        request: Request,
        policy: StallPolicy,
    ) -> (Vec<Response>, bool) {
        let mut responses = Vec::new();
        let pending = Some(request);
        loop {
            let out = self.tick(pending.clone());
            responses.extend(out.response);
            match (out.stall, policy) {
                (None, _) => return (responses, true),
                (Some(kind), _) if kind.is_rejection() => return (responses, false),
                (Some(_), StallPolicy::Drop) => return (responses, false),
                (Some(_), StallPolicy::Block) => {
                    // keep `pending` and retry next cycle
                    debug_assert!(pending.is_some());
                }
            }
        }
    }
}

/// Convenience constructors for the two request kinds.
impl VpnmController {
    /// Shorthand for ticking with a read request.
    pub fn tick_read(&mut self, addr: impl Into<LineAddr>) -> TickOutput {
        self.tick(Some(Request::read(addr.into())))
    }

    /// Shorthand for ticking with a write request.
    pub fn tick_write(&mut self, addr: impl Into<LineAddr>, data: impl Into<Bytes>) -> TickOutput {
        self.tick(Some(Request::write(addr.into(), data)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_engine::HashKind;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small() -> VpnmController {
        VpnmController::new(VpnmConfig::small_test(), 1).unwrap()
    }

    #[test]
    fn every_read_latency_is_exactly_d() {
        let mut mem = small();
        let d = mem.delay();
        let mut rng = StdRng::seed_from_u64(7);
        let mut issued = 0u64;
        let mut completed = 0u64;
        for _ in 0..2000 {
            let addr = rng.gen_range(0..1u64 << 16);
            let out = mem.tick_read(addr);
            if out.accepted() {
                issued += 1;
            }
            if let Some(r) = out.response {
                assert_eq!(r.latency(), d, "latency must be deterministic");
                completed += 1;
            }
        }
        completed += mem.drain().len() as u64;
        assert_eq!(issued, completed);
        assert_eq!(mem.metrics().deadline_misses, 0);
    }

    #[test]
    fn read_your_writes() {
        let mut mem = small();
        for a in 0..32u64 {
            let out = mem.tick_write(a, vec![a as u8 + 1]);
            assert!(out.accepted());
        }
        let mut got = Vec::new();
        for a in 0..32u64 {
            let out = mem.tick_read(a);
            assert!(out.accepted());
            got.extend(out.response);
        }
        got.extend(mem.drain());
        assert_eq!(got.len(), 32);
        for r in got {
            assert_eq!(r.data[0], r.addr.0 as u8 + 1, "addr {}", r.addr);
        }
    }

    #[test]
    fn redundant_stream_merges_and_answers() {
        // "A,A,A,A,…" must be absorbed by the merging queue (paper
        // Section 3.4) without bank-access-queue pressure.
        let mut mem = small();
        mem.tick_write(5, vec![0x55]);
        let mut responses = 0;
        for _ in 0..500 {
            let out = mem.tick_read(5);
            assert!(out.accepted(), "merging must prevent stalls on A,A,A,…");
            responses += out.response.iter().len();
        }
        responses += mem.drain().len();
        assert_eq!(responses, 500);
        assert!(mem.metrics().reads_merged >= 490);
        assert_eq!(mem.metrics().total_stalls(), 0);
    }

    #[test]
    fn a_b_pattern_merges_too() {
        let mut mem = small();
        mem.tick_write(1, vec![0xA1]);
        mem.tick_write(2, vec![0xB2]);
        let mut responses: Vec<Response> = Vec::new();
        for i in 0..400 {
            let addr = if i % 2 == 0 { 1 } else { 2 };
            let out = mem.tick_read(addr);
            assert!(out.accepted());
            responses.extend(out.response);
        }
        responses.extend(mem.drain());
        assert_eq!(responses.len(), 400);
        for r in &responses {
            let want = if r.addr.0 == 1 { 0xA1 } else { 0xB2 };
            assert_eq!(r.data[0], want);
        }
        assert_eq!(mem.metrics().total_stalls(), 0);
    }

    #[test]
    fn adversarial_single_bank_stream_stalls_lowbits() {
        // With the non-universal low-bits mapping an adversary strides by
        // B and swamps one bank — the design the paper's randomization
        // fixes.
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut stalls = 0;
        for i in 0..200u64 {
            let out = mem.tick_read(i * 4); // all hit bank 0
            stalls += u64::from(!out.accepted());
        }
        assert!(stalls > 50, "expected heavy stalling, saw {stalls}");
        // And the same stream under H3 sails through (different banks).
        let cfg = VpnmConfig::small_test().with_hash(HashKind::H3);
        let mut mem = VpnmController::new(cfg, 3).unwrap();
        let mut h3_stalls = 0;
        for i in 0..200u64 {
            let out = mem.tick_read(i * 4);
            h3_stalls += u64::from(!out.accepted());
        }
        assert!(h3_stalls < stalls / 4, "h3 {h3_stalls} vs lowbits {stalls}");
    }

    #[test]
    fn first_stall_time_recorded() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        for i in 0..100u64 {
            mem.tick_read(i * 4);
        }
        let m = mem.metrics();
        assert!(m.total_stalls() > 0);
        assert!(m.first_stall_at.is_some());
    }

    #[test]
    fn blocking_policy_eventually_accepts() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut accepted = 0;
        let mut responses = Vec::new();
        for i in 0..50u64 {
            let (rs, ok) =
                mem.submit_with_policy(Request::read(LineAddr(i * 4)), StallPolicy::Block);
            responses.extend(rs);
            accepted += u64::from(ok);
        }
        responses.extend(mem.drain());
        assert_eq!(accepted, 50);
        assert_eq!(responses.len(), 50);
    }

    #[test]
    fn drop_policy_loses_requests_but_continues() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut dropped = 0;
        let mut responses = Vec::new();
        for i in 0..100u64 {
            let (rs, ok) =
                mem.submit_with_policy(Request::read(LineAddr(i * 4)), StallPolicy::Drop);
            responses.extend(rs);
            dropped += u64::from(!ok);
        }
        assert!(dropped > 0);
        responses.extend(mem.drain());
        assert_eq!(responses.len() as u64, 100 - dropped);
    }

    #[test]
    fn mixed_random_workload_differentially_checked() {
        // Golden-model check against a plain map: every read result must
        // equal the last write accepted before the read was accepted.
        use std::collections::HashMap;
        let mut mem = small();
        let mut rng = StdRng::seed_from_u64(99);
        let mut golden: HashMap<u64, u8> = HashMap::new();
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new(); // keyed by issue cycle
        let mut all: Vec<Response> = Vec::new();
        for _ in 0..3000 {
            let addr = rng.gen_range(0..64u64);
            let out = if rng.gen_bool(0.3) {
                let v = rng.gen::<u8>();
                let out = mem.tick_write(addr, vec![v]);
                if out.accepted() {
                    golden.insert(addr, v);
                }
                out
            } else {
                let out = mem.tick_read(addr);
                if out.accepted() {
                    let snapshot = vec![golden.get(&addr).copied().unwrap_or(0)];
                    expected.insert(mem.now().as_u64(), snapshot);
                }
                out
            };
            all.extend(out.response);
        }
        all.extend(mem.drain());
        assert_eq!(mem.metrics().deadline_misses, 0);
        for r in all {
            let want = expected
                .remove(&r.issued_at.as_u64())
                .unwrap_or_else(|| panic!("unexpected response issued at {}", r.issued_at));
            assert_eq!(r.data[0], want[0], "addr {}", r.addr);
        }
        assert!(expected.is_empty(), "responses missing for {} reads", expected.len());
    }

    #[test]
    fn throughput_near_line_rate_under_uniform_load() {
        // Paper Section 3.2: "the memory bandwidth delivered by the entire
        // scheme is almost equal to the case where there are no bank
        // conflicts."
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let total = 20_000u64;
        let mut accepted = 0u64;
        for _ in 0..total {
            let out = mem.tick_read(rng.gen_range(0..1u64 << 16));
            accepted += u64::from(out.accepted());
        }
        let rate = accepted as f64 / total as f64;
        assert!(rate > 0.999, "acceptance rate {rate}");
    }

    #[test]
    fn trace_records_lifecycle() {
        let cfg = VpnmConfig::small_test().with_trace_capacity(64);
        let mut mem = VpnmController::new(cfg, 1).unwrap();
        mem.tick_read(1);
        mem.tick_read(1);
        assert!(mem.trace().len() >= 2);
    }

    #[test]
    fn rekey_preserves_data_and_changes_mapping() {
        use vpnm_hash::BankHasher;
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 50).unwrap();
        for a in 0..64u64 {
            assert!(mem.tick_write(a, vec![a as u8]).accepted());
        }
        // put a read in flight to exercise the drain path
        mem.tick_read(7);
        let old_map: Vec<u32> = (0..64u64).map(|a| mem.hash().bank_of(a)).collect();
        let (drained, moved) = mem.rekey(51);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].data[0], 7);
        let new_map: Vec<u32> = (0..64u64).map(|a| mem.hash().bank_of(a)).collect();
        assert_ne!(old_map, new_map, "re-keying must reshuffle banks");
        assert!(moved > 0, "some populated lines must have migrated");
        // every line still reads back correctly through the new mapping
        for a in 0..64u64 {
            assert!(mem.tick_read(a).accepted());
        }
        let responses = mem.drain();
        assert_eq!(responses.len(), 64);
        for r in responses {
            assert_eq!(r.data[0], r.addr.0 as u8, "post-rekey data intact at {}", r.addr);
        }
    }

    #[test]
    fn work_conserving_scheduler_upholds_invariants() {
        let cfg = VpnmConfig {
            scheduler: crate::config::SchedulerKind::WorkConserving,
            ..VpnmConfig::small_test()
        };
        let mut mem = VpnmController::new(cfg, 9).unwrap();
        let d = mem.delay();
        let mut rng = StdRng::seed_from_u64(31);
        let mut issued = 0u64;
        let mut done = 0u64;
        for _ in 0..5000 {
            let out = mem.tick_read(rng.gen_range(0..1u64 << 16));
            issued += u64::from(out.accepted());
            if let Some(r) = out.response {
                assert_eq!(r.latency(), d);
                done += 1;
            }
        }
        done += mem.drain().len() as u64;
        assert_eq!(issued, done);
        assert_eq!(mem.metrics().deadline_misses, 0);
    }

    #[test]
    fn work_conserving_never_stalls_more_than_round_robin() {
        // The reclaimed slots can only help: compare stall counts on the
        // same saturating stream.
        let run = |scheduler| {
            let cfg = VpnmConfig { scheduler, ..VpnmConfig::small_test() };
            let mut mem = VpnmController::new(cfg, 77).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            for _ in 0..30_000 {
                mem.tick_read(rng.gen_range(0..1u64 << 16));
            }
            mem.metrics().total_stalls()
        };
        let rr = run(crate::config::SchedulerKind::RoundRobin);
        let wc = run(crate::config::SchedulerKind::WorkConserving);
        assert!(wc <= rr, "work-conserving ({wc}) must not exceed round-robin ({rr})");
    }

    #[test]
    fn merging_disabled_stalls_on_redundant_flood() {
        let cfg = VpnmConfig { merging: false, ..VpnmConfig::small_test() };
        let mut mem = VpnmController::new(cfg, 5).unwrap();
        let mut stalls = 0u64;
        for _ in 0..500 {
            stalls += u64::from(!mem.tick_read(42).accepted());
        }
        assert!(stalls > 300, "A,A,A flood must devastate the no-merge ablation: {stalls}");
    }

    #[test]
    fn out_of_range_address_rejected() {
        let mut mem = small();
        if cfg!(debug_assertions) {
            // Debug builds still assert at the source of the caller bug.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                mem.tick_read(1u64 << 20);
            }));
            assert!(result.is_err(), "debug builds must assert on malformed addresses");
        } else {
            // Release builds reject gracefully and keep running.
            let out = mem.tick_read(1u64 << 20);
            assert_eq!(out.stall, Some(StallKind::AddressRange));
            assert!(!out.accepted());
            assert_eq!(mem.metrics().malformed_rejections, 1);
            assert_eq!(mem.metrics().total_stalls(), 0, "rejections are not stalls");
            assert!(mem.metrics().first_stall_at.is_none());
            assert!(mem.tick_read(1).accepted(), "controller must keep working");
        }
    }

    #[test]
    fn oversized_write_rejected() {
        let mut mem = small();
        let too_big = vec![0u8; mem.config().cell_bytes + 1];
        if cfg!(debug_assertions) {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                mem.tick_write(1, too_big.clone());
            }));
            assert!(result.is_err(), "debug builds must assert on oversized writes");
        } else {
            let out = mem.tick_write(1, too_big);
            assert_eq!(out.stall, Some(StallKind::OversizedWrite));
            assert_eq!(mem.metrics().malformed_rejections, 1);
            assert_eq!(mem.metrics().total_stalls(), 0);
            assert!(mem.tick_write(1, vec![1]).accepted(), "controller must keep working");
        }
    }

    #[test]
    fn blocking_policy_gives_up_on_malformed_request() {
        if cfg!(debug_assertions) {
            return; // covered by the assertion tests above
        }
        let mut mem = small();
        // Under Block a retryable stall would loop; a rejection must
        // return immediately instead of spinning forever.
        let (rs, ok) = mem.submit_with_policy(Request::read(LineAddr(1 << 20)), StallPolicy::Block);
        assert!(!ok);
        assert!(rs.is_empty());
    }

    #[test]
    fn invalid_config_reports_error() {
        let cfg = VpnmConfig::small_test().with_banks(3);
        assert!(VpnmController::new(cfg, 0).is_err());
    }

    #[test]
    fn run_batches_match_manual_ticks() {
        let mk = || VpnmController::new(VpnmConfig::small_test(), 11).unwrap();
        let reqs: Vec<Option<Request>> = (0..2000u64)
            .map(|i| {
                if i % 3 == 0 {
                    Some(Request::read(LineAddr(i * 37 % 5000)))
                } else if i % 7 == 0 {
                    Some(Request::write(LineAddr(i % 64), vec![i as u8]))
                } else {
                    None
                }
            })
            .collect();

        let mut manual = mk();
        let mut manual_responses = Vec::new();
        let mut accepted = 0u64;
        let mut stalled = 0u64;
        for r in &reqs {
            let out = manual.tick(r.clone());
            manual_responses.extend(out.response);
            match out.stall {
                None => accepted += u64::from(r.is_some()),
                Some(k) if k.is_rejection() => {}
                Some(_) => stalled += 1,
            }
        }

        let mut batched = mk();
        let mut it = reqs.iter().cloned();
        let report = batched.run(reqs.len() as u64, |_| it.next().flatten());
        assert_eq!(report.responses, manual_responses);
        assert_eq!(report.accepted, accepted);
        assert_eq!(report.stalled, stalled);
        assert_eq!(report.rejected, 0);
        assert_eq!(manual.metrics(), batched.metrics());
    }

    #[test]
    fn run_batch_matches_manual_ticks_and_skips() {
        // A bursty trace with long idle gaps: the batched path must take
        // event-horizon skips (cycles_skipped > 0) and still be
        // observationally identical to the tick-by-tick run.
        let mk = || VpnmController::new(VpnmConfig::small_test(), 11).unwrap();
        let mut reqs: Vec<Option<Request>> = Vec::new();
        for burst in 0..20u64 {
            for i in 0..12u64 {
                let a = (burst * 977 + i * 37) % 5000;
                reqs.push(Some(if i % 5 == 4 {
                    Request::write(LineAddr(a % 64), vec![i as u8])
                } else {
                    Request::read(LineAddr(a))
                }));
            }
            reqs.extend(std::iter::repeat_n(None, 60 + burst as usize));
        }
        let budget = reqs.len() as u64 + 200;

        let mut manual = mk();
        let mut manual_report = RunReport::default();
        for r in &reqs {
            let out = manual.tick(r.clone());
            manual_report.responses.extend(out.response);
            match out.stall {
                None => manual_report.accepted += u64::from(r.is_some()),
                Some(k) if k.is_rejection() => manual_report.rejected += 1,
                Some(_) => manual_report.stalled += 1,
            }
        }
        for _ in reqs.len() as u64..budget {
            manual_report.responses.extend(manual.tick(None).response);
        }

        let mut batched = mk();
        let report = batched.run_batch(&reqs, budget);
        assert_eq!(report, manual_report);
        assert_eq!(batched.now(), manual.now());
        assert_eq!(batched.metrics(), manual.metrics());
        assert!(batched.cycles_skipped() > 0, "gaps must be skipped");
        assert_eq!(manual.cycles_skipped(), 0);
        // Snapshots agree byte-for-byte modulo the drive-mode counter.
        let mut snap = batched.snapshot();
        snap.cycles_skipped = 0;
        assert_eq!(snap, manual.snapshot());
    }

    #[test]
    fn run_batch_skip_lands_exactly_on_retire_cycle() {
        // One read in flight, then a pure-idle batch: the event-horizon
        // jump must stop exactly at the ring slot where the playback falls
        // due, answer it with latency D, then skip the remaining budget.
        for ratio in [1.0, 1.3, 2.0] {
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mut mem = VpnmController::new(cfg, 21).unwrap();
            let d = mem.delay();
            mem.tick_write(9, vec![0x5A]);
            assert!(mem.tick_read(9).accepted());
            let before = mem.now().as_u64();
            let report = mem.run_batch(&[], 5 * d);
            assert_eq!(report.responses.len(), 1, "ratio {ratio}");
            let r = &report.responses[0];
            assert_eq!(r.latency(), d, "ratio {ratio}");
            assert_eq!(r.data[0], 0x5A, "ratio {ratio}");
            assert_eq!(mem.outstanding(), 0);
            assert_eq!(mem.now().as_u64(), before + 5 * d, "budget fully consumed");
            assert!(mem.cycles_skipped() > 0, "idle spans must be skipped");
            assert_eq!(mem.metrics().deadline_misses, 0);
        }
    }

    proptest! {
        /// `run_batch` over arbitrary traces (with idle runs long enough
        /// to trigger event-horizon skips) is observationally identical to
        /// the equivalent `tick` sequence: same responses, same report,
        /// same clock, same metrics, same snapshot bytes modulo the
        /// `cycles_skipped` drive-mode counter.
        #[test]
        fn run_batch_equals_tick_sequence(
            chunks in proptest::collection::vec(
                prop_oneof![
                    3 => (0u64..1 << 16).prop_map(|a|
                        vec![Some(Request::read(LineAddr(a)))]),
                    1 => (0u64..64u64, any::<u8>()).prop_map(|(a, v)|
                        vec![Some(Request::write(LineAddr(a), vec![v]))]),
                    2 => (1usize..100).prop_map(|n| vec![None; n]),
                ],
                0..40,
            ),
            extra in 0u64..120,
            ratio_idx in 0usize..3,
        ) {
            let reqs: Vec<Option<Request>> = chunks.concat();
            let ratio = [1.0, 1.3, 1.7][ratio_idx];
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mk = || VpnmController::new(cfg.clone(), 7).unwrap();
            let budget = reqs.len() as u64 + extra;

            let mut manual = mk();
            let mut manual_report = RunReport::default();
            for r in &reqs {
                let out = manual.tick(r.clone());
                manual_report.responses.extend(out.response);
                match out.stall {
                    None => manual_report.accepted += u64::from(r.is_some()),
                    Some(k) if k.is_rejection() => manual_report.rejected += 1,
                    Some(_) => manual_report.stalled += 1,
                }
            }
            for _ in reqs.len() as u64..budget {
                manual_report.responses.extend(manual.tick(None).response);
            }

            let mut batched = mk();
            let report = batched.run_batch(&reqs, budget);
            prop_assert_eq!(report, manual_report);
            prop_assert_eq!(batched.now(), manual.now());
            prop_assert_eq!(batched.metrics(), manual.metrics());
            let mut snap = batched.snapshot();
            snap.cycles_skipped = 0;
            prop_assert_eq!(snap.to_json(), manual.snapshot().to_json());
        }

        /// `run_reads` (and its streaming `run_reads_with` form) over an
        /// address slice is observationally identical to `run_batch` over
        /// the same stream wrapped in `Some(Request::Read)` — including
        /// the idle tail past the end of the slice.
        #[test]
        fn run_reads_equals_run_batch(
            addrs in proptest::collection::vec(0u64..1 << 16, 0..200),
            extra in 0u64..150,
            ratio_idx in 0usize..3,
        ) {
            let ratio = [1.0, 1.3, 1.7][ratio_idx];
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mk = || VpnmController::new(cfg.clone(), 7).unwrap();
            let budget = addrs.len() as u64 + extra;
            let reqs: Vec<Option<Request>> = addrs
                .iter()
                .map(|&a| Some(Request::read(LineAddr(a))))
                .collect();

            let mut batched = mk();
            let batch_report = batched.run_batch(&reqs, budget);

            let mut by_addrs = mk();
            let report = by_addrs.run_reads(&addrs, budget);
            prop_assert_eq!(&report, &batch_report);
            prop_assert_eq!(by_addrs.now(), batched.now());
            prop_assert_eq!(by_addrs.metrics(), batched.metrics());
            prop_assert_eq!(
                by_addrs.snapshot().to_json(),
                batched.snapshot().to_json()
            );

            let mut streamed = mk();
            let mut sunk = Vec::new();
            let counts = streamed.run_reads_with(&addrs, budget, |r| sunk.push(r));
            prop_assert_eq!(sunk, batch_report.responses);
            prop_assert_eq!(counts.accepted, batch_report.accepted);
            prop_assert_eq!(counts.stalled, batch_report.stalled);
            prop_assert_eq!(counts.rejected, batch_report.rejected);
            prop_assert_eq!(counts.responses, report.responses.len() as u64);
            prop_assert_eq!(streamed.metrics(), batched.metrics());
        }

        /// `issue_batch` over a fully dense request span (uniform,
        /// bursty-ish write mixes, and adversarially colliding reads all
        /// arise from the generators) is observationally identical to
        /// `run_batch` over the `Some`-wrapped slice — same responses,
        /// report, clock, metrics, and snapshot bytes.
        #[test]
        fn issue_batch_equals_run_batch(
            reqs in proptest::collection::vec(
                prop_oneof![
                    4 => (0u64..1 << 16).prop_map(|a|
                        Request::read(LineAddr(a))),
                    1 => (0u64..64u64, any::<u8>()).prop_map(|(a, v)|
                        Request::write(LineAddr(a), vec![v])),
                    // Colliding reads: a stride the low-bits baseline
                    // would funnel into one bank, to exercise stalls.
                    1 => (0u64..256u64).prop_map(|a|
                        Request::read(LineAddr(a * 64))),
                ],
                0..300,
            ),
            ratio_idx in 0usize..3,
        ) {
            let ratio = [1.0, 1.3, 1.7][ratio_idx];
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mk = || VpnmController::new(cfg.clone(), 7).unwrap();
            let dense: Vec<Option<Request>> =
                reqs.iter().cloned().map(Some).collect();

            let mut batched = mk();
            let batch_report = batched.run_batch(&dense, dense.len() as u64);

            let mut issued = mk();
            let report = issued.issue_batch(&reqs);
            prop_assert_eq!(report, batch_report);
            prop_assert_eq!(issued.now(), batched.now());
            prop_assert_eq!(issued.metrics(), batched.metrics());
            prop_assert_eq!(
                issued.snapshot().to_json(),
                batched.snapshot().to_json()
            );
        }

        /// `run_sparse` over the `(offset, request)` encoding of a trace
        /// is observationally identical to `run_batch` over its dense
        /// form — including the skip accounting, since both jump exactly
        /// the same idle gaps.
        #[test]
        fn run_sparse_equals_run_batch(
            chunks in proptest::collection::vec(
                prop_oneof![
                    3 => (0u64..1 << 16).prop_map(|a|
                        vec![Some(Request::read(LineAddr(a)))]),
                    1 => (0u64..64u64, any::<u8>()).prop_map(|(a, v)|
                        vec![Some(Request::write(LineAddr(a), vec![v]))]),
                    2 => (1usize..100).prop_map(|n| vec![None; n]),
                ],
                0..40,
            ),
            tail in 0usize..120,
            ratio_idx in 0usize..3,
        ) {
            let mut reqs: Vec<Option<Request>> = chunks.concat();
            reqs.extend(std::iter::repeat_n(None, tail));
            let sparse: Vec<(u64, Request)> = reqs
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.clone().map(|r| (i as u64, r)))
                .collect();
            let ratio = [1.0, 1.3, 1.7][ratio_idx];
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mk = || VpnmController::new(cfg.clone(), 9).unwrap();

            let mut dense_run = mk();
            let dense_report = dense_run.run_batch(&reqs, reqs.len() as u64);

            let mut sparse_run = mk();
            let report = sparse_run.run_sparse(reqs.len() as u64, &sparse);
            prop_assert_eq!(report, dense_report);
            prop_assert_eq!(sparse_run.now(), dense_run.now());
            prop_assert_eq!(sparse_run.cycles_skipped(), dense_run.cycles_skipped());
            prop_assert_eq!(
                sparse_run.snapshot().to_json(),
                dense_run.snapshot().to_json()
            );
        }
    }

    #[test]
    fn idle_gaps_preserve_deterministic_latency() {
        // The idle fast-forward must not disturb response timing, even at
        // a fractional memory/interface clock ratio where the skipped
        // window length varies cycle to cycle.
        for ratio in [1.0, 1.3, 2.0] {
            let cfg = VpnmConfig::small_test().with_bus_ratio(ratio);
            let mut mem = VpnmController::new(cfg, 21).unwrap();
            let d = mem.delay();
            mem.tick_write(9, vec![0x77]);
            // long idle stretch — fast-forwarded internally
            let idle = mem.run(10 * d, |_| None);
            assert!(idle.responses.is_empty());
            let out = mem.tick_read(9);
            assert!(out.accepted());
            let responses = mem.drain();
            assert_eq!(responses.len(), 1, "ratio {ratio}");
            assert_eq!(responses[0].latency(), d, "ratio {ratio}");
            assert_eq!(responses[0].data[0], 0x77, "ratio {ratio}");
            assert_eq!(mem.metrics().deadline_misses, 0);
        }
    }

    #[test]
    fn response_payload_is_shared_not_copied() {
        // Zero-allocation data path: the response hands back the very
        // cell stored in DRAM, by refcount.
        let mut mem = small();
        let cell = mem.config().cell_bytes;
        mem.tick_write(3, vec![0xAB; cell]);
        mem.tick_read(3);
        let first = mem.drain();
        mem.tick_read(3);
        let second = mem.drain();
        assert_eq!(first[0].data, second[0].data);
        assert_eq!(
            first[0].data.as_slice().as_ptr(),
            second[0].data.as_slice().as_ptr(),
            "same backing DRAM cell across independent reads"
        );
    }

    /// The original O(B) grant scan, kept inline as the specification the
    /// indexed `pick_grant` is checked against.
    fn grant_spec(mem: &VpnmController, rr: usize, now_mem: Cycle) -> usize {
        match mem.config.scheduler {
            SchedulerKind::RoundRobin => rr,
            SchedulerKind::WorkConserving => {
                if mem.banks[rr].wants_grant(now_mem) {
                    return rr;
                }
                let b = mem.config.banks as usize;
                (0..b)
                    .map(|i| (rr + i) % b)
                    .filter(|&i| mem.banks[i].wants_grant(now_mem))
                    .max_by_key(|&i| mem.banks[i].queue_depth())
                    .unwrap_or(rr)
            }
        }
    }

    /// Probes `pick_grant` at a given round-robin position without
    /// perturbing scheduler state. Tests build bank states by hand
    /// (direct `submit` calls bypass the accept path), so the packed
    /// scheduling lanes are rebuilt before asking the picker.
    fn probe_grant(mem: &mut VpnmController, rr: u32, now_mem: Cycle) -> Option<usize> {
        mem.resync_lanes();
        let saved = mem.rr_next;
        mem.rr_next = rr;
        let picked = mem.pick_grant(now_mem);
        mem.rr_next = saved;
        picked
    }

    #[test]
    fn work_conserving_grant_order_pinned() {
        // Regression pin for the scan → ready-index rewrite: a hand-built
        // queue state with a depth tie must grant exactly as the original
        // rotated `max_by_key` scan did (last maximal candidate wins).
        let cfg =
            VpnmConfig { scheduler: SchedulerKind::WorkConserving, ..VpnmConfig::small_test() };
        let mut mem = VpnmController::new(cfg, 1).unwrap();
        let banks = mem.config.banks as usize;
        assert!(banks >= 4);
        // depths: bank0 = 2, bank2 = 3, bank3 = 3, rest empty
        for (bank, depth) in [(0usize, 2usize), (2, 3), (3, 3)] {
            for i in 0..depth {
                let addr = LineAddr((bank * 1000 + i) as u64);
                mem.banks[bank].submit(BankEvent::Read { addr }).unwrap();
            }
            mem.ready.insert(bank as u32);
        }
        let t = Cycle::ZERO;
        // owners with work keep their slot
        assert_eq!(probe_grant(&mut mem, 0, t), Some(0));
        assert_eq!(probe_grant(&mut mem, 2, t), Some(2));
        assert_eq!(probe_grant(&mut mem, 3, t), Some(3));
        // idle owners: deepest queue wins, ties to the later candidate in
        // rotated order — from bank 1 the order is 2, 3, 0, so bank 3
        assert_eq!(probe_grant(&mut mem, 1, t), Some(3));
        // from the last bank the order wraps: 0, 2, 3 → still bank 3
        assert_eq!(probe_grant(&mut mem, banks as u32 - 1, t), Some(3));
        // spec agreement on every start position
        for rr in 0..banks {
            let fast = probe_grant(&mut mem, rr as u32, t);
            let spec = grant_spec(&mem, rr, t);
            match fast {
                Some(g) => assert_eq!(g, spec, "rr={rr}"),
                None => assert_eq!(mem.banks[spec].queue_depth(), 0, "rr={rr}"),
            }
        }
    }

    #[test]
    fn round_robin_grant_skips_only_empty_banks() {
        let mut mem = small();
        let t = Cycle::ZERO;
        assert_eq!(probe_grant(&mut mem, 0, t), None, "no work anywhere");
        mem.banks[2].submit(BankEvent::Read { addr: LineAddr(1) }).unwrap();
        mem.ready.insert(2);
        assert_eq!(probe_grant(&mut mem, 2, t), Some(2));
        assert_eq!(probe_grant(&mut mem, 1, t), None, "strict round-robin never reassigns");
    }

    proptest! {
        /// Work-conserving fairness: the round-robin owner is never
        /// displaced while it wants the grant, and the indexed picker
        /// agrees with the original O(B) scan in every reachable state.
        #[test]
        fn work_conserving_owner_never_displaced(
            addrs in proptest::collection::vec(0u64..(1 << 16), 1..300),
        ) {
            let cfg = VpnmConfig {
                scheduler: SchedulerKind::WorkConserving,
                ..VpnmConfig::small_test()
            };
            let mut mem = VpnmController::new(cfg, 5).unwrap();
            let banks = mem.config.banks;
            for (i, &addr) in addrs.iter().enumerate() {
                if i % 5 == 4 {
                    mem.tick_write(addr, vec![i as u8]);
                } else {
                    mem.tick_read(addr);
                }
                // Probe the scheduler from every round-robin position in
                // the state this tick left behind.
                let now_mem = mem.clock.memory_now();
                for rr in 0..banks {
                    let fast = probe_grant(&mut mem, rr, now_mem);
                    if mem.banks[rr as usize].wants_grant(now_mem) {
                        prop_assert_eq!(
                            fast, Some(rr as usize),
                            "owner {} displaced", rr
                        );
                    }
                    let spec = grant_spec(&mem, rr as usize, now_mem);
                    match fast {
                        Some(g) => prop_assert_eq!(g, spec, "rr={}", rr),
                        // None elides a grant the spec wasted on an
                        // empty-queue bank.
                        None => prop_assert_eq!(
                            mem.banks[spec].queue_depth(), 0, "rr={}", rr
                        ),
                    }
                }
            }
        }
    }
}
