//! The top-level VPNM memory controller (paper Figure 2): universal hash
//! unit → per-bank controllers → round-robin bus scheduler → DRAM.

use crate::bank_controller::{Accepted, BankController, BankEvent};
use crate::config::{SchedulerKind, VpnmConfig};
use crate::hash_engine::HashEngine;
use crate::metrics::ControllerMetrics;
use crate::request::{LineAddr, Request, Response, TickOutput};
use vpnm_dram::{DramConfig, DramDevice, DramStats};
use vpnm_hash::BankHasher;
use vpnm_sim::trace::TraceKind;
use vpnm_sim::{Cycle, DualClock, TraceRecorder};

/// What to do when a request cannot be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPolicy {
    /// Retry the same request on the next interface cycle (stalls the
    /// line; paper Section 4: "simply stall the controller, where the
    /// slowdown would not even be a fraction of a percent").
    Block,
    /// Drop the request (paper: "the other alternative is to simply drop
    /// the packet").
    Drop,
}

/// The virtually pipelined memory controller.
///
/// Presents banked DRAM as a flat pipeline: every accepted read is answered
/// after exactly `D` interface cycles regardless of the access pattern.
/// Drive it one interface cycle at a time with [`VpnmController::tick`].
///
/// ```
/// use vpnm_core::{Request, LineAddr, VpnmConfig, VpnmController};
///
/// let mut mem = VpnmController::new(VpnmConfig::small_test(), 42).unwrap();
/// let d = mem.delay();
///
/// // Write, then read the same cell.
/// mem.tick(Some(Request::Write { addr: LineAddr(7), data: vec![1, 2, 3] }));
/// mem.tick(Some(Request::Read { addr: LineAddr(7) }));
/// // The response arrives exactly D cycles after the read was accepted.
/// let mut response = None;
/// for _ in 0..d {
///     if let Some(r) = mem.tick(None).response {
///         response = Some(r);
///     }
/// }
/// let r = response.expect("due within D cycles");
/// assert_eq!(&r.data[..3], &[1, 2, 3]);
/// assert_eq!(r.latency(), d);
/// ```
#[derive(Debug)]
pub struct VpnmController {
    config: VpnmConfig,
    delay: u64,
    hash: HashEngine,
    clock: DualClock,
    dram: DramDevice,
    banks: Vec<BankController>,
    rr_next: u32,
    metrics: ControllerMetrics,
    outstanding: usize,
    trace: TraceRecorder,
    next_request_id: u64,
}

impl VpnmController {
    /// Builds a controller from `config`, keying the universal hash from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an inconsistent config.
    pub fn new(config: VpnmConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        let delay = config.effective_delay();
        let hash =
            HashEngine::from_seed(config.hash, config.addr_bits, config.bank_bits(), seed);
        let cells_per_row = 64u64;
        let total_cells = 1u64 << config.addr_bits;
        let dram_config = DramConfig {
            num_banks: config.banks,
            rows_per_bank: total_cells.div_ceil(cells_per_row),
            cells_per_row,
            cell_bytes: config.cell_bytes,
            timing: vpnm_dram::timing::TimingModel::simple(config.bank_latency),
        };
        let dram = DramDevice::new(dram_config);
        let wb = config.write_buffer_capacity();
        let banks = (0..config.banks)
            .map(|b| {
                BankController::new(b, config.storage_rows, config.queue_entries, wb, delay)
                    .with_merging(config.merging)
            })
            .collect();
        let trace = if config.trace_capacity > 0 {
            TraceRecorder::with_capacity(config.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        Ok(VpnmController {
            clock: DualClock::new(config.bus_ratio),
            config,
            delay,
            hash,
            dram,
            banks,
            rr_next: 0,
            metrics: ControllerMetrics::new(),
            outstanding: 0,
            trace,
            next_request_id: 0,
        })
    }

    /// The deterministic latency `D` in interface cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &VpnmConfig {
        &self.config
    }

    /// The current interface cycle (number of completed [`VpnmController::tick`] calls).
    pub fn now(&self) -> Cycle {
        self.clock.interface_now()
    }

    /// Accumulated controller metrics.
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Statistics of the underlying DRAM device.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Reads still in flight (accepted but not yet answered).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The keyed hash engine (exposed for adversary experiments that model
    /// an attacker with full knowledge of the mapping).
    pub fn hash(&self) -> &HashEngine {
        &self.hash
    }

    /// The lifecycle trace, when enabled via
    /// [`VpnmConfig::trace_capacity`].
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Advances exactly one interface cycle, optionally presenting one
    /// request, and reports the response due this cycle plus any stall.
    ///
    /// # Panics
    ///
    /// Panics if `request` carries write data larger than the configured
    /// cell size, or an address outside `addr_bits`.
    pub fn tick(&mut self, request: Option<Request>) -> TickOutput {
        // --- memory-clock domain: run memory cycles (with one bus grant
        // each) until the next interface edge falls.
        loop {
            let mt = self.clock.tick_memory();
            let bank = self.pick_grant(mt.memory_cycle);
            self.banks[bank].on_bus_grant(&mut self.dram, mt.memory_cycle);
            if mt.interface_tick {
                break;
            }
        }
        let now = self.clock.interface_now();

        // --- interface-clock domain: accept at most one request …
        let mut stall = None;
        let mut read_row = None; // (bank, row) scheduled into its delay line
        if let Some(req) = request {
            let addr = req.addr();
            assert!(
                addr.0 < (1u64 << self.config.addr_bits),
                "address {addr} outside the configured {}-bit space",
                self.config.addr_bits
            );
            let id = self.next_request_id;
            self.next_request_id += 1;
            let bank = self.hash.bank_of(addr.0) as usize;
            let event = match req {
                Request::Read { addr } => BankEvent::Read { addr },
                Request::Write { addr, data } => {
                    assert!(
                        data.len() <= self.config.cell_bytes,
                        "write of {} bytes exceeds cell size {}",
                        data.len(),
                        self.config.cell_bytes
                    );
                    BankEvent::Write { addr, data }
                }
            };
            match self.banks[bank].submit(event) {
                Ok(Accepted::ReadQueued(row)) => {
                    self.metrics.reads_accepted += 1;
                    self.outstanding += 1;
                    read_row = Some((bank, row));
                    self.trace.record(now, id, TraceKind::Accepted);
                }
                Ok(Accepted::ReadMerged(row)) => {
                    self.metrics.reads_accepted += 1;
                    self.metrics.reads_merged += 1;
                    self.outstanding += 1;
                    read_row = Some((bank, row));
                    self.trace.record(now, id, TraceKind::Merged);
                }
                Ok(Accepted::WriteBuffered) => {
                    self.metrics.writes_accepted += 1;
                    self.trace.record(now, id, TraceKind::Accepted);
                }
                Err(kind) => {
                    stall = Some(kind);
                    self.metrics.record_stall(kind, now);
                    self.trace.record(now, id, TraceKind::Stalled);
                }
            }
        }

        // … and advance every bank's delay line. At most one bank can have
        // a playback due (one request per interface cycle).
        let mut response = None;
        for (i, bc) in self.banks.iter_mut().enumerate() {
            let incoming = match read_row {
                Some((bank, row)) if bank == i => Some(row),
                _ => None,
            };
            if let Some(pb) = bc.advance_delay_line(incoming) {
                debug_assert!(response.is_none(), "two playbacks due in one cycle");
                let data = match pb.data {
                    Some(d) => d,
                    None => {
                        self.metrics.deadline_misses += 1;
                        vec![0; self.config.cell_bytes]
                    }
                };
                self.outstanding -= 1;
                self.metrics.responses += 1;
                response = Some(Response {
                    addr: pb.addr,
                    data,
                    issued_at: Cycle::new(now.as_u64() - self.delay),
                    completed_at: now,
                });
            }
        }

        // occupancy sampling for the occupancy distributions
        let max_queue = self.banks.iter().map(BankController::queue_depth).max().unwrap_or(0);
        let storage: usize = self.banks.iter().map(BankController::storage_occupancy).sum();
        self.metrics.queue_depth.record(max_queue as u64);
        self.metrics.storage_occupancy.record(storage as u64);

        TickOutput { response, stall }
    }

    /// Selects this memory cycle's bus grant per the configured policy.
    fn pick_grant(&mut self, now_mem: Cycle) -> usize {
        let rr = self.rr_next as usize;
        self.rr_next = (self.rr_next + 1) % self.config.banks;
        match self.config.scheduler {
            SchedulerKind::RoundRobin => rr,
            SchedulerKind::WorkConserving => {
                // The round-robin owner keeps its slot whenever it has
                // useful work (preserving the per-bank service guarantee
                // that `recommended_delay` relies on); a slot the owner
                // would waste is reclaimed by the deepest ready queue —
                // the "idle slots … can be eliminated" optimization of
                // paper Section 4.
                if self.banks[rr].wants_grant(now_mem) {
                    return rr;
                }
                let b = self.config.banks as usize;
                (0..b)
                    .map(|i| (rr + i) % b)
                    .filter(|&i| self.banks[i].wants_grant(now_mem))
                    .max_by_key(|&i| self.banks[i].queue_depth())
                    .unwrap_or(rr)
            }
        }
    }

    /// Ticks with no request until all outstanding reads have been
    /// answered, returning the collected responses.
    ///
    /// # Panics
    ///
    /// Panics if draining takes more than `outstanding × D + D` cycles,
    /// which would indicate a broken deterministic-latency invariant.
    pub fn drain(&mut self) -> Vec<Response> {
        let budget = (self.outstanding as u64 + 1) * self.delay + self.delay;
        let mut out = Vec::with_capacity(self.outstanding);
        let mut spent = 0u64;
        while self.outstanding > 0 {
            assert!(spent <= budget, "drain exceeded {budget} cycles");
            if let Some(r) = self.tick(None).response {
                out.push(r);
            }
            spent += 1;
        }
        out
    }

    /// Re-keys the universal mapping and migrates the stored data — the
    /// paper's response to repeated stalls (Section 4: "change the
    /// universal mapping function and reordering the data on the
    /// occurrence of multiple stalls (an expensive operation, but
    /// certainly possible with frequency on the order of once a day)").
    ///
    /// Outstanding reads are drained first (the returned responses are
    /// handed back), then every populated line moves to its new bank.
    /// Returns `(drained_responses, lines_migrated)`.
    ///
    /// # Panics
    ///
    /// Panics if draining exceeds its budget, which would indicate a
    /// broken deterministic-latency invariant.
    pub fn rekey(&mut self, new_seed: u64) -> (Vec<Response>, u64) {
        let drained = self.drain();
        // Also flush buffered writes so the migration sees final contents.
        let mut guard = 0u64;
        while self.banks.iter().any(|b| b.queue_depth() > 0 || b.write_buffer_depth() > 0) {
            self.tick(None);
            guard += 1;
            assert!(guard <= 4 * self.delay * u64::from(self.config.banks), "write flush stuck");
        }
        let new_hash = HashEngine::from_seed(
            self.config.hash,
            self.config.addr_bits,
            self.config.bank_bits(),
            new_seed,
        );
        // Walk the populated cells: offset == line address in our layout,
        // so a line moves when its bank assignment changes.
        let mut moved = 0u64;
        for (bank, offset) in self.dram.populated() {
            let new_bank = new_hash.bank_of(offset);
            if new_bank != bank {
                let data = self.dram.take(bank, offset).expect("listed as populated");
                self.dram.poke(new_bank, offset, data);
                moved += 1;
            }
        }
        self.hash = new_hash;
        (drained, moved)
    }

    /// Submits a request under the given stall policy, ticking until it is
    /// accepted (Block) or giving up immediately (Drop). Returns all
    /// responses that became due while waiting, plus whether the request
    /// was ultimately accepted.
    pub fn submit_with_policy(
        &mut self,
        request: Request,
        policy: StallPolicy,
    ) -> (Vec<Response>, bool) {
        let mut responses = Vec::new();
        let pending = Some(request);
        loop {
            let out = self.tick(pending.clone());
            responses.extend(out.response);
            match (out.stall, policy) {
                (None, _) => return (responses, true),
                (Some(_), StallPolicy::Drop) => return (responses, false),
                (Some(_), StallPolicy::Block) => {
                    // keep `pending` and retry next cycle
                    debug_assert!(pending.is_some());
                }
            }
        }
    }
}

/// Convenience constructors for the two request kinds.
impl VpnmController {
    /// Shorthand for ticking with a read request.
    pub fn tick_read(&mut self, addr: impl Into<LineAddr>) -> TickOutput {
        self.tick(Some(Request::Read { addr: addr.into() }))
    }

    /// Shorthand for ticking with a write request.
    pub fn tick_write(&mut self, addr: impl Into<LineAddr>, data: Vec<u8>) -> TickOutput {
        self.tick(Some(Request::Write { addr: addr.into(), data }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_engine::HashKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small() -> VpnmController {
        VpnmController::new(VpnmConfig::small_test(), 1).unwrap()
    }

    #[test]
    fn every_read_latency_is_exactly_d() {
        let mut mem = small();
        let d = mem.delay();
        let mut rng = StdRng::seed_from_u64(7);
        let mut issued = 0u64;
        let mut completed = 0u64;
        for _ in 0..2000 {
            let addr = rng.gen_range(0..1u64 << 16);
            let out = mem.tick_read(addr);
            if out.accepted() {
                issued += 1;
            }
            if let Some(r) = out.response {
                assert_eq!(r.latency(), d, "latency must be deterministic");
                completed += 1;
            }
        }
        completed += mem.drain().len() as u64;
        assert_eq!(issued, completed);
        assert_eq!(mem.metrics().deadline_misses, 0);
    }

    #[test]
    fn read_your_writes() {
        let mut mem = small();
        for a in 0..32u64 {
            let out = mem.tick_write(a, vec![a as u8 + 1]);
            assert!(out.accepted());
        }
        let mut got = Vec::new();
        for a in 0..32u64 {
            let out = mem.tick_read(a);
            assert!(out.accepted());
            got.extend(out.response);
        }
        got.extend(mem.drain());
        assert_eq!(got.len(), 32);
        for r in got {
            assert_eq!(r.data[0], r.addr.0 as u8 + 1, "addr {}", r.addr);
        }
    }

    #[test]
    fn redundant_stream_merges_and_answers() {
        // "A,A,A,A,…" must be absorbed by the merging queue (paper
        // Section 3.4) without bank-access-queue pressure.
        let mut mem = small();
        mem.tick_write(5, vec![0x55]);
        let mut responses = 0;
        for _ in 0..500 {
            let out = mem.tick_read(5);
            assert!(out.accepted(), "merging must prevent stalls on A,A,A,…");
            responses += out.response.iter().len();
        }
        responses += mem.drain().len();
        assert_eq!(responses, 500);
        assert!(mem.metrics().reads_merged >= 490);
        assert_eq!(mem.metrics().total_stalls(), 0);
    }

    #[test]
    fn a_b_pattern_merges_too() {
        let mut mem = small();
        mem.tick_write(1, vec![0xA1]);
        mem.tick_write(2, vec![0xB2]);
        let mut responses: Vec<Response> = Vec::new();
        for i in 0..400 {
            let addr = if i % 2 == 0 { 1 } else { 2 };
            let out = mem.tick_read(addr);
            assert!(out.accepted());
            responses.extend(out.response);
        }
        responses.extend(mem.drain());
        assert_eq!(responses.len(), 400);
        for r in &responses {
            let want = if r.addr.0 == 1 { 0xA1 } else { 0xB2 };
            assert_eq!(r.data[0], want);
        }
        assert_eq!(mem.metrics().total_stalls(), 0);
    }

    #[test]
    fn adversarial_single_bank_stream_stalls_lowbits() {
        // With the non-universal low-bits mapping an adversary strides by
        // B and swamps one bank — the design the paper's randomization
        // fixes.
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut stalls = 0;
        for i in 0..200u64 {
            let out = mem.tick_read(i * 4); // all hit bank 0
            stalls += u64::from(!out.accepted());
        }
        assert!(stalls > 50, "expected heavy stalling, saw {stalls}");
        // And the same stream under H3 sails through (different banks).
        let cfg = VpnmConfig::small_test().with_hash(HashKind::H3);
        let mut mem = VpnmController::new(cfg, 3).unwrap();
        let mut h3_stalls = 0;
        for i in 0..200u64 {
            let out = mem.tick_read(i * 4);
            h3_stalls += u64::from(!out.accepted());
        }
        assert!(h3_stalls < stalls / 4, "h3 {h3_stalls} vs lowbits {stalls}");
    }

    #[test]
    fn first_stall_time_recorded() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        for i in 0..100u64 {
            mem.tick_read(i * 4);
        }
        let m = mem.metrics();
        assert!(m.total_stalls() > 0);
        assert!(m.first_stall_at.is_some());
    }

    #[test]
    fn blocking_policy_eventually_accepts() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut accepted = 0;
        let mut responses = Vec::new();
        for i in 0..50u64 {
            let (rs, ok) =
                mem.submit_with_policy(Request::Read { addr: LineAddr(i * 4) }, StallPolicy::Block);
            responses.extend(rs);
            accepted += u64::from(ok);
        }
        responses.extend(mem.drain());
        assert_eq!(accepted, 50);
        assert_eq!(responses.len(), 50);
    }

    #[test]
    fn drop_policy_loses_requests_but_continues() {
        let cfg = VpnmConfig::small_test().with_hash(HashKind::LowBits);
        let mut mem = VpnmController::new(cfg, 0).unwrap();
        let mut dropped = 0;
        let mut responses = Vec::new();
        for i in 0..100u64 {
            let (rs, ok) =
                mem.submit_with_policy(Request::Read { addr: LineAddr(i * 4) }, StallPolicy::Drop);
            responses.extend(rs);
            dropped += u64::from(!ok);
        }
        assert!(dropped > 0);
        responses.extend(mem.drain());
        assert_eq!(responses.len() as u64, 100 - dropped);
    }

    #[test]
    fn mixed_random_workload_differentially_checked() {
        // Golden-model check against a plain map: every read result must
        // equal the last write accepted before the read was accepted.
        use std::collections::HashMap;
        let mut mem = small();
        let mut rng = StdRng::seed_from_u64(99);
        let mut golden: HashMap<u64, u8> = HashMap::new();
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new(); // keyed by issue cycle
        let mut all: Vec<Response> = Vec::new();
        for _ in 0..3000 {
            let addr = rng.gen_range(0..64u64);
            let out = if rng.gen_bool(0.3) {
                let v = rng.gen::<u8>();
                let out = mem.tick_write(addr, vec![v]);
                if out.accepted() {
                    golden.insert(addr, v);
                }
                out
            } else {
                let out = mem.tick_read(addr);
                if out.accepted() {
                    let snapshot = vec![golden.get(&addr).copied().unwrap_or(0)];
                    expected.insert(mem.now().as_u64(), snapshot);
                }
                out
            };
            all.extend(out.response);
        }
        all.extend(mem.drain());
        assert_eq!(mem.metrics().deadline_misses, 0);
        for r in all {
            let want = expected
                .remove(&r.issued_at.as_u64())
                .unwrap_or_else(|| panic!("unexpected response issued at {}", r.issued_at));
            assert_eq!(r.data[0], want[0], "addr {}", r.addr);
        }
        assert!(expected.is_empty(), "responses missing for {} reads", expected.len());
    }

    #[test]
    fn throughput_near_line_rate_under_uniform_load() {
        // Paper Section 3.2: "the memory bandwidth delivered by the entire
        // scheme is almost equal to the case where there are no bank
        // conflicts."
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let total = 20_000u64;
        let mut accepted = 0u64;
        for _ in 0..total {
            let out = mem.tick_read(rng.gen_range(0..1u64 << 16));
            accepted += u64::from(out.accepted());
        }
        let rate = accepted as f64 / total as f64;
        assert!(rate > 0.999, "acceptance rate {rate}");
    }

    #[test]
    fn trace_records_lifecycle() {
        let cfg = VpnmConfig::small_test().with_trace_capacity(64);
        let mut mem = VpnmController::new(cfg, 1).unwrap();
        mem.tick_read(1);
        mem.tick_read(1);
        assert!(mem.trace().len() >= 2);
    }

    #[test]
    fn rekey_preserves_data_and_changes_mapping() {
        use vpnm_hash::BankHasher;
        let mut mem = VpnmController::new(VpnmConfig::test_roomy(), 50).unwrap();
        for a in 0..64u64 {
            assert!(mem.tick_write(a, vec![a as u8]).accepted());
        }
        // put a read in flight to exercise the drain path
        mem.tick_read(7);
        let old_map: Vec<u32> = (0..64u64).map(|a| mem.hash().bank_of(a)).collect();
        let (drained, moved) = mem.rekey(51);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].data[0], 7);
        let new_map: Vec<u32> = (0..64u64).map(|a| mem.hash().bank_of(a)).collect();
        assert_ne!(old_map, new_map, "re-keying must reshuffle banks");
        assert!(moved > 0, "some populated lines must have migrated");
        // every line still reads back correctly through the new mapping
        for a in 0..64u64 {
            assert!(mem.tick_read(a).accepted());
        }
        let responses = mem.drain();
        assert_eq!(responses.len(), 64);
        for r in responses {
            assert_eq!(r.data[0], r.addr.0 as u8, "post-rekey data intact at {}", r.addr);
        }
    }

    #[test]
    fn work_conserving_scheduler_upholds_invariants() {
        let cfg = VpnmConfig {
            scheduler: crate::config::SchedulerKind::WorkConserving,
            ..VpnmConfig::small_test()
        };
        let mut mem = VpnmController::new(cfg, 9).unwrap();
        let d = mem.delay();
        let mut rng = StdRng::seed_from_u64(31);
        let mut issued = 0u64;
        let mut done = 0u64;
        for _ in 0..5000 {
            let out = mem.tick_read(rng.gen_range(0..1u64 << 16));
            issued += u64::from(out.accepted());
            if let Some(r) = out.response {
                assert_eq!(r.latency(), d);
                done += 1;
            }
        }
        done += mem.drain().len() as u64;
        assert_eq!(issued, done);
        assert_eq!(mem.metrics().deadline_misses, 0);
    }

    #[test]
    fn work_conserving_never_stalls_more_than_round_robin() {
        // The reclaimed slots can only help: compare stall counts on the
        // same saturating stream.
        let run = |scheduler| {
            let cfg = VpnmConfig { scheduler, ..VpnmConfig::small_test() };
            let mut mem = VpnmController::new(cfg, 77).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            for _ in 0..30_000 {
                mem.tick_read(rng.gen_range(0..1u64 << 16));
            }
            mem.metrics().total_stalls()
        };
        let rr = run(crate::config::SchedulerKind::RoundRobin);
        let wc = run(crate::config::SchedulerKind::WorkConserving);
        assert!(wc <= rr, "work-conserving ({wc}) must not exceed round-robin ({rr})");
    }

    #[test]
    fn merging_disabled_stalls_on_redundant_flood() {
        let cfg = VpnmConfig { merging: false, ..VpnmConfig::small_test() };
        let mut mem = VpnmController::new(cfg, 5).unwrap();
        let mut stalls = 0u64;
        for _ in 0..500 {
            stalls += u64::from(!mem.tick_read(42).accepted());
        }
        assert!(stalls > 300, "A,A,A flood must devastate the no-merge ablation: {stalls}");
    }

    #[test]
    fn oversized_address_rejected() {
        let mut mem = small();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mem.tick_read(1u64 << 20);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn invalid_config_reports_error() {
        let cfg = VpnmConfig::small_test().with_banks(3);
        assert!(VpnmController::new(cfg, 0).is_err());
    }
}
