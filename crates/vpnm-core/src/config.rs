//! Controller configuration (the paper's Table 1 parameters) and the
//! derivation of the normalized delay `D`.

use crate::hash_engine::HashKind;

/// How the shared memory bus is granted to bank controllers each memory
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The paper's scheme: strict rotation, one grant per bank every `B`
    /// memory cycles. Simple to build; some grants are wasted on idle or
    /// busy banks.
    #[default]
    RoundRobin,
    /// The "further analysis or a split-bus architecture" optimization the
    /// paper alludes to (Section 4): each cycle, grant the ready bank with
    /// the deepest access queue, reclaiming slots round-robin would waste.
    /// Modeled as an ablation; `recommended_delay` still assumes
    /// round-robin (which upper-bounds this scheduler's queueing delay).
    WorkConserving,
}

/// Configuration of a VPNM controller.
///
/// Field names follow the paper's parameter glossary (Table 1): `B` banks,
/// `L` bank latency, `Q` bank-access-queue entries, `K` delay-storage
/// rows, `R` bus scaling ratio, `D` normalized delay.
///
/// ```
/// use vpnm_core::VpnmConfig;
/// let cfg = VpnmConfig::paper_optimal();
/// assert_eq!(cfg.banks, 32);
/// assert_eq!(cfg.queue_entries, 64);
/// cfg.validate().unwrap();
/// // D is derived from Q, B, L and R unless overridden:
/// assert_eq!(cfg.effective_delay(), cfg.recommended_delay());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VpnmConfig {
    /// Number of banks `B` (power of two).
    pub banks: u32,
    /// Bank access latency `L` in memory cycles (paper assumes 20).
    pub bank_latency: u64,
    /// Bank access queue entries `Q`.
    pub queue_entries: usize,
    /// Delay storage buffer rows `K`.
    pub storage_rows: usize,
    /// Bus scaling ratio `R` (memory clock / interface clock, ≥ 1).
    pub bus_ratio: f64,
    /// Optional override of the normalized delay `D` (interface cycles).
    /// `None` derives a safe value via [`VpnmConfig::recommended_delay`].
    pub delay_override: Option<u64>,
    /// Bits of cell-address space served by the controller.
    pub addr_bits: u32,
    /// Bytes per cell (data word `W`; the paper uses 64-byte cells).
    pub cell_bytes: usize,
    /// Which universal hash family randomizes the bank mapping.
    pub hash: HashKind,
    /// Write buffer entries; `None` = `ceil(Q/2)` per the paper.
    pub write_buffer_entries: Option<usize>,
    /// Per-bank trace retention (0 disables tracing).
    pub trace_capacity: usize,
    /// Forensic event-ring capacity for the fast engine's observability
    /// layer (0 disables event recording). Only meaningful when the
    /// `forensics` cargo feature is compiled in; see
    /// [`crate::forensics`].
    pub forensics_capacity: usize,
    /// Bus grant policy (ablation knob; the paper uses round-robin).
    pub scheduler: SchedulerKind,
    /// Redundant-request merging (ablation knob; the paper's merging
    /// queue is what absorbs "A,A,A,…" floods — disabling it shows why
    /// it is necessary).
    pub merging: bool,
}

impl VpnmConfig {
    /// The paper's best design point (Table 2, R = 1.3 row with MTS
    /// 6.5e13): `B = 32`, `Q = 64`, `K = 128`, `L = 20`.
    pub fn paper_optimal() -> Self {
        VpnmConfig {
            banks: 32,
            bank_latency: 20,
            queue_entries: 64,
            storage_rows: 128,
            bus_ratio: 1.3,
            delay_override: None,
            addr_bits: 32,
            cell_bytes: 64,
            hash: HashKind::H3,
            write_buffer_entries: None,
            trace_capacity: 0,
            forensics_capacity: 0,
            scheduler: SchedulerKind::RoundRobin,
            merging: true,
        }
    }

    /// A mid-size design point (Table 2: `Q = 24`, `K = 48`, area
    /// 13.6 mm², MTS 5.1e5).
    pub fn paper_compact() -> Self {
        VpnmConfig { queue_entries: 24, storage_rows: 48, ..VpnmConfig::paper_optimal() }
    }

    /// A deliberately small configuration whose stalls are frequent enough
    /// to observe in unit tests and simulation-vs-math validation.
    pub fn small_test() -> Self {
        VpnmConfig {
            banks: 4,
            bank_latency: 3,
            queue_entries: 4,
            storage_rows: 8,
            bus_ratio: 1.0,
            delay_override: None,
            addr_bits: 16,
            cell_bytes: 8,
            hash: HashKind::H3,
            write_buffer_entries: None,
            trace_capacity: 0,
            forensics_capacity: 0,
            scheduler: SchedulerKind::RoundRobin,
            merging: true,
        }
    }

    /// A small but generously provisioned configuration (utilization 0.5,
    /// deep queues) whose stall probability is negligible — used by
    /// differential tests that require stall-free acceptance.
    pub fn test_roomy() -> Self {
        VpnmConfig {
            banks: 4,
            bank_latency: 3,
            queue_entries: 24,
            storage_rows: 48,
            bus_ratio: 1.5,
            delay_override: None,
            addr_bits: 16,
            cell_bytes: 8,
            hash: HashKind::H3,
            write_buffer_entries: None,
            trace_capacity: 0,
            forensics_capacity: 0,
            scheduler: SchedulerKind::RoundRobin,
            merging: true,
        }
    }

    /// Builder-style bank count override.
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Builder-style queue size override.
    pub fn with_queue(mut self, q: usize) -> Self {
        self.queue_entries = q;
        self
    }

    /// Builder-style storage row override.
    pub fn with_storage_rows(mut self, k: usize) -> Self {
        self.storage_rows = k;
        self
    }

    /// Builder-style bus ratio override.
    pub fn with_bus_ratio(mut self, r: f64) -> Self {
        self.bus_ratio = r;
        self
    }

    /// Builder-style hash family override.
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }

    /// Builder-style delay override.
    pub fn with_delay(mut self, d: u64) -> Self {
        self.delay_override = Some(d);
        self
    }

    /// Builder-style trace capacity override.
    pub fn with_trace_capacity(mut self, cap: usize) -> Self {
        self.trace_capacity = cap;
        self
    }

    /// Builder-style forensic event-ring capacity override.
    pub fn with_forensics_capacity(mut self, cap: usize) -> Self {
        self.forensics_capacity = cap;
        self
    }

    /// `log2(banks)`.
    pub fn bank_bits(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// Write buffer capacity: explicit, or `ceil(Q/2)` per the paper.
    pub fn write_buffer_capacity(&self) -> usize {
        self.write_buffer_entries.unwrap_or(self.queue_entries.div_ceil(2))
    }

    /// The smallest safe normalized delay `D`, in interface cycles.
    ///
    /// A bank is granted the shared bus every `B` memory cycles and an
    /// access occupies the bank for `L`, so one queue slot turns over
    /// every `step = max(B, ceil(L/B)·B)` memory cycles. `Q` bounds the
    /// *overlapping* accesses (queued plus in service, the paper's
    /// `Q = D/L` convention), so a read admitted with at most `Q − 1`
    /// accesses outstanding has its data in the delay storage buffer
    /// within `B + (Q+1)·step` memory cycles (first-grant alignment, the
    /// partially-served access, and `Q` slot turnovers), i.e.
    /// `ceil((B + (Q+1)·step)/R)` interface cycles, plus the pipelined
    /// hash latency and alignment slack. This realizes the paper's "the
    /// deterministic delay is determined using the access latency (L) and
    /// the bank request queue size (Q)" with `D ∝ Q`.
    pub fn recommended_delay(&self) -> u64 {
        let b = u64::from(self.banks);
        let step = if self.bank_latency <= b { b } else { self.bank_latency.div_ceil(b) * b };
        let mem_cycles = (self.queue_entries as u64 + 1) * step + b;
        let interface_cycles = (mem_cycles as f64 / self.bus_ratio).ceil() as u64;
        interface_cycles + self.hash.latency_cycles(self.addr_bits) + 2
    }

    /// The delay actually used: the override if present, else
    /// [`VpnmConfig::recommended_delay`].
    pub fn effective_delay(&self) -> u64 {
        self.delay_override.unwrap_or_else(|| self.recommended_delay())
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint, including a
    /// `delay_override` too small to uphold the deterministic-latency
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(format!("banks must be a power of two, got {}", self.banks));
        }
        if self.bank_latency == 0 {
            return Err("bank_latency must be positive".into());
        }
        if self.queue_entries == 0 {
            return Err("queue_entries must be positive".into());
        }
        if self.storage_rows == 0 {
            return Err("storage_rows must be positive".into());
        }
        if self.storage_rows < self.queue_entries {
            return Err(format!(
                "storage_rows (K = {}) must be at least queue_entries (Q = {}): every queued \
                 read holds a storage row",
                self.storage_rows, self.queue_entries
            ));
        }
        if !(self.bus_ratio.is_finite() && self.bus_ratio >= 1.0) {
            return Err(format!("bus_ratio must be >= 1.0, got {}", self.bus_ratio));
        }
        if !(4..=48).contains(&self.addr_bits) {
            return Err(format!("addr_bits must be in 4..=48, got {}", self.addr_bits));
        }
        if self.cell_bytes == 0 {
            return Err("cell_bytes must be positive".into());
        }
        if u64::from(self.bank_bits()) >= u64::from(self.addr_bits) {
            return Err("more bank bits than address bits".into());
        }
        if let Some(d) = self.delay_override {
            let min = self.recommended_delay();
            if d < min {
                return Err(format!(
                    "delay_override {d} is below the safe minimum {min} for Q={}, B={}, L={}, \
                     R={}: the controller could miss its playback deadline",
                    self.queue_entries, self.banks, self.bank_latency, self.bus_ratio
                ));
            }
        }
        Ok(())
    }
}

impl Default for VpnmConfig {
    fn default() -> Self {
        VpnmConfig::paper_optimal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        VpnmConfig::paper_optimal().validate().unwrap();
        VpnmConfig::paper_compact().validate().unwrap();
        VpnmConfig::small_test().validate().unwrap();
    }

    #[test]
    fn paper_optimal_delay_near_a_microsecond() {
        // Paper Section 3.4: "normalizing D to 1000 nanoseconds is more
        // than enough" at a 1 GHz interface (1 cycle = 1 ns).
        let d = VpnmConfig::paper_optimal().recommended_delay();
        assert!(
            (1000..=2200).contains(&d),
            "D = {d} should be on the order of the paper's ~1000 ns"
        );
    }

    #[test]
    fn delay_proportional_to_q() {
        let base = VpnmConfig::paper_optimal();
        let d64 = base.clone().with_queue(64).recommended_delay();
        let d32 = base.clone().with_queue(32).with_storage_rows(64).recommended_delay();
        // paper: "D is directly proportional to Q"
        let ratio = d64 as f64 / d32 as f64;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_delay_override_rejected() {
        let cfg = VpnmConfig::small_test().with_delay(1);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("below the safe minimum"));
    }

    #[test]
    fn generous_delay_override_accepted() {
        let mut cfg = VpnmConfig::small_test();
        cfg.delay_override = Some(cfg.recommended_delay() + 100);
        cfg.validate().unwrap();
        assert_eq!(cfg.effective_delay(), cfg.recommended_delay() + 100);
    }

    #[test]
    fn k_less_than_q_rejected() {
        let cfg = VpnmConfig::small_test().with_queue(8).with_storage_rows(4);
        assert!(cfg.validate().unwrap_err().contains("storage_rows"));
    }

    #[test]
    fn bad_banks_rejected() {
        assert!(VpnmConfig::small_test().with_banks(3).validate().is_err());
        assert!(VpnmConfig::small_test().with_banks(0).validate().is_err());
    }

    #[test]
    fn bank_bits() {
        assert_eq!(VpnmConfig::paper_optimal().bank_bits(), 5);
        assert_eq!(VpnmConfig::small_test().bank_bits(), 2);
    }

    #[test]
    fn write_buffer_default_is_half_q() {
        let cfg = VpnmConfig::paper_optimal();
        assert_eq!(cfg.write_buffer_capacity(), 32);
        let odd = cfg.clone().with_queue(5);
        assert_eq!(odd.write_buffer_capacity(), 3);
    }

    #[test]
    fn big_l_small_b_step_math() {
        // L = 20 > B = 4: one slot turns over every ceil(20/4)*4 = 20
        // memory cycles; D = ((Q+1)*20 + 4) / R + hash + 2.
        let cfg = VpnmConfig {
            banks: 4,
            bank_latency: 20,
            queue_entries: 4,
            storage_rows: 8,
            bus_ratio: 1.0,
            delay_override: None,
            addr_bits: 16,
            cell_bytes: 8,
            hash: HashKind::LowBits,
            write_buffer_entries: None,
            trace_capacity: 0,
            forensics_capacity: 0,
            scheduler: SchedulerKind::RoundRobin,
            merging: true,
        };
        assert_eq!(cfg.recommended_delay(), 5 * 20 + 4 + 2);
    }
}
