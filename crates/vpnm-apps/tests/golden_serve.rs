//! Golden-snapshot pins for the serving pipeline.
//!
//! The three fixtures under `tests/golden/` were captured from the
//! pre-batching serving loop (per-producer `sync_channel` lanes,
//! per-packet `slot_of` probes at service time, per-cell payload
//! `Vec`s). The batched pipeline — lock-free SPSC ingress rings,
//! admission-time `slots_of_batch`, one payload arena per epoch — must
//! reproduce them **byte for byte**: same admissions, same drops, same
//! latencies, same memory snapshot. Any divergence means the
//! optimization changed semantics, not just speed.

use vpnm_apps::serve::{run_serve, ArrivalSource, FlowMix, ServeConfig};
use vpnm_apps::EngineOpts;
use vpnm_core::{ChannelSelect, VpnmConfig};

fn small() -> ServeConfig {
    ServeConfig {
        base: VpnmConfig::test_roomy(),
        cycles: 50_000,
        epoch_len: 1024,
        source: ArrivalSource::Synthetic { load: 0.45, mix: FlowMix::Uniform { space: 1 << 10 } },
        cell_bytes: 8,
        ..ServeConfig::demo()
    }
}

fn canonical_json(cfg: &ServeConfig) -> String {
    let report = run_serve(cfg).unwrap();
    let mut snap = report.snapshot.expect("engine exposes metrics");
    snap.serving = snap.serving.map(|m| m.canonical());
    snap.to_json()
}

#[test]
fn sustained_uniform_matches_prebatching_golden() {
    assert_eq!(
        canonical_json(&small()),
        include_str!("golden/serve_sustained_uniform.json"),
        "batched pipeline diverged from the pre-refactor channel path"
    );
}

#[test]
fn fabric_heavytail_matches_prebatching_golden() {
    let cfg = ServeConfig {
        engine: EngineOpts {
            channels: 4,
            select: ChannelSelect::UniversalHash,
            workers: 1,
            ..EngineOpts::default()
        },
        cycles: 20_000,
        source: ArrivalSource::Synthetic {
            load: 0.45,
            mix: FlowMix::HeavyTail { space: 1 << 12, skew: 1.0 },
        },
        ..small()
    };
    assert_eq!(
        canonical_json(&cfg),
        include_str!("golden/serve_fabric_heavytail.json"),
        "batched pipeline diverged from the pre-refactor channel path"
    );
}

#[test]
fn overload_heavytail_matches_prebatching_golden() {
    // Overload (0.9 > service 0.5) keeps the ingress queue saturated,
    // forcing the scalar per-arrival admission fallback — this pins the
    // non-batched path and its tail-drop accounting.
    let cfg = ServeConfig {
        queue_depth: 64,
        source: ArrivalSource::Synthetic {
            load: 0.9,
            mix: FlowMix::HeavyTail { space: 1 << 10, skew: 1.0 },
        },
        ..small()
    };
    assert_eq!(
        canonical_json(&cfg),
        include_str!("golden/serve_overload_heavytail.json"),
        "batched pipeline diverged from the pre-refactor channel path"
    );
}
