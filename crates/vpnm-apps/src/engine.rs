//! Shared config→engine construction for the simulation bins.
//!
//! Every measurement bin used to hard-code `VpnmController::new(config,
//! seed)`. With two engines ([`VpnmController`], [`ReferenceController`])
//! and the multi-channel [`VpnmFabric`] all presenting the same
//! [`PipelinedMemory`] interface, the bins instead parse a common flag
//! triple and build whatever topology was asked for:
//!
//! ```text
//! --engine fast|reference     which engine serves each channel (default fast)
//! --channels N                channel count, a power of two (default 1)
//! --select low-bits|high-bits|universal-hash
//!                             fabric channel-select stage (default low-bits)
//! --workers N                 worker threads for the fabric's epoch path
//!                             (default 1 = on-thread; clamped to the
//!                             channel count, ignored for 1 channel)
//! --tenants N                 tenants sharing the fabric (default 1 =
//!                             single-tenant, the exact pre-QoS path)
//! --regulator off|global|per-bank
//!                             token-bucket topology at the fabric
//!                             ingress (default off = track only)
//! --tenant-rate N/D           per-tenant budget in requests per
//!                             interface cycle (default 1/4)
//! --tenant-burst N            bucket depth in requests (default 16)
//! ```
//!
//! The default triple builds a bare fast controller — byte-identical
//! behavior (and an identical hot path) to what the bins did before this
//! helper existed. Bins whose pass/fail assertions encode expectations
//! about a specific topology document that they target the default.
//! Any QoS selection (`--tenants > 1` or a regulator) routes through the
//! fabric even at one channel, because tenant accounting lives there.

use vpnm_core::{
    ChannelSelect, FabricConfig, PipelinedMemory, QosConfig, ReferenceController, RegulatorMode,
    VpnmConfig, VpnmController, VpnmFabric, MAX_TENANTS,
};

/// Which engine implementation serves each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The production engine: ready-set scheduling, shared delay wheel,
    /// event-horizon skipping.
    Fast,
    /// The O(B)-per-cycle seed formulation, kept as a differential twin.
    Reference,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Fast => "fast",
            EngineKind::Reference => "reference",
        })
    }
}

/// The engine/topology selection shared by the simulation bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOpts {
    /// Engine serving each channel.
    pub kind: EngineKind,
    /// Channel count (1 = a bare controller, no fabric wrapper).
    pub channels: u32,
    /// Channel-select stage for `channels > 1`.
    pub select: ChannelSelect,
    /// Worker threads for the fabric's epoch-batched path (`run_epoch`):
    /// 1 runs epochs on the caller's thread; more attach a persistent
    /// pool. Only meaningful for `channels > 1` — outputs are
    /// byte-identical for every value either way.
    pub workers: usize,
    /// Tenants sharing the memory (1 = single-tenant, no QoS machinery).
    pub tenants: u16,
    /// Token-bucket topology regulating the fabric ingress.
    pub regulator: RegulatorMode,
    /// Per-tenant budget as requests per interface cycle (num, den).
    pub tenant_rate: (u32, u32),
    /// Token-bucket depth in requests.
    pub tenant_burst: u32,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            kind: EngineKind::Fast,
            channels: 1,
            select: ChannelSelect::LowBits,
            workers: 1,
            tenants: 1,
            regulator: RegulatorMode::Off,
            tenant_rate: (1, 4),
            tenant_burst: 16,
        }
    }
}

impl EngineOpts {
    /// Consumes the recognized engine flags from an argument list,
    /// returning the selection and the arguments it did not recognize
    /// (for the bin's own flag handling).
    ///
    /// # Errors
    ///
    /// Returns a usage message for a malformed value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(Self, Vec<String>), String> {
        let mut opts = EngineOpts::default();
        let mut rest = Vec::new();
        let mut args = args;
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--engine" => {
                    opts.kind = match value("--engine")?.as_str() {
                        "fast" => EngineKind::Fast,
                        "reference" => EngineKind::Reference,
                        other => return Err(format!("unknown engine '{other}'")),
                    };
                }
                "--channels" => {
                    let v = value("--channels")?;
                    let n: u32 =
                        v.parse().map_err(|_| format!("--channels needs a number, got '{v}'"))?;
                    if n == 0 || !n.is_power_of_two() {
                        return Err(format!("--channels must be a power of two >= 1, got {n}"));
                    }
                    opts.channels = n;
                }
                "--select" => {
                    opts.select = match value("--select")?.as_str() {
                        "low-bits" => ChannelSelect::LowBits,
                        "high-bits" => ChannelSelect::HighBits,
                        "universal-hash" => ChannelSelect::UniversalHash,
                        other => return Err(format!("unknown channel select '{other}'")),
                    };
                }
                "--workers" => {
                    let v = value("--workers")?;
                    let w: usize =
                        v.parse().map_err(|_| format!("--workers needs a number, got '{v}'"))?;
                    if w == 0 {
                        return Err("--workers must be >= 1 (1 = run epochs on-thread)".into());
                    }
                    opts.workers = w;
                }
                "--tenants" => {
                    let v = value("--tenants")?;
                    let t: u16 =
                        v.parse().map_err(|_| format!("--tenants needs a number, got '{v}'"))?;
                    if t == 0 || t > MAX_TENANTS {
                        return Err(format!("--tenants must be in 1..={MAX_TENANTS}, got {t}"));
                    }
                    opts.tenants = t;
                }
                "--regulator" => {
                    opts.regulator = value("--regulator")?.parse()?;
                }
                "--tenant-rate" => {
                    let v = value("--tenant-rate")?;
                    let (num, den) = v
                        .split_once('/')
                        .ok_or_else(|| format!("--tenant-rate needs N/D, got '{v}'"))?;
                    let num: u32 = num
                        .parse()
                        .map_err(|_| format!("--tenant-rate numerator is not a number in '{v}'"))?;
                    let den: u32 = den.parse().map_err(|_| {
                        format!("--tenant-rate denominator is not a number in '{v}'")
                    })?;
                    if num == 0 || den == 0 {
                        return Err(format!(
                            "--tenant-rate must be a positive rational, got '{v}'"
                        ));
                    }
                    opts.tenant_rate = (num, den);
                }
                "--tenant-burst" => {
                    let v = value("--tenant-burst")?;
                    let b: u32 = v
                        .parse()
                        .map_err(|_| format!("--tenant-burst needs a number, got '{v}'"))?;
                    if b == 0 {
                        return Err("--tenant-burst must be >= 1".into());
                    }
                    opts.tenant_burst = b;
                }
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }

    /// Parses the engine flags from the process arguments, exiting with a
    /// usage message on error or on any unrecognized argument — for bins
    /// that take no flags of their own.
    pub fn from_env() -> Self {
        match EngineOpts::parse(std::env::args().skip(1)) {
            Ok((opts, rest)) if rest.is_empty() => opts,
            Ok((_, rest)) => usage_exit(&format!("unrecognized argument '{}'", rest[0])),
            Err(e) => usage_exit(&e),
        }
    }

    /// The QoS section this selection implies: `None` for the
    /// single-tenant default (keeping the pre-QoS snapshot and hot path
    /// byte-identical), a tracking or regulating [`QosConfig`] otherwise.
    pub fn qos(&self) -> Option<QosConfig> {
        (self.tenants > 1 || self.regulator != RegulatorMode::Off).then(|| QosConfig {
            tenants: self.tenants.max(1),
            mode: self.regulator,
            rate_num: self.tenant_rate.0,
            rate_den: self.tenant_rate.1,
            burst: self.tenant_burst,
        })
    }

    /// The fabric geometry for `base` under this selection.
    pub fn fabric_config(&self, base: VpnmConfig) -> FabricConfig {
        FabricConfig { channels: self.channels, select: self.select, base, qos: self.qos() }
    }

    /// Builds the selected engine/topology over `base`.
    ///
    /// A single channel builds the bare engine (no fabric wrapper, so the
    /// default selection is the exact pre-helper hot path); multiple
    /// channels — or any QoS selection, whose tenant ledger lives in the
    /// fabric — build a [`VpnmFabric`] of the selected engine.
    ///
    /// # Errors
    ///
    /// Returns the config/fabric validation failure message.
    pub fn build(&self, base: VpnmConfig, seed: u64) -> Result<Box<dyn PipelinedMemory>, String> {
        if self.channels == 1 && self.qos().is_none() {
            return Ok(match self.kind {
                EngineKind::Fast => Box::new(VpnmController::new(base, seed)?),
                EngineKind::Reference => Box::new(ReferenceController::new(base, seed)?),
            });
        }
        Ok(match self.kind {
            EngineKind::Fast => {
                let mut fab = VpnmFabric::new(self.fabric_config(base), seed)?;
                fab.set_workers(self.workers);
                Box::new(fab)
            }
            EngineKind::Reference => {
                let mut fab = VpnmFabric::new_reference(self.fabric_config(base), seed)?;
                fab.set_workers(self.workers);
                Box::new(fab)
            }
        })
    }

    /// One-line human description, e.g. `fast` or `reference x4
    /// (universal-hash)`.
    pub fn describe(&self) -> String {
        let mut s = if self.channels == 1 {
            self.kind.to_string()
        } else if self.workers > 1 {
            format!("{} x{} ({}, {} workers)", self.kind, self.channels, self.select, self.workers)
        } else {
            format!("{} x{} ({})", self.kind, self.channels, self.select)
        };
        if let Some(q) = self.qos() {
            s.push_str(&format!(", {} tenants", q.tenants));
            if q.mode != RegulatorMode::Off {
                s.push_str(&format!(
                    " ({} {}/{} burst {})",
                    q.mode.as_str(),
                    q.rate_num,
                    q.rate_den,
                    q.burst
                ));
            }
        }
        s
    }
}

/// The bins' common construction entry point: engine flags from the
/// process arguments, `base` and `seed` from the bin. Exits with a usage
/// message on malformed flags or an invalid topology.
pub fn engine_from_args(base: VpnmConfig, seed: u64) -> Box<dyn PipelinedMemory> {
    let opts = EngineOpts::from_env();
    opts.build(base, seed).unwrap_or_else(|e| usage_exit(&e))
}

fn usage_exit(error: &str) -> ! {
    eprintln!(
        "error: {error}\n\
         engine flags: [--engine fast|reference] [--channels N] \
         [--select low-bits|high-bits|universal-hash] [--workers N]\n\
         qos flags: [--tenants N] [--regulator off|global|per-bank] \
         [--tenant-rate N/D] [--tenant-burst N]"
    );
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_vec(args: &[&str]) -> Result<(EngineOpts, Vec<String>), String> {
        EngineOpts::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_flags_and_passes_through_the_rest() {
        let (opts, rest) = parse_vec(&[
            "--cycles",
            "100",
            "--engine",
            "reference",
            "--channels",
            "4",
            "--select",
            "universal-hash",
            "--workers",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.kind, EngineKind::Reference);
        assert_eq!(opts.channels, 4);
        assert_eq!(opts.select, ChannelSelect::UniversalHash);
        assert_eq!(opts.workers, 4);
        assert_eq!(rest, vec!["--cycles".to_string(), "100".to_string()]);

        assert_eq!(parse_vec(&[]).unwrap().0, EngineOpts::default());
        assert!(parse_vec(&["--engine", "warp"]).is_err());
        assert!(parse_vec(&["--channels"]).is_err());
        assert!(parse_vec(&["--select", "mod-17"]).is_err());
        assert!(parse_vec(&["--workers", "many"]).is_err());
    }

    #[test]
    fn malformed_values_get_one_line_errors() {
        // Each rejection names the flag and the constraint — the audit
        // that replaced the old silent clamps.
        let err = |args: &[&str]| parse_vec(args).unwrap_err();
        assert_eq!(err(&["--workers", "0"]), "--workers must be >= 1 (1 = run epochs on-thread)");
        assert_eq!(err(&["--channels", "3"]), "--channels must be a power of two >= 1, got 3");
        assert_eq!(err(&["--channels", "0"]), "--channels must be a power of two >= 1, got 0");
        assert!(err(&["--channels", "4x"]).contains("--channels needs a number"));
        assert!(err(&["--select", "mod-17"]).contains("unknown channel select 'mod-17'"));
        assert!(err(&["--tenants", "0"]).contains("--tenants must be in 1..="));
        assert!(err(&["--tenants", "5000"]).contains("--tenants must be in 1..="));
        assert!(err(&["--regulator", "strict"]).contains("unknown regulator 'strict'"));
        assert!(err(&["--tenant-rate", "0.25"]).contains("needs N/D"));
        assert!(err(&["--tenant-rate", "0/4"]).contains("positive rational"));
        assert!(err(&["--tenant-rate", "1/0"]).contains("positive rational"));
        assert!(err(&["--tenant-rate", "a/b"]).contains("numerator is not a number"));
        assert_eq!(err(&["--tenant-burst", "0"]), "--tenant-burst must be >= 1");
        assert!(err(&["--tenant-burst"]).contains("needs a value"));
    }

    #[test]
    fn parses_qos_flags() {
        let (opts, rest) = parse_vec(&[
            "--tenants",
            "8",
            "--regulator",
            "per-bank",
            "--tenant-rate",
            "1/8",
            "--tenant-burst",
            "4",
        ])
        .unwrap();
        assert!(rest.is_empty());
        assert_eq!(opts.tenants, 8);
        assert_eq!(opts.regulator, RegulatorMode::PerBank);
        assert_eq!(opts.tenant_rate, (1, 8));
        assert_eq!(opts.tenant_burst, 4);
        let q = opts.qos().expect("qos active");
        assert_eq!(
            (q.tenants, q.mode, q.rate_num, q.rate_den, q.burst),
            (8, RegulatorMode::PerBank, 1, 8, 4)
        );
        assert_eq!(EngineOpts::default().qos(), None, "single tenant implies no qos section");
    }

    #[test]
    fn qos_selection_builds_a_fabric_even_at_one_channel() {
        use vpnm_core::{LineAddr, Request, TenantId};
        let base = VpnmConfig::small_test();
        let opts = EngineOpts { tenants: 2, ..EngineOpts::default() };
        let mut mem = opts.build(base, 13).expect("tracked single channel");
        // The fabric path exposes the tenant section in the snapshot.
        for i in 0..64u64 {
            mem.tick(Some(Request::read_as(TenantId(1), LineAddr(i % 32))));
        }
        let json = mem.snapshot().expect("fabric has metrics").to_json();
        assert!(json.contains("\"tenants\""), "tenant section missing:\n{json}");
        assert!(opts.describe().ends_with(", 2 tenants"), "{}", opts.describe());
        let reg =
            EngineOpts { regulator: RegulatorMode::Global, tenants: 3, ..EngineOpts::default() };
        assert!(reg.describe().ends_with(", 3 tenants (global 1/4 burst 16)"));
    }

    #[test]
    fn builds_every_topology() {
        let base = VpnmConfig::small_test();
        for kind in [EngineKind::Fast, EngineKind::Reference] {
            for channels in [1, 2] {
                let opts = EngineOpts { kind, channels, ..EngineOpts::default() };
                let mem = opts.build(base.clone(), 7).expect("valid topology");
                assert_eq!(mem.outstanding(), 0, "{}", opts.describe());
            }
        }
        // Invalid channel counts surface as construction errors.
        let odd = EngineOpts { channels: 3, ..EngineOpts::default() };
        assert!(odd.build(base, 7).is_err());
    }

    #[test]
    fn single_channel_build_matches_bare_controller() {
        use vpnm_core::{LineAddr, Request};
        let base = VpnmConfig::small_test();
        let mut bare = VpnmController::new(base.clone(), 11).unwrap();
        let mut built = EngineOpts::default().build(base, 11).unwrap();
        for i in 0..200u64 {
            let req = (i % 2 == 0).then_some(Request::read(LineAddr(i % 64)));
            assert_eq!(bare.tick(req.clone()), built.tick(req));
        }
        assert_eq!(Some(bare.snapshot().to_json()), built.snapshot().map(|s| s.to_json()));
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(EngineOpts::default().describe(), "fast");
        let fab = EngineOpts {
            kind: EngineKind::Reference,
            channels: 8,
            select: ChannelSelect::UniversalHash,
            ..EngineOpts::default()
        };
        assert_eq!(fab.describe(), "reference x8 (universal-hash)");
        let par = EngineOpts { kind: EngineKind::Fast, workers: 4, ..fab };
        assert_eq!(par.describe(), "fast x8 (universal-hash, 4 workers)");
    }
}
