//! Shared config→engine construction for the simulation bins.
//!
//! Every measurement bin used to hard-code `VpnmController::new(config,
//! seed)`. With two engines ([`VpnmController`], [`ReferenceController`])
//! and the multi-channel [`VpnmFabric`] all presenting the same
//! [`PipelinedMemory`] interface, the bins instead parse a common flag
//! triple and build whatever topology was asked for:
//!
//! ```text
//! --engine fast|reference     which engine serves each channel (default fast)
//! --channels N                channel count, a power of two (default 1)
//! --select low-bits|high-bits|universal-hash
//!                             fabric channel-select stage (default low-bits)
//! --workers N                 worker threads for the fabric's epoch path
//!                             (default 1 = on-thread; clamped to the
//!                             channel count, ignored for 1 channel)
//! ```
//!
//! The default triple builds a bare fast controller — byte-identical
//! behavior (and an identical hot path) to what the bins did before this
//! helper existed. Bins whose pass/fail assertions encode expectations
//! about a specific topology document that they target the default.

use vpnm_core::{
    ChannelSelect, FabricConfig, PipelinedMemory, ReferenceController, VpnmConfig, VpnmController,
    VpnmFabric,
};

/// Which engine implementation serves each channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The production engine: ready-set scheduling, shared delay wheel,
    /// event-horizon skipping.
    Fast,
    /// The O(B)-per-cycle seed formulation, kept as a differential twin.
    Reference,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Fast => "fast",
            EngineKind::Reference => "reference",
        })
    }
}

/// The engine/topology selection shared by the simulation bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOpts {
    /// Engine serving each channel.
    pub kind: EngineKind,
    /// Channel count (1 = a bare controller, no fabric wrapper).
    pub channels: u32,
    /// Channel-select stage for `channels > 1`.
    pub select: ChannelSelect,
    /// Worker threads for the fabric's epoch-batched path (`run_epoch`):
    /// 1 runs epochs on the caller's thread; more attach a persistent
    /// pool. Only meaningful for `channels > 1` — outputs are
    /// byte-identical for every value either way.
    pub workers: usize,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            kind: EngineKind::Fast,
            channels: 1,
            select: ChannelSelect::LowBits,
            workers: 1,
        }
    }
}

impl EngineOpts {
    /// Consumes the recognized engine flags from an argument list,
    /// returning the selection and the arguments it did not recognize
    /// (for the bin's own flag handling).
    ///
    /// # Errors
    ///
    /// Returns a usage message for a malformed value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(Self, Vec<String>), String> {
        let mut opts = EngineOpts::default();
        let mut rest = Vec::new();
        let mut args = args;
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--engine" => {
                    opts.kind = match value("--engine")?.as_str() {
                        "fast" => EngineKind::Fast,
                        "reference" => EngineKind::Reference,
                        other => return Err(format!("unknown engine '{other}'")),
                    };
                }
                "--channels" => {
                    let v = value("--channels")?;
                    opts.channels =
                        v.parse().map_err(|_| format!("--channels needs a number, got '{v}'"))?;
                }
                "--select" => {
                    opts.select = match value("--select")?.as_str() {
                        "low-bits" => ChannelSelect::LowBits,
                        "high-bits" => ChannelSelect::HighBits,
                        "universal-hash" => ChannelSelect::UniversalHash,
                        other => return Err(format!("unknown channel select '{other}'")),
                    };
                }
                "--workers" => {
                    let v = value("--workers")?;
                    let w: usize =
                        v.parse().map_err(|_| format!("--workers needs a number, got '{v}'"))?;
                    opts.workers = w.max(1);
                }
                _ => rest.push(arg),
            }
        }
        Ok((opts, rest))
    }

    /// Parses the engine flags from the process arguments, exiting with a
    /// usage message on error or on any unrecognized argument — for bins
    /// that take no flags of their own.
    pub fn from_env() -> Self {
        match EngineOpts::parse(std::env::args().skip(1)) {
            Ok((opts, rest)) if rest.is_empty() => opts,
            Ok((_, rest)) => usage_exit(&format!("unrecognized argument '{}'", rest[0])),
            Err(e) => usage_exit(&e),
        }
    }

    /// The fabric geometry for `base` under this selection.
    pub fn fabric_config(&self, base: VpnmConfig) -> FabricConfig {
        FabricConfig { channels: self.channels, select: self.select, base }
    }

    /// Builds the selected engine/topology over `base`.
    ///
    /// A single channel builds the bare engine (no fabric wrapper, so the
    /// default selection is the exact pre-helper hot path); multiple
    /// channels build a [`VpnmFabric`] of the selected engine.
    ///
    /// # Errors
    ///
    /// Returns the config/fabric validation failure message.
    pub fn build(&self, base: VpnmConfig, seed: u64) -> Result<Box<dyn PipelinedMemory>, String> {
        Ok(match (self.kind, self.channels) {
            (EngineKind::Fast, 1) => Box::new(VpnmController::new(base, seed)?),
            (EngineKind::Reference, 1) => Box::new(ReferenceController::new(base, seed)?),
            (EngineKind::Fast, _) => {
                let mut fab = VpnmFabric::new(self.fabric_config(base), seed)?;
                fab.set_workers(self.workers);
                Box::new(fab)
            }
            (EngineKind::Reference, _) => {
                let mut fab = VpnmFabric::new_reference(self.fabric_config(base), seed)?;
                fab.set_workers(self.workers);
                Box::new(fab)
            }
        })
    }

    /// One-line human description, e.g. `fast` or `reference x4
    /// (universal-hash)`.
    pub fn describe(&self) -> String {
        if self.channels == 1 {
            self.kind.to_string()
        } else if self.workers > 1 {
            format!("{} x{} ({}, {} workers)", self.kind, self.channels, self.select, self.workers)
        } else {
            format!("{} x{} ({})", self.kind, self.channels, self.select)
        }
    }
}

/// The bins' common construction entry point: engine flags from the
/// process arguments, `base` and `seed` from the bin. Exits with a usage
/// message on malformed flags or an invalid topology.
pub fn engine_from_args(base: VpnmConfig, seed: u64) -> Box<dyn PipelinedMemory> {
    let opts = EngineOpts::from_env();
    opts.build(base, seed).unwrap_or_else(|e| usage_exit(&e))
}

fn usage_exit(error: &str) -> ! {
    eprintln!(
        "error: {error}\n\
         engine flags: [--engine fast|reference] [--channels N] \
         [--select low-bits|high-bits|universal-hash] [--workers N]"
    );
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_vec(args: &[&str]) -> Result<(EngineOpts, Vec<String>), String> {
        EngineOpts::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_flags_and_passes_through_the_rest() {
        let (opts, rest) = parse_vec(&[
            "--cycles",
            "100",
            "--engine",
            "reference",
            "--channels",
            "4",
            "--select",
            "universal-hash",
            "--workers",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.kind, EngineKind::Reference);
        assert_eq!(opts.channels, 4);
        assert_eq!(opts.select, ChannelSelect::UniversalHash);
        assert_eq!(opts.workers, 4);
        assert_eq!(rest, vec!["--cycles".to_string(), "100".to_string()]);

        assert_eq!(parse_vec(&[]).unwrap().0, EngineOpts::default());
        assert_eq!(parse_vec(&["--workers", "0"]).unwrap().0.workers, 1, "clamped to >= 1");
        assert!(parse_vec(&["--engine", "warp"]).is_err());
        assert!(parse_vec(&["--channels"]).is_err());
        assert!(parse_vec(&["--select", "mod-17"]).is_err());
        assert!(parse_vec(&["--workers", "many"]).is_err());
    }

    #[test]
    fn builds_every_topology() {
        let base = VpnmConfig::small_test();
        for kind in [EngineKind::Fast, EngineKind::Reference] {
            for channels in [1, 2] {
                let opts = EngineOpts { kind, channels, ..EngineOpts::default() };
                let mem = opts.build(base.clone(), 7).expect("valid topology");
                assert_eq!(mem.outstanding(), 0, "{}", opts.describe());
            }
        }
        // Invalid channel counts surface as construction errors.
        let odd = EngineOpts { channels: 3, ..EngineOpts::default() };
        assert!(odd.build(base, 7).is_err());
    }

    #[test]
    fn single_channel_build_matches_bare_controller() {
        use vpnm_core::{LineAddr, Request};
        let base = VpnmConfig::small_test();
        let mut bare = VpnmController::new(base.clone(), 11).unwrap();
        let mut built = EngineOpts::default().build(base, 11).unwrap();
        for i in 0..200u64 {
            let req = (i % 2 == 0).then_some(Request::Read { addr: LineAddr(i % 64) });
            assert_eq!(bare.tick(req.clone()), built.tick(req));
        }
        assert_eq!(Some(bare.snapshot().to_json()), built.snapshot().map(|s| s.to_json()));
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(EngineOpts::default().describe(), "fast");
        let fab = EngineOpts {
            kind: EngineKind::Reference,
            channels: 8,
            select: ChannelSelect::UniversalHash,
            ..EngineOpts::default()
        };
        assert_eq!(fab.describe(), "reference x8 (universal-hash)");
        let par = EngineOpts { kind: EngineKind::Fast, workers: 4, ..fab };
        assert_eq!(par.describe(), "fast x8 (universal-hash, 4 workers)");
    }
}
