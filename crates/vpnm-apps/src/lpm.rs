//! Longest-prefix-match (LPM) route lookup on VPNM.
//!
//! The paper's conclusion names "packet classification, packet inspection,
//! application-oriented networking" as the next data-plane algorithms to
//! map onto the virtual pipeline; IP route lookup is the canonical one
//! (its related work discusses the bank-aware tree engines of Baboescu et
//! al. that VPNM makes unnecessary). This module implements a stride-8
//! multibit trie in VPNM memory:
//!
//! * each trie node is 256 entries of 8 bytes (one 2 KB node = 32
//!   64-byte cells, or more cells at smaller test granularities);
//! * a lookup walks at most four dependent reads (one per stride);
//! * because every read returns in exactly `D` cycles, lookups pipeline
//!   perfectly: the engine keeps many lookups in flight and issues one
//!   access per cycle, sustaining ~one lookup per `levels` cycles with
//!   **no** bank-aware layout of the trie — the exact planning burden the
//!   paper's Section 2 says specialized engines impose.
//!
//! The trie layout needs no care at all: nodes are allocated sequentially
//! and the controller's universal hash scatters them over banks.

use std::collections::VecDeque;
use vpnm_core::{LineAddr, PipelinedMemory, Request, StallKind};

/// Number of 8-bit strides in an IPv4 address.
pub const LEVELS: usize = 4;
/// Entries per trie node (one per stride value).
pub const FANOUT: usize = 256;
/// Bytes per trie entry: `next_hop: u32` + `child: u32` (high bit =
/// child-present; `u32::MAX` next hop = none).
pub const ENTRY_BYTES: usize = 8;

const NO_NEXT_HOP: u32 = u32::MAX;
const CHILD_FLAG: u32 = 0x8000_0000;

/// The `level`-th 8-bit stride of an address (level 0 = most significant).
fn stride_byte(addr: u32, level: usize) -> usize {
    ((addr >> (24 - 8 * level)) & 0xFF) as usize
}

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePrefix {
    /// Network address (host byte order).
    pub prefix: u32,
    /// Prefix length in bits (0–32).
    pub len: u8,
    /// Next-hop identifier.
    pub next_hop: u32,
}

/// An in-memory multibit trie, built in software and then *loaded into*
/// a pipelined memory for lookups.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// node → entries; entry = (next_hop, child_node).
    nodes: Vec<[(u32, Option<u32>); FANOUT]>,
}

impl Default for RouteTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteTable {
    /// An empty table with just the root node.
    pub fn new() -> Self {
        RouteTable { nodes: vec![[(NO_NEXT_HOP, None); FANOUT]] }
    }

    /// Number of trie nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts a route, expanding the prefix across its stride level
    /// (controlled prefix expansion). Longer prefixes inserted later
    /// overwrite shorter ones on the covered entries, so insert routes in
    /// ascending prefix-length order for correct LPM semantics —
    /// [`RouteTable::from_routes`] does this automatically.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or the prefix has bits below its length.
    pub fn insert(&mut self, route: RoutePrefix) {
        assert!(route.len <= 32, "prefix length at most 32");
        if route.len == 0 {
            assert_eq!(route.prefix, 0, "default route must have a zero prefix");
        } else if route.len < 32 {
            assert_eq!(
                route.prefix & ((1u32 << (32 - route.len)) - 1),
                0,
                "prefix has bits below its length"
            );
        }
        let full_strides = (route.len / 8) as usize;
        if route.len > 0 && route.len.is_multiple_of(8) {
            // exact stride boundary: one entry in the node at the parent
            // level
            let node = self.walk(&route, full_strides - 1);
            let byte = stride_byte(route.prefix, full_strides - 1);
            self.nodes[node][byte].0 = route.next_hop;
        } else {
            // expand the residual bits across the covered entries (for
            // the default route this covers the whole root node)
            let node = self.walk(&route, full_strides);
            let residual_bits = route.len as usize - 8 * full_strides;
            let span = 1usize << (8 - residual_bits);
            let start = stride_byte(route.prefix, full_strides) & !(span - 1);
            for byte in start..start + span {
                self.nodes[node][byte].0 = route.next_hop;
            }
        }
    }

    /// Walks (creating as needed) `levels` full strides of `route`.
    fn walk(&mut self, route: &RoutePrefix, levels: usize) -> usize {
        let mut node = 0usize;
        for level in 0..levels {
            let byte = stride_byte(route.prefix, level);
            node = self.child_or_new(node, byte);
        }
        node
    }

    fn child_or_new(&mut self, node: usize, byte: usize) -> usize {
        if let Some(c) = self.nodes[node][byte].1 {
            return c as usize;
        }
        let c = self.nodes.len();
        self.nodes.push([(NO_NEXT_HOP, None); FANOUT]);
        self.nodes[node][byte].1 = Some(c as u32);
        c
    }

    /// Builds a table from routes, sorting by prefix length so that
    /// longer (more specific) prefixes win.
    pub fn from_routes(routes: &[RoutePrefix]) -> Self {
        let mut sorted = routes.to_vec();
        sorted.sort_by_key(|r| r.len);
        let mut t = RouteTable::new();
        for r in &sorted {
            t.insert(*r);
        }
        t
    }

    /// Software reference lookup (the oracle for the memory-backed
    /// engine).
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = 0usize;
        let mut best = None;
        for level in 0..LEVELS {
            let byte = ((addr >> (24 - 8 * level)) & 0xFF) as usize;
            let (nh, child) = self.nodes[node][byte];
            if nh != NO_NEXT_HOP {
                best = Some(nh);
            }
            match child {
                Some(c) if level + 1 < LEVELS => node = c as usize,
                _ => break,
            }
        }
        best
    }
}

/// A route lookup engine over any [`PipelinedMemory`].
///
/// Entries are packed into memory cells (`entries_per_cell =
/// cell_bytes / 8`); node `n` entry `e` lives in cell
/// `n·(FANOUT/entries_per_cell) + e/entries_per_cell`.
#[derive(Debug)]
pub struct LpmEngine<M> {
    mem: M,
    cell_bytes: usize,
    table: RouteTable,
    /// Issued reads awaiting their responses, in issue order (constant
    /// latency means responses return in exactly this order).
    in_flight: VecDeque<Pending>,
    /// Responses collected from ticks, pending interpretation.
    ready: VecDeque<vpnm_core::Response>,
    /// Dependent accesses discovered by completions, awaiting issue.
    to_issue: VecDeque<(Pending, u32)>,
    results: Vec<Option<Option<u32>>>,
    stall_retries: u64,
    accesses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    lookup: usize,
    addr: u32,
    level: usize,
    best: Option<u32>,
}

impl<M: PipelinedMemory> LpmEngine<M> {
    /// Loads `table` into `mem` (through ordinary write requests) and
    /// returns the engine.
    ///
    /// # Panics
    ///
    /// Panics if the cell size cannot hold at least one entry.
    pub fn new(mut mem: M, table: RouteTable, cell_bytes: usize) -> Self {
        assert!(cell_bytes >= ENTRY_BYTES, "cells must hold at least one 8-byte entry");
        let entries_per_cell = cell_bytes / ENTRY_BYTES;
        let cells_per_node = FANOUT / entries_per_cell;
        for (n, node) in table.nodes.iter().enumerate() {
            for c in 0..cells_per_node {
                let mut data = Vec::with_capacity(cell_bytes);
                for e in 0..entries_per_cell {
                    let (nh, child) = node[c * entries_per_cell + e];
                    data.extend_from_slice(&nh.to_le_bytes());
                    let child_word = match child {
                        Some(idx) => idx | CHILD_FLAG,
                        None => 0,
                    };
                    data.extend_from_slice(&child_word.to_le_bytes());
                }
                let addr = (n * cells_per_node + c) as u64;
                loop {
                    let out = mem.tick(Some(Request::write(LineAddr(addr), data.clone())));
                    if out.stall.is_none() {
                        break;
                    }
                }
            }
        }
        LpmEngine {
            mem,
            cell_bytes,
            table,
            in_flight: VecDeque::new(),
            ready: VecDeque::new(),
            to_issue: VecDeque::new(),
            results: Vec::new(),
            stall_retries: 0,
            accesses: 0,
        }
    }

    /// Memory accesses issued so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cycles retried due to controller stalls.
    pub fn stall_retries(&self) -> u64 {
        self.stall_retries
    }

    /// Interface cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.mem.now().as_u64()
    }

    fn cell_of(&self, node: u32, byte: usize) -> (LineAddr, usize) {
        let entries_per_cell = self.cell_bytes / ENTRY_BYTES;
        let cells_per_node = FANOUT / entries_per_cell;
        let cell = node as usize * cells_per_node + byte / entries_per_cell;
        (LineAddr(cell as u64), (byte % entries_per_cell) * ENTRY_BYTES)
    }

    /// One memory cycle; any due response is banked for interpretation.
    fn tick_mem(&mut self, req: Option<Request>) -> Option<StallKind> {
        let out = self.mem.tick(req);
        if let Some(r) = out.response {
            self.ready.push_back(r);
        }
        out.stall
    }

    /// Interprets every banked response (pure bookkeeping — no ticking,
    /// so the in-flight FIFO order can never invert).
    fn complete_ready(&mut self) {
        while let Some(r) = self.ready.pop_front() {
            let p = self.in_flight.pop_front().expect("response implies in-flight lookup");
            let byte = stride_byte(p.addr, p.level);
            let entries_per_cell = self.cell_bytes / ENTRY_BYTES;
            let off = (byte % entries_per_cell) * ENTRY_BYTES;
            let nh = u32::from_le_bytes(r.data[off..off + 4].try_into().expect("entry in cell"));
            let child_word =
                u32::from_le_bytes(r.data[off + 4..off + 8].try_into().expect("entry in cell"));
            let best = if nh != NO_NEXT_HOP { Some(nh) } else { p.best };
            if child_word & CHILD_FLAG != 0 && p.level + 1 < LEVELS {
                let next = Pending { level: p.level + 1, best, ..p };
                self.to_issue.push_back((next, child_word & !CHILD_FLAG));
            } else {
                self.results[p.lookup] = Some(best);
            }
        }
    }

    /// Issues queued accesses until the issue queue is empty, retrying
    /// stalled cycles (the clock advances either way, so the controller's
    /// queues always eventually drain).
    fn pump_issues(&mut self) {
        while let Some(&(p, node)) = self.to_issue.front() {
            let byte = stride_byte(p.addr, p.level);
            let (cell, _) = self.cell_of(node, byte);
            match self.tick_mem(Some(Request::read(cell))) {
                None => {
                    self.accesses += 1;
                    self.in_flight.push_back(p);
                    self.to_issue.pop_front();
                }
                Some(_) => self.stall_retries += 1,
            }
            self.complete_ready();
        }
    }

    /// Looks up a batch of addresses, pipelining the dependent trie walks
    /// through the memory. Returns one `Option<next_hop>` per address.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to drain within its latency budget,
    /// which would indicate a broken deterministic-latency invariant.
    pub fn lookup_batch(&mut self, addrs: &[u32]) -> Vec<Option<u32>> {
        let base = self.results.len();
        self.results.resize(base + addrs.len(), None);
        for (i, &addr) in addrs.iter().enumerate() {
            let p = Pending { lookup: base + i, addr, level: 0, best: None };
            self.to_issue.push_back((p, 0));
        }
        self.pump_issues();
        // drain the pipeline: each response may spawn one more level
        let budget = (self.mem.outstanding() as u64 + 2) * self.mem.delay() * LEVELS as u64;
        for _ in 0..budget {
            if self.in_flight.is_empty() && self.to_issue.is_empty() {
                break;
            }
            self.tick_mem(None);
            self.complete_ready();
            self.pump_issues();
        }
        self.results[base..]
            .iter()
            .map(|r| r.expect("all lookups resolve within the drain budget"))
            .collect()
    }

    /// The software reference table (oracle access).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vpnm_core::{VpnmConfig, VpnmController};

    fn route(prefix: u32, len: u8, next_hop: u32) -> RoutePrefix {
        RoutePrefix { prefix, len, next_hop }
    }

    fn sample_table() -> RouteTable {
        RouteTable::from_routes(&[
            route(0x0A00_0000, 8, 1),  // 10.0.0.0/8
            route(0x0A0A_0000, 16, 2), // 10.10.0.0/16
            route(0x0A0A_0A00, 24, 3), // 10.10.10.0/24
            route(0x0A0A_0A2A, 32, 4), // 10.10.10.42/32
            route(0xC0A8_0000, 16, 5), // 192.168.0.0/16
            route(0x0000_0000, 0, 99), // default
        ])
    }

    #[test]
    fn software_lookup_longest_prefix_wins() {
        let t = sample_table();
        assert_eq!(t.lookup(0x0A0A_0A2A), Some(4)); // /32 hit
        assert_eq!(t.lookup(0x0A0A_0A01), Some(3)); // /24
        assert_eq!(t.lookup(0x0A0A_FF01), Some(2)); // /16
        assert_eq!(t.lookup(0x0AFF_0001), Some(1)); // /8
        assert_eq!(t.lookup(0xC0A8_1234), Some(5));
        assert_eq!(t.lookup(0x0101_0101), Some(99)); // default route
    }

    #[test]
    fn trie_grows_only_where_needed() {
        let t = sample_table();
        // root + 10.x + 10.10.x + 10.10.10.x + 192.168 path
        assert!(t.num_nodes() <= 8, "nodes: {}", t.num_nodes());
    }

    #[test]
    #[should_panic(expected = "bits below")]
    fn misaligned_prefix_rejected() {
        let mut t = RouteTable::new();
        t.insert(route(0x0A00_0001, 8, 1));
    }

    fn engine() -> LpmEngine<VpnmController> {
        let cfg = VpnmConfig { addr_bits: 20, ..VpnmConfig::test_roomy() };
        let mem = VpnmController::new(cfg, 12).unwrap();
        LpmEngine::new(mem, sample_table(), 8)
    }

    #[test]
    fn memory_backed_lookup_matches_software() {
        let mut eng = engine();
        let addrs =
            [0x0A0A_0A2Au32, 0x0A0A_0A01, 0x0A0A_FF01, 0x0AFF_0001, 0xC0A8_1234, 0x0101_0101];
        let got = eng.lookup_batch(&addrs);
        for (a, g) in addrs.iter().zip(&got) {
            assert_eq!(*g, eng.table().lookup(*a), "addr {a:#x}");
        }
    }

    #[test]
    fn random_tables_match_software_oracle() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut routes = Vec::new();
        for _ in 0..60 {
            let len = *[8u8, 16, 24, 32].get(rng.gen_range(0..4)).expect("index in range");
            let prefix =
                rng.gen::<u32>() & if len == 32 { u32::MAX } else { !((1 << (32 - len)) - 1) };
            routes.push(route(prefix, len, rng.gen_range(1..1000)));
        }
        let table = RouteTable::from_routes(&routes);
        let cfg = VpnmConfig { addr_bits: 20, ..VpnmConfig::test_roomy() };
        let mem = VpnmController::new(cfg, 13).unwrap();
        let mut eng = LpmEngine::new(mem, table, 8);
        let addrs: Vec<u32> = (0..300).map(|_| rng.gen()).collect();
        let got = eng.lookup_batch(&addrs);
        for (a, g) in addrs.iter().zip(&got) {
            assert_eq!(*g, eng.table().lookup(*a), "addr {a:#x}");
        }
    }

    #[test]
    fn pipelined_lookups_sustain_near_one_access_per_cycle() {
        let mut eng = engine();
        let mut rng = StdRng::seed_from_u64(45);
        // warm the pipeline with a large batch of random addresses
        let addrs: Vec<u32> = (0..500).map(|_| rng.gen()).collect();
        let c0 = eng.cycles();
        let a0 = eng.accesses();
        eng.lookup_batch(&addrs);
        let issue_cycles = eng.cycles() - c0; // includes the final drain
        let accesses = eng.accesses() - a0;
        // every lookup costs between 1 and LEVELS accesses
        assert!(accesses >= 500 && accesses <= 500 * LEVELS as u64);
        // amortized: issue phase approaches one access per cycle; the
        // drain tail adds ~LEVELS·D
        let drain_tail = (LEVELS as u64 + 1) * eng.mem.delay();
        assert!(
            issue_cycles <= accesses + drain_tail + 500,
            "cycles {issue_cycles} vs accesses {accesses} + tail {drain_tail}"
        );
    }
}
