//! The CFDS model — Garcia et al., *"Design and implementation of
//! high-performance memory systems for future packet buffers"*,
//! MICRO-36, 2003 (paper reference \[12\]).
//!
//! CFDS keeps queue pointers in SRAM like VPNM, but attacks bank conflicts
//! with *conflict-aware scheduling* instead of randomization: requests
//! enter a long reorder window and a scheduler issues, every `b` cycles,
//! the oldest request whose bank is currently free. The cost is the
//! scheduling rate (one request per `b` cycles — the paper quotes "the
//! implementation of RR scheduling logic for OC-3072 and b = 1 is
//! certainly of difficult viability") and a very long worst-case delay
//! (the Table 3 row lists 10 000 ns) because a request may wait out the
//! whole window.

use crate::packet_buffer::{BufferError, BufferEvent, DequeuedCell};
use std::collections::VecDeque;
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::Cycle;

#[derive(Debug, Clone, Copy, Default)]
struct Pointers {
    head: u64,
    tail: u64,
}

#[derive(Debug, Clone)]
enum OpKind {
    Write { data: Vec<u8> },
    Read { queue: u32, read_seq: u64 },
}

#[derive(Debug, Clone)]
struct PendingOp {
    bank: u32,
    offset: u64,
    kind: OpKind,
}

#[derive(Debug, Clone)]
struct CompletedRead {
    read_seq: u64,
    ready_at: Cycle,
    cell: DequeuedCell,
}

/// A CFDS-style packet buffer: conventional (low-bit) bank mapping, a
/// bounded reorder window, one issue slot every `b` cycles.
#[derive(Debug)]
pub struct CfdsBuffer {
    dram: DramDevice,
    queues: Vec<Pointers>,
    cells_per_queue: u64,
    issue_interval: u64,
    window: VecDeque<PendingOp>,
    window_cap: usize,
    now: u64,
    /// Reads issued to DRAM, awaiting in-order delivery.
    completed: Vec<CompletedRead>,
    /// Cells that became deliverable on a cycle whose tick result was a
    /// rejection; handed out by the next successful tick.
    pending: VecDeque<DequeuedCell>,
    next_read_seq: u64,
    next_deliver_seq: u64,
    issued: u64,
}

impl CfdsBuffer {
    /// Creates a CFDS buffer over `dram_config` with the given queue
    /// geometry, reorder window capacity, and issue interval `b`.
    ///
    /// # Errors
    ///
    /// Rejects degenerate geometry or regions that do not fit the DRAM.
    pub fn new(
        dram_config: DramConfig,
        num_queues: u32,
        cells_per_queue: u64,
        window_cap: usize,
        issue_interval: u64,
    ) -> Result<Self, String> {
        if num_queues == 0 || cells_per_queue == 0 || window_cap == 0 || issue_interval == 0 {
            return Err("degenerate CFDS configuration".into());
        }
        let total = u64::from(num_queues) * cells_per_queue;
        let capacity = u64::from(dram_config.num_banks) * dram_config.cells_per_bank();
        if total > capacity {
            return Err(format!("{total} cells exceed DRAM capacity {capacity}"));
        }
        dram_config.validate()?;
        Ok(CfdsBuffer {
            dram: DramDevice::new(dram_config),
            queues: vec![Pointers::default(); num_queues as usize],
            cells_per_queue,
            issue_interval,
            window: VecDeque::with_capacity(window_cap),
            window_cap,
            now: 0,
            completed: Vec::new(),
            pending: VecDeque::new(),
            next_read_seq: 0,
            next_deliver_seq: 0,
            issued: 0,
        })
    }

    /// Total requests issued to DRAM so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Current reorder-window occupancy.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    fn locate(&self, queue: u32, counter: u64) -> (u32, u64) {
        let flat = u64::from(queue) * self.cells_per_queue + counter % self.cells_per_queue;
        // conventional banking: low bits select the bank
        let banks = u64::from(self.dram.config().num_banks);
        ((flat % banks) as u32, flat / banks)
    }

    /// One scheduling slot: issue the oldest window entry whose bank is
    /// free (conflict-free by construction).
    fn schedule(&mut self) {
        let now = Cycle::new(self.now);
        let Some(pos) = self
            .window
            .iter()
            .position(|op| self.dram.is_bank_ready(op.bank, now).unwrap_or(false))
        else {
            return;
        };
        let op = self.window.remove(pos).expect("position valid");
        match op.kind {
            OpKind::Write { data } => {
                self.dram.issue_write(op.bank, op.offset, data, now).expect("bank checked free");
            }
            OpKind::Read { queue, read_seq } => {
                let grant =
                    self.dram.issue_read(op.bank, op.offset, now).expect("bank checked free");
                self.completed.push(CompletedRead {
                    read_seq,
                    ready_at: grant.data_ready_at,
                    cell: DequeuedCell { queue, data: grant.data },
                });
            }
        }
        self.issued += 1;
    }

    /// Advances one cell slot.
    ///
    /// # Errors
    ///
    /// [`BufferError::Backpressure`] when the reorder window is full,
    /// plus the queue-state rejections.
    pub fn tick(
        &mut self,
        event: Option<BufferEvent>,
    ) -> Result<Option<DequeuedCell>, BufferError> {
        self.now += 1;
        if self.now.is_multiple_of(self.issue_interval) {
            self.schedule();
        }
        // in-order staging of ready reads (survives rejected ticks)
        while let Some(pos) = self
            .completed
            .iter()
            .position(|c| c.read_seq == self.next_deliver_seq && c.ready_at <= Cycle::new(self.now))
        {
            let c = self.completed.swap_remove(pos);
            self.next_deliver_seq += 1;
            self.pending.push_back(c.cell);
        }
        match event {
            None => Ok(self.pending.pop_front()),
            Some(ev) => {
                if self.window.len() == self.window_cap {
                    return Err(BufferError::Backpressure);
                }
                match ev {
                    BufferEvent::Enqueue { queue, cell } => {
                        let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                        if q.tail - q.head >= self.cells_per_queue {
                            return Err(BufferError::QueueFull);
                        }
                        let tail = q.tail;
                        q.tail += 1;
                        let (bank, offset) = self.locate(queue, tail);
                        self.window.push_back(PendingOp {
                            bank,
                            offset,
                            kind: OpKind::Write { data: cell },
                        });
                    }
                    BufferEvent::Dequeue { queue } => {
                        let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                        if q.tail == q.head {
                            return Err(BufferError::QueueEmpty);
                        }
                        let head = q.head;
                        q.head += 1;
                        let (bank, offset) = self.locate(queue, head);
                        let read_seq = self.next_read_seq;
                        self.next_read_seq += 1;
                        self.window.push_back(PendingOp {
                            bank,
                            offset,
                            kind: OpKind::Read { queue, read_seq },
                        });
                    }
                }
                Ok(self.pending.pop_front())
            }
        }
    }

    /// Ticks without events until all pending reads are delivered or the
    /// budget runs out.
    pub fn drain(&mut self, budget: u64) -> Vec<DequeuedCell> {
        let mut out = Vec::new();
        for _ in 0..budget {
            if self.next_deliver_seq == self.next_read_seq
                && self.window.is_empty()
                && self.pending.is_empty()
            {
                break;
            }
            if let Ok(Some(c)) = self.tick(None) {
                out.push(c);
            }
        }
        out.extend(self.pending.drain(..));
        out
    }

    /// SRAM requirement: queue pointers plus the reorder window entries
    /// (address + data + state), the structure the paper calls "a long
    /// reorder buffer like structure".
    pub fn sram_bytes(&self) -> u64 {
        let ptr_bits = u64::from(64 - (self.cells_per_queue.max(2) - 1).leading_zeros()) + 1;
        let pointers = (self.queues.len() as u64 * 2 * ptr_bits).div_ceil(8);
        let per_entry = 8 + self.dram.config().cell_bytes as u64;
        pointers + self.window_cap as u64 * per_entry
    }

    /// Worst-case delay: a request can wait behind the whole window at
    /// one issue per `b` cycles, plus the bank access itself.
    pub fn worst_case_delay_cycles(&self) -> u64 {
        use vpnm_dram::timing::TimingPolicy;
        self.window_cap as u64 * self.issue_interval + self.dram.config().timing.l_ratio()
    }
}

impl crate::baselines::PacketBufferModel for CfdsBuffer {
    fn name(&self) -> &'static str {
        "cfds"
    }

    fn tick(&mut self, event: Option<BufferEvent>) -> Result<Option<DequeuedCell>, BufferError> {
        CfdsBuffer::tick(self, event)
    }

    fn sram_bytes(&self) -> u64 {
        CfdsBuffer::sram_bytes(self)
    }

    fn worst_case_delay_cycles(&self) -> u64 {
        CfdsBuffer::worst_case_delay_cycles(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_workloads::packets::payload_bytes;

    fn small() -> CfdsBuffer {
        CfdsBuffer::new(DramConfig::tiny_test(), 4, 16, 32, 2).unwrap()
    }

    #[test]
    fn fifo_roundtrip() {
        let mut buf = small();
        for seq in 0..8u64 {
            buf.tick(Some(BufferEvent::Enqueue { queue: 1, cell: payload_bytes(1, seq, 8) }))
                .unwrap();
        }
        // let the writes land before reading
        buf.drain(200);
        let mut got = Vec::new();
        for _ in 0..8 {
            got.extend(buf.tick(Some(BufferEvent::Dequeue { queue: 1 })).unwrap());
        }
        got.extend(buf.drain(500));
        assert_eq!(got.len(), 8);
        for (seq, c) in got.iter().enumerate() {
            assert_eq!(c.queue, 1);
            assert_eq!(c.data, payload_bytes(1, seq as u64, 8), "cell {seq}");
        }
    }

    #[test]
    fn interleaved_queues_keep_order() {
        let mut buf = small();
        for seq in 0..4u64 {
            for q in 0..4u32 {
                loop {
                    match buf.tick(Some(BufferEvent::Enqueue {
                        queue: q,
                        cell: payload_bytes(q, seq, 8),
                    })) {
                        Ok(_) => break,
                        Err(BufferError::Backpressure) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }
        buf.drain(500);
        let mut got = Vec::new();
        for _ in 0..4 {
            for q in 0..4u32 {
                loop {
                    match buf.tick(Some(BufferEvent::Dequeue { queue: q })) {
                        Ok(c) => {
                            got.extend(c);
                            break;
                        }
                        Err(BufferError::Backpressure) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }
        got.extend(buf.drain(1000));
        assert_eq!(got.len(), 16);
        let mut next = [0u64; 4];
        for c in got {
            let q = c.queue as usize;
            assert_eq!(c.data, payload_bytes(c.queue, next[q], 8));
            next[q] += 1;
        }
    }

    #[test]
    fn window_backpressure() {
        let mut buf = CfdsBuffer::new(DramConfig::tiny_test(), 1, 64, 4, 8).unwrap();
        let mut rejected = 0;
        for seq in 0..32u64 {
            if buf
                .tick(Some(BufferEvent::Enqueue { queue: 0, cell: payload_bytes(0, seq, 8) }))
                .is_err()
            {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "slow issue rate must backpressure");
    }

    #[test]
    fn issue_rate_bounded_by_b() {
        let mut buf = CfdsBuffer::new(DramConfig::tiny_test(), 4, 64, 64, 4).unwrap();
        for seq in 0..40u64 {
            let _ = buf.tick(Some(BufferEvent::Enqueue {
                queue: (seq % 4) as u32,
                cell: payload_bytes(0, seq, 8),
            }));
        }
        // 40 ticks at one issue per 4 cycles → at most 10 issues
        assert!(buf.issued() <= 10, "issued {}", buf.issued());
    }

    #[test]
    fn sram_and_delay_reported() {
        let buf = small();
        assert!(buf.sram_bytes() > 0);
        assert!(buf.worst_case_delay_cycles() >= 32 * 2);
    }

    #[test]
    fn empty_queue_rejected() {
        let mut buf = small();
        assert_eq!(
            buf.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap_err(),
            BufferError::QueueEmpty
        );
    }
}
