//! The Nikologiannis–Katevenis model — *"Efficient per-flow queueing in
//! DRAM at OC-192 line rate using out-of-order execution techniques"*,
//! ICC 2001 (paper reference \[22\]).
//!
//! Per-flow queues live entirely in DRAM; bank conflicts are *reduced*
//! (not eliminated) by keeping a pool of pending operations and issuing,
//! each cycle, the oldest operation whose bank is currently free —
//! out-of-order execution across flows, in-order per flow. The pool and
//! the per-flow state are the scheme's large SRAM cost (the Table 3 row
//! lists 520 KB for 64 000 interfaces at OC-192/10 Gbps).

use crate::packet_buffer::{BufferError, BufferEvent, DequeuedCell};
use std::collections::VecDeque;
use vpnm_dram::{DramConfig, DramDevice};
use vpnm_sim::Cycle;

#[derive(Debug, Clone, Copy, Default)]
struct Pointers {
    head: u64,
    tail: u64,
}

#[derive(Debug, Clone)]
enum OpKind {
    Write {
        data: Vec<u8>,
    },
    Read {
        read_seq: u64,
    },
    /// A linked-list pointer access: per-flow queues in DRAM are linked
    /// lists, so every cell enqueue updates a next-pointer and every
    /// dequeue walks one — a second bank access per cell that halves the
    /// scheme's sustainable rate (why the paper's Table 3 lists it at
    /// OC-192 only).
    Pointer,
}

#[derive(Debug, Clone)]
struct PendingOp {
    queue: u32,
    bank: u32,
    offset: u64,
    kind: OpKind,
}

#[derive(Debug)]
struct DoneRead {
    read_seq: u64,
    ready_at: Cycle,
    cell: DequeuedCell,
}

/// An out-of-order per-flow DRAM packet buffer.
#[derive(Debug)]
pub struct NikologiannisBuffer {
    dram: DramDevice,
    queues: Vec<Pointers>,
    cells_per_queue: u64,
    pool: VecDeque<PendingOp>,
    pool_cap: usize,
    now: u64,
    done: Vec<DoneRead>,
    /// Deliverable cells that surfaced on rejected ticks.
    pending: VecDeque<DequeuedCell>,
    next_read_seq: u64,
    next_deliver_seq: u64,
}

impl NikologiannisBuffer {
    /// Creates the buffer.
    ///
    /// # Errors
    ///
    /// Rejects degenerate geometry or regions exceeding DRAM capacity.
    pub fn new(
        dram_config: DramConfig,
        num_queues: u32,
        cells_per_queue: u64,
        pool_cap: usize,
    ) -> Result<Self, String> {
        if num_queues == 0 || cells_per_queue == 0 || pool_cap == 0 {
            return Err("degenerate configuration".into());
        }
        let total = u64::from(num_queues) * cells_per_queue;
        let capacity = u64::from(dram_config.num_banks) * dram_config.cells_per_bank();
        if total > capacity {
            return Err(format!("{total} cells exceed DRAM capacity {capacity}"));
        }
        dram_config.validate()?;
        Ok(NikologiannisBuffer {
            dram: DramDevice::new(dram_config),
            queues: vec![Pointers::default(); num_queues as usize],
            cells_per_queue,
            pool: VecDeque::with_capacity(pool_cap),
            pool_cap,
            now: 0,
            done: Vec::new(),
            pending: VecDeque::new(),
            next_read_seq: 0,
            next_deliver_seq: 0,
        })
    }

    /// Pending pool occupancy.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn locate(&self, queue: u32, counter: u64) -> (u32, u64) {
        let flat = u64::from(queue) * self.cells_per_queue + counter % self.cells_per_queue;
        let banks = u64::from(self.dram.config().num_banks);
        ((flat % banks) as u32, flat / banks)
    }

    /// Out-of-order issue: the oldest pool entry whose bank is free (the
    /// oldest-first scan keeps same-bank — hence same-address — operations
    /// in order, so there are no read/write hazards).
    fn issue(&mut self) {
        let now = Cycle::new(self.now);
        let Some(pos) =
            self.pool.iter().position(|op| self.dram.is_bank_ready(op.bank, now).unwrap_or(false))
        else {
            return;
        };
        let op = self.pool.remove(pos).expect("position valid");
        match op.kind {
            OpKind::Write { data } => {
                self.dram.issue_write(op.bank, op.offset, data, now).expect("bank checked");
            }
            OpKind::Read { read_seq } => {
                let grant = self.dram.issue_read(op.bank, op.offset, now).expect("bank checked");
                self.done.push(DoneRead {
                    read_seq,
                    ready_at: grant.data_ready_at,
                    cell: DequeuedCell { queue: op.queue, data: grant.data },
                });
            }
            OpKind::Pointer => {
                // occupies the bank like any access; content is list
                // metadata the model does not need to materialize
                let _ = self.dram.issue_read(op.bank, op.offset, now).expect("bank checked");
            }
        }
    }

    /// Advances one cell slot.
    ///
    /// # Errors
    ///
    /// [`BufferError::Backpressure`] when the pending pool is full, plus
    /// the queue-state rejections.
    pub fn tick(
        &mut self,
        event: Option<BufferEvent>,
    ) -> Result<Option<DequeuedCell>, BufferError> {
        self.now += 1;
        self.issue();
        while let Some(pos) = self
            .done
            .iter()
            .position(|d| d.read_seq == self.next_deliver_seq && d.ready_at <= Cycle::new(self.now))
        {
            let d = self.done.swap_remove(pos);
            self.next_deliver_seq += 1;
            self.pending.push_back(d.cell);
        }
        match event {
            None => Ok(self.pending.pop_front()),
            Some(ev) => {
                // every cell event needs two pool slots: the data access
                // and the linked-list pointer access
                if self.pool.len() + 1 >= self.pool_cap {
                    return Err(BufferError::Backpressure);
                }
                match ev {
                    BufferEvent::Enqueue { queue, cell } => {
                        let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                        if q.tail - q.head >= self.cells_per_queue {
                            return Err(BufferError::QueueFull);
                        }
                        let tail = q.tail;
                        q.tail += 1;
                        let (bank, offset) = self.locate(queue, tail);
                        self.pool.push_back(PendingOp {
                            queue,
                            bank,
                            offset,
                            kind: OpKind::Write { data: cell },
                        });
                        self.pool.push_back(PendingOp {
                            queue,
                            bank,
                            offset,
                            kind: OpKind::Pointer,
                        });
                    }
                    BufferEvent::Dequeue { queue } => {
                        let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                        if q.tail == q.head {
                            return Err(BufferError::QueueEmpty);
                        }
                        let head = q.head;
                        q.head += 1;
                        let (bank, offset) = self.locate(queue, head);
                        let read_seq = self.next_read_seq;
                        self.next_read_seq += 1;
                        // list walk: pointer first, then the cell
                        self.pool.push_back(PendingOp {
                            queue,
                            bank,
                            offset,
                            kind: OpKind::Pointer,
                        });
                        self.pool.push_back(PendingOp {
                            queue,
                            bank,
                            offset,
                            kind: OpKind::Read { read_seq },
                        });
                    }
                }
                Ok(self.pending.pop_front())
            }
        }
    }

    /// Ticks without events until pending reads are delivered or the
    /// budget runs out.
    pub fn drain(&mut self, budget: u64) -> Vec<DequeuedCell> {
        let mut out = Vec::new();
        for _ in 0..budget {
            if self.next_deliver_seq == self.next_read_seq
                && self.pool.is_empty()
                && self.pending.is_empty()
            {
                break;
            }
            if let Ok(Some(c)) = self.tick(None) {
                out.push(c);
            }
        }
        out.extend(self.pending.drain(..));
        out
    }

    /// SRAM: pool entries (address + cell data + state) plus per-flow
    /// pointer records — large, because the scheme tracks tens of
    /// thousands of flows.
    pub fn sram_bytes(&self) -> u64 {
        let per_flow_record = 8u64; // head/tail pointer record
        let per_entry = 8 + self.dram.config().cell_bytes as u64;
        self.queues.len() as u64 * per_flow_record + self.pool_cap as u64 * per_entry
    }

    /// Worst case the pool drains serially through one bank.
    pub fn worst_case_delay_cycles(&self) -> u64 {
        use vpnm_dram::timing::TimingPolicy;
        self.pool_cap as u64 * self.dram.config().timing.l_ratio()
    }
}

impl crate::baselines::PacketBufferModel for NikologiannisBuffer {
    fn name(&self) -> &'static str {
        "nikologiannis"
    }

    fn tick(&mut self, event: Option<BufferEvent>) -> Result<Option<DequeuedCell>, BufferError> {
        NikologiannisBuffer::tick(self, event)
    }

    fn sram_bytes(&self) -> u64 {
        NikologiannisBuffer::sram_bytes(self)
    }

    fn worst_case_delay_cycles(&self) -> u64 {
        NikologiannisBuffer::worst_case_delay_cycles(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_workloads::packets::payload_bytes;

    fn small() -> NikologiannisBuffer {
        NikologiannisBuffer::new(DramConfig::tiny_test(), 4, 16, 16).unwrap()
    }

    #[test]
    fn fifo_roundtrip() {
        let mut buf = small();
        for seq in 0..8u64 {
            buf.tick(Some(BufferEvent::Enqueue { queue: 2, cell: payload_bytes(2, seq, 8) }))
                .unwrap();
        }
        buf.drain(200);
        let mut got = Vec::new();
        for _ in 0..8 {
            got.extend(buf.tick(Some(BufferEvent::Dequeue { queue: 2 })).unwrap());
        }
        got.extend(buf.drain(500));
        assert_eq!(got.len(), 8);
        for (seq, c) in got.iter().enumerate() {
            assert_eq!(c.data, payload_bytes(2, seq as u64, 8), "cell {seq}");
        }
    }

    #[test]
    fn out_of_order_issue_sustains_rotating_banks() {
        // Four queues spread across banks: OoO issue keeps ops moving,
        // but the 2-ops-per-cell cost (data + list pointer) caps the
        // sustainable rate near one cell every two cycles.
        let mut buf = small();
        let mut accepted = 0u64;
        for seq in 0..64u64 {
            let q = (seq % 4) as u32;
            if buf
                .tick(Some(BufferEvent::Enqueue { queue: q, cell: payload_bytes(q, seq / 4, 8) }))
                .is_ok()
            {
                accepted += 1;
            }
        }
        assert!((24..=48).contains(&accepted), "accepted {accepted}");
        assert!(buf.pool_len() <= 16, "pool stays bounded: {}", buf.pool_len());
    }

    #[test]
    fn pool_backpressure() {
        // 1-bank DRAM: every op conflicts, the pool fills.
        let cfg = DramConfig {
            num_banks: 1,
            rows_per_bank: 64,
            cells_per_row: 4,
            cell_bytes: 8,
            timing: vpnm_dram::timing::TimingModel::simple(10),
        };
        let mut buf = NikologiannisBuffer::new(cfg, 1, 64, 4).unwrap();
        let mut pressured = false;
        for seq in 0..16u64 {
            if let Err(BufferError::Backpressure) =
                buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: payload_bytes(0, seq, 8) }))
            {
                pressured = true;
            }
        }
        assert!(pressured);
    }

    #[test]
    fn per_queue_order_maintained_across_interleaving() {
        let mut buf = small();
        for seq in 0..4u64 {
            for q in 0..4u32 {
                loop {
                    match buf.tick(Some(BufferEvent::Enqueue {
                        queue: q,
                        cell: payload_bytes(q, seq, 8),
                    })) {
                        Ok(_) => break,
                        Err(BufferError::Backpressure) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }
        buf.drain(400);
        let mut got = Vec::new();
        let mut issued = 0u32;
        while issued < 16 {
            let q = issued % 4;
            match buf.tick(Some(BufferEvent::Dequeue { queue: q })) {
                Ok(c) => {
                    got.extend(c);
                    issued += 1;
                }
                Err(BufferError::Backpressure) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        got.extend(buf.drain(1000));
        assert_eq!(got.len(), 16);
        let mut next = [0u64; 4];
        for c in got {
            let q = c.queue as usize;
            assert_eq!(c.data, payload_bytes(c.queue, next[q], 8));
            next[q] += 1;
        }
    }

    #[test]
    fn sram_grows_with_flows() {
        let few = NikologiannisBuffer::new(DramConfig::tiny_test(), 4, 16, 16).unwrap();
        let cfg = DramConfig { rows_per_bank: 1 << 12, ..DramConfig::tiny_test() };
        let many = NikologiannisBuffer::new(cfg, 1000, 16, 16).unwrap();
        assert!(many.sram_bytes() > few.sram_bytes());
    }
}
