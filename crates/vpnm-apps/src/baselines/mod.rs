//! Executable models of the special-purpose packet-buffer architectures
//! VPNM is compared against in Table 3 of the paper.
//!
//! Each model is simplified to its essential mechanism but is a *real*
//! cycle-driven FIFO packet buffer (data in, same data out, per-queue
//! order preserved), so the throughput comparison in the Table 3 harness
//! is measured, not asserted:
//!
//! | model | mechanism | paper row |
//! |---|---|---|
//! | [`NikologiannisBuffer`] | per-flow queueing in DRAM with out-of-order execution across banks (reorder pool) | Aristides et al. \[22\], OC-192 |
//! | [`RadsBuffer`] | per-queue head/tail SRAM cell caches, batched DRAM transfers, ECQF refill | RADS \[17\], 40 Gbps |
//! | [`CfdsBuffer`] | conflict-free DRAM scheduling: a lookahead reorder window issuing one request every `b` cycles to a free bank | CFDS \[12\], 160 Gbps |
//!
//! The VPNM row is [`crate::packet_buffer::VpnmPacketBuffer`].

pub mod cfds;
pub mod nikologiannis;
pub mod rads;

pub use cfds::CfdsBuffer;
pub use nikologiannis::NikologiannisBuffer;
pub use rads::RadsBuffer;

use crate::packet_buffer::{BufferError, BufferEvent, DequeuedCell, VpnmPacketBuffer};

/// The shared packet-buffer interface driven by the Table 3 harness: one
/// event per cell slot, FIFO per queue, whatever latency and backpressure
/// behaviour the architecture implies.
pub trait PacketBufferModel {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Advances one cell slot.
    ///
    /// # Errors
    ///
    /// Scheme-specific rejection (queue empty/full, backpressure, memory
    /// stall). The clock always advances.
    fn tick(&mut self, event: Option<BufferEvent>) -> Result<Option<DequeuedCell>, BufferError>;

    /// Total SRAM the scheme requires, in bytes (cell caches + pointers +
    /// scheduling state).
    fn sram_bytes(&self) -> u64;

    /// Worst-case cell latency in cycles (enqueue-visible to
    /// dequeue-delivered), the paper's "total delay" column.
    fn worst_case_delay_cycles(&self) -> u64;
}

impl PacketBufferModel for VpnmPacketBuffer {
    fn name(&self) -> &'static str {
        "vpnm"
    }

    fn tick(&mut self, event: Option<BufferEvent>) -> Result<Option<DequeuedCell>, BufferError> {
        VpnmPacketBuffer::tick(self, event)
    }

    fn sram_bytes(&self) -> u64 {
        self.pointer_sram_bytes()
    }

    fn worst_case_delay_cycles(&self) -> u64 {
        self.delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_core::VpnmConfig;

    #[test]
    fn vpnm_buffer_implements_model() {
        let mut model: Box<dyn PacketBufferModel> =
            Box::new(VpnmPacketBuffer::new(VpnmConfig::test_roomy(), 4, 16, 1).unwrap());
        assert_eq!(model.name(), "vpnm");
        assert!(model.sram_bytes() > 0);
        assert!(model.worst_case_delay_cycles() > 0);
        model.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![1] })).unwrap();
        model.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap();
    }
}
