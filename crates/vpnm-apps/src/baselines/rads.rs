//! The RADS model — Iyer, Kompella & McKeown, *"Designing packet buffers
//! for router linecards"* (paper reference \[17\]).
//!
//! RADS hides DRAM latency behind per-queue SRAM *cell caches*: arriving
//! cells collect in a tail cache and are flushed to DRAM in `b`-cell
//! batches; departures are served from a head cache that a background
//! scheduler refills in `b`-cell batches, choosing the queue whose head
//! cache will run dry soonest (**ECQF** — earliest critical queue first).
//! The scheme meets 40 Gbps with small delay, but its SRAM grows linearly
//! with the number of queues (`2b` cells per queue), which caps the
//! supported interface count — the axis where VPNM wins in Table 3.
//! Following the paper's critique, the model grants RADS a conflict-free
//! DRAM (Iyer et al. "do not consider the effect of bank conflicts") with
//! a single transfer channel moving one batch per `L` cycles.

use crate::packet_buffer::{BufferError, BufferEvent, DequeuedCell};
use std::collections::VecDeque;

#[derive(Debug, Clone, Default)]
struct RadsQueue {
    head_cache: VecDeque<Vec<u8>>,
    dram: VecDeque<Vec<u8>>,
    tail_cache: VecDeque<Vec<u8>>,
}

impl RadsQueue {
    fn len(&self) -> usize {
        self.head_cache.len() + self.dram.len() + self.tail_cache.len()
    }
}

/// A RADS-style packet buffer with head/tail SRAM caches and ECQF refill.
#[derive(Debug)]
pub struct RadsBuffer {
    queues: Vec<RadsQueue>,
    /// Batch size `b` in cells.
    batch: usize,
    /// Cells per queue bound (DRAM share).
    cells_per_queue: u64,
    /// DRAM batch transfer time in cycles.
    batch_cycles: u64,
    cell_bytes: usize,
    now: u64,
    channel_busy_until: u64,
    refills: u64,
    flushes: u64,
}

impl RadsBuffer {
    /// Creates a RADS buffer.
    ///
    /// # Errors
    ///
    /// Rejects degenerate geometry.
    pub fn new(
        num_queues: u32,
        cells_per_queue: u64,
        batch: usize,
        batch_cycles: u64,
        cell_bytes: usize,
    ) -> Result<Self, String> {
        if num_queues == 0 || cells_per_queue == 0 || batch == 0 || batch_cycles == 0 {
            return Err("degenerate RADS configuration".into());
        }
        Ok(RadsBuffer {
            queues: vec![RadsQueue::default(); num_queues as usize],
            batch,
            cells_per_queue,
            batch_cycles,
            cell_bytes,
            now: 0,
            channel_busy_until: 0,
            refills: 0,
            flushes: 0,
        })
    }

    /// Batches moved DRAM→head so far.
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Batches moved tail→DRAM so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// ECQF: the queue whose head cache is most critical — smallest head
    /// occupancy among queues that still have backing cells to stage.
    fn most_critical_refill(&self) -> Option<usize> {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.dram.is_empty() || !q.tail_cache.is_empty())
            .filter(|(_, q)| q.head_cache.len() < 2 * self.batch)
            .min_by_key(|(_, q)| q.head_cache.len())
            .map(|(i, _)| i)
    }

    /// The queue with the fullest tail cache at or beyond a batch.
    fn most_urgent_flush(&self) -> Option<usize> {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| q.tail_cache.len() >= self.batch)
            .max_by_key(|(_, q)| q.tail_cache.len())
            .map(|(i, _)| i)
    }

    fn run_channel(&mut self) {
        if self.now < self.channel_busy_until {
            return;
        }
        // Refills take priority over flushes: an under-run drops packets,
        // an over-full tail cache only backpressures.
        if let Some(qi) = self.most_critical_refill() {
            let b = self.batch;
            let q = &mut self.queues[qi];
            for _ in 0..b {
                if let Some(cell) = q.dram.pop_front() {
                    q.head_cache.push_back(cell);
                } else if let Some(cell) = q.tail_cache.pop_front() {
                    // bypass: queue short enough that cells never reached
                    // DRAM
                    q.head_cache.push_back(cell);
                } else {
                    break;
                }
            }
            self.refills += 1;
            self.channel_busy_until = self.now + self.batch_cycles;
        } else if let Some(qi) = self.most_urgent_flush() {
            let b = self.batch;
            let q = &mut self.queues[qi];
            for _ in 0..b {
                match q.tail_cache.pop_front() {
                    Some(cell) => q.dram.push_back(cell),
                    None => break,
                }
            }
            self.flushes += 1;
            self.channel_busy_until = self.now + self.batch_cycles;
        }
    }

    /// Advances one cell slot.
    ///
    /// # Errors
    ///
    /// [`BufferError::Backpressure`] when a tail cache cannot take more
    /// cells, [`BufferError::NotReady`] when the head cache is dry but the
    /// queue still holds cells in DRAM, plus the queue-state rejections.
    pub fn tick(
        &mut self,
        event: Option<BufferEvent>,
    ) -> Result<Option<DequeuedCell>, BufferError> {
        self.now += 1;
        self.run_channel();
        match event {
            None => Ok(None),
            Some(BufferEvent::Enqueue { queue, cell }) => {
                let batch = self.batch;
                let cells_per_queue = self.cells_per_queue;
                let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                if q.len() as u64 >= cells_per_queue {
                    return Err(BufferError::QueueFull);
                }
                if q.tail_cache.len() >= 2 * batch {
                    return Err(BufferError::Backpressure);
                }
                q.tail_cache.push_back(cell);
                Ok(None)
            }
            Some(BufferEvent::Dequeue { queue }) => {
                let q = self.queues.get_mut(queue as usize).ok_or(BufferError::BadQueue)?;
                if q.len() == 0 {
                    return Err(BufferError::QueueEmpty);
                }
                match q.head_cache.pop_front() {
                    Some(data) => Ok(Some(DequeuedCell { queue, data: data.into() })),
                    None => Err(BufferError::NotReady),
                }
            }
        }
    }

    /// SRAM: `2b` cache cells per queue plus two pointers, the linear-in-
    /// queues cost that limits RADS to ~hundreds of interfaces.
    pub fn sram_bytes(&self) -> u64 {
        let ptr_bits = u64::from(64 - (self.cells_per_queue.max(2) - 1).leading_zeros()) + 1;
        let pointers = (self.queues.len() as u64 * 2 * ptr_bits).div_ceil(8);
        self.queues.len() as u64 * 2 * self.batch as u64 * self.cell_bytes as u64 + pointers
    }

    /// Worst-case delay: a cell served from SRAM caches leaves within a
    /// couple of batch times.
    pub fn worst_case_delay_cycles(&self) -> u64 {
        2 * self.batch_cycles + self.batch as u64
    }
}

impl crate::baselines::PacketBufferModel for RadsBuffer {
    fn name(&self) -> &'static str {
        "rads"
    }

    fn tick(&mut self, event: Option<BufferEvent>) -> Result<Option<DequeuedCell>, BufferError> {
        RadsBuffer::tick(self, event)
    }

    fn sram_bytes(&self) -> u64 {
        RadsBuffer::sram_bytes(self)
    }

    fn worst_case_delay_cycles(&self) -> u64 {
        RadsBuffer::worst_case_delay_cycles(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpnm_workloads::packets::payload_bytes;

    fn small() -> RadsBuffer {
        RadsBuffer::new(4, 64, 4, 8, 8).unwrap()
    }

    fn enqueue_blocking(buf: &mut RadsBuffer, queue: u32, cell: Vec<u8>) {
        loop {
            match buf.tick(Some(BufferEvent::Enqueue { queue, cell: cell.clone() })) {
                Ok(_) => return,
                Err(BufferError::Backpressure) => continue,
                Err(e) => panic!("{e}"),
            }
        }
    }

    fn dequeue_blocking(buf: &mut RadsBuffer, queue: u32) -> DequeuedCell {
        for _ in 0..10_000 {
            match buf.tick(Some(BufferEvent::Dequeue { queue })) {
                Ok(Some(c)) => return c,
                Ok(None) => panic!("dequeue accepted without a cell"),
                Err(BufferError::NotReady) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        panic!("dequeue starved");
    }

    #[test]
    fn fifo_roundtrip_through_caches_and_dram() {
        let mut buf = small();
        for seq in 0..24u64 {
            enqueue_blocking(&mut buf, 0, payload_bytes(0, seq, 8));
        }
        assert!(buf.flushes() > 0, "24 cells must overflow the 8-cell tail cache into DRAM");
        for seq in 0..24u64 {
            let c = dequeue_blocking(&mut buf, 0);
            assert_eq!(c.data, payload_bytes(0, seq, 8), "cell {seq}");
        }
    }

    #[test]
    fn multi_queue_isolation() {
        let mut buf = small();
        for seq in 0..6u64 {
            for q in 0..4u32 {
                enqueue_blocking(&mut buf, q, payload_bytes(q, seq, 8));
            }
        }
        for seq in 0..6u64 {
            for q in 0..4u32 {
                let c = dequeue_blocking(&mut buf, q);
                assert_eq!(c.queue, q);
                assert_eq!(c.data, payload_bytes(q, seq, 8));
            }
        }
    }

    #[test]
    fn tail_cache_backpressures() {
        // a channel too slow to flush: batch_cycles huge
        let mut buf = RadsBuffer::new(1, 1000, 4, 100_000, 8).unwrap();
        let mut pressured = false;
        for seq in 0..20u64 {
            if let Err(BufferError::Backpressure) =
                buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: payload_bytes(0, seq, 8) }))
            {
                pressured = true;
            }
        }
        assert!(pressured);
    }

    #[test]
    fn empty_queue_vs_not_ready() {
        let mut buf = RadsBuffer::new(1, 64, 4, 1_000, 8).unwrap();
        assert_eq!(
            buf.tick(Some(BufferEvent::Dequeue { queue: 0 })).unwrap_err(),
            BufferError::QueueEmpty
        );
        // enqueue one cell; before any refill the head cache is dry
        buf.tick(Some(BufferEvent::Enqueue { queue: 0, cell: vec![1] })).unwrap();
        match buf.tick(Some(BufferEvent::Dequeue { queue: 0 })) {
            Err(BufferError::NotReady) | Ok(Some(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sram_scales_with_queues() {
        let few = RadsBuffer::new(10, 64, 4, 8, 64).unwrap().sram_bytes();
        let many = RadsBuffer::new(1000, 64, 4, 8, 64).unwrap().sram_bytes();
        assert!(many > 90 * few, "SRAM must grow linearly with queues");
    }
}
