//! Data-plane applications on top of VPNM (paper Section 5.4).
//!
//! Two applications demonstrate the controller's performance and
//! generality, plus executable models of the special-purpose packet-buffer
//! architectures the paper compares against in Table 3:
//!
//! * [`packet_buffer`] — packet buffering at line rate: per-queue head and
//!   tail *pointers* live in a small SRAM while every cell goes to DRAM
//!   through the VPNM controller (Section 5.4.1). Unlike the baselines, no
//!   per-queue SRAM cell caches are needed, which is what lets one design
//!   support 4096 interfaces in 32 KB of pointer SRAM.
//! * [`baselines`] — simplified but executable models of the prior
//!   schemes: Nikologiannis/Katevenis out-of-order per-flow queueing
//!   (ICC'01), RADS head/tail SRAM caching with ECQF (Iyer et al.), and
//!   CFDS conflict-free DRAM scheduling with a reorder buffer (Garcia et
//!   al., MICRO'03).
//! * [`reassembly`] — TCP packet reassembly for content inspection
//!   (Section 5.4.2): connection records and the hole-buffer data
//!   structure of Dharmapurikar & Paxson, issuing five DRAM accesses per
//!   64-byte chunk through the virtual pipeline.
//! * [`lpm`] — longest-prefix-match route lookup (the paper's named
//!   future-work direction): a stride-8 multibit trie whose dependent
//!   walks pipeline perfectly through the deterministic-latency memory,
//!   with no bank-aware layout of the trie.
//! * [`inspect`] — signature-based content inspection (the "packet
//!   inspection" future-work direction): an on-chip Bloom prefilter in
//!   front of an exact-match verification table in VPNM memory.
//! * [`engine`] — the shared `--engine/--channels/--select/--workers`
//!   flag triple that builds any engine/fabric topology; used by the
//!   serving bins here and re-exported by `vpnm-bench` for the
//!   measurement bins.
//! * [`serve`] — the live serving front-end: concurrent producers,
//!   bounded ingress queues with backpressure, wall-clock pacing, and a
//!   million-flow table over the fabric-backed packet buffer.

#![warn(missing_docs)]

pub mod baselines;
pub mod engine;
pub mod inspect;
pub mod lpm;
pub mod packet_buffer;
pub mod reassembly;
pub mod serve;

pub use engine::{engine_from_args, EngineKind, EngineOpts};
pub use inspect::{InspectionEngine, SignatureMatch};
pub use lpm::{LpmEngine, RoutePrefix, RouteTable};
pub use packet_buffer::{BufferEvent, PacketBufferStats, VpnmPacketBuffer};
pub use reassembly::{HoleBuffer, ReassemblyEngine, ReassemblyStats};
pub use serve::{run_serve, ArrivalSource, FlowMix, ServeConfig, ServeReport};
