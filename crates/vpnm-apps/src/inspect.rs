//! Signature-based content inspection on VPNM.
//!
//! The paper motivates packet reassembly as "a strong front end to
//! effective content inspection" and names packet inspection among the
//! data-plane algorithms to map onto the virtual pipeline next. This
//! module implements the standard IDS matching architecture
//! (Dharmapurikar-style):
//!
//! 1. an **on-chip Bloom prefilter** over every sliding window of the
//!    (reassembled, in-order) byte stream — SRAM-resident, no memory
//!    traffic, some false positives;
//! 2. an **exact-match verification table in VPNM memory** — suspects
//!    flagged by the prefilter are checked against the true signature set
//!    stored in DRAM through the virtual pipeline, so verification
//!    bandwidth is deterministic no matter how adversarially the suspects
//!    are distributed (an attacker *can* craft traffic that is all
//!    Bloom-positive; with VPNM that degrades throughput predictably
//!    instead of collapsing a bank).
//!
//! Signatures are fixed-length byte strings ([`SIGNATURE_BYTES`]); the
//! verification table is an open-addressed hash table of signature/rule
//! pairs packed into memory cells.

use std::collections::VecDeque;
use vpnm_core::{LineAddr, PipelinedMemory, Request};
use vpnm_sim::rng::splitmix64;

/// Length of a signature in bytes (one sliding window).
pub const SIGNATURE_BYTES: usize = 8;
/// Bytes per verification-table entry: the 8-byte signature + 4-byte rule
/// id + 4 bytes of padding/valid marker.
pub const TABLE_ENTRY_BYTES: usize = 16;

const EMPTY_RULE: u32 = u32::MAX;

/// A confirmed signature hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureMatch {
    /// Byte offset of the window within the scanned stream.
    pub offset: u64,
    /// Rule id of the matching signature.
    pub rule: u32,
}

/// The on-chip Bloom prefilter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits (rounded up to a multiple of
    /// 64) and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    pub fn new(num_bits: u64, hashes: u32) -> Self {
        assert!(num_bits > 0 && hashes > 0, "degenerate Bloom filter");
        let words = num_bits.div_ceil(64);
        BloomFilter { bits: vec![0; words as usize], num_bits: words * 64, hashes }
    }

    fn indices(&self, window: u64) -> impl Iterator<Item = u64> + '_ {
        // double hashing: h_i = h1 + i·h2
        let h1 = splitmix64(window ^ 0xB100_F11E);
        let h2 = splitmix64(window ^ 0x5EED_5EED) | 1;
        (0..u64::from(self.hashes))
            .map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits)
    }

    /// Inserts a window (as its packed 8-byte little-endian value).
    pub fn insert(&mut self, window: u64) {
        for idx in self.indices(window).collect::<Vec<_>>() {
            self.bits[(idx / 64) as usize] |= 1 << (idx % 64);
        }
    }

    /// True if the window *may* be in the set (false positives possible,
    /// false negatives impossible).
    pub fn contains(&self, window: u64) -> bool {
        self.indices(window).all(|idx| self.bits[(idx / 64) as usize] >> (idx % 64) & 1 == 1)
    }
}

/// Packs a signature window into its canonical `u64`.
fn pack(window: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(window);
    u64::from_le_bytes(b)
}

/// Content inspection engine: Bloom prefilter + VPNM-resident exact table.
#[derive(Debug)]
pub struct InspectionEngine<M> {
    mem: M,
    bloom: BloomFilter,
    /// Number of buckets (cells) in the verification table.
    buckets: u64,
    entries_per_cell: usize,
    /// Suspects whose bucket read is in flight, FIFO (constant latency
    /// means responses return in exactly this order).
    in_flight: VecDeque<Suspect>,
    /// Responses banked during ticks, pending interpretation.
    ready: VecDeque<vpnm_core::Response>,
    /// Suspects (fresh or probe-chained) awaiting issue.
    to_issue: VecDeque<Suspect>,
    matches: Vec<SignatureMatch>,
    /// Prefilter positives (memory lookups issued).
    suspects: u64,
    /// Windows scanned.
    windows: u64,
    stall_retries: u64,
}

#[derive(Debug, Clone, Copy)]
struct Suspect {
    offset: u64,
    window: u64,
    /// Linear-probe attempt number (for collision chains).
    probe: u32,
}

impl<M: PipelinedMemory> InspectionEngine<M> {
    /// Builds the engine: signatures go into both the Bloom prefilter and
    /// the exact table, which is written into `mem` through ordinary
    /// write requests. `cell_bytes` is the memory's cell size.
    ///
    /// # Panics
    ///
    /// Panics if a signature is not exactly [`SIGNATURE_BYTES`] long, if
    /// the table overflows (load factor is kept under 50%), or if cells
    /// cannot hold at least one entry.
    pub fn new(mut mem: M, signatures: &[(Vec<u8>, u32)], cell_bytes: usize) -> Self {
        assert!(cell_bytes >= TABLE_ENTRY_BYTES, "cells must hold at least one entry");
        let entries_per_cell = cell_bytes / TABLE_ENTRY_BYTES;
        let want_entries = (signatures.len().max(1) * 2).next_power_of_two();
        let buckets = (want_entries.div_ceil(entries_per_cell)).next_power_of_two() as u64;
        let mut bloom = BloomFilter::new((signatures.len() as u64 * 16).max(1024), 4);

        // software image of the table
        let mut table: Vec<Vec<(u64, u32)>> = vec![Vec::new(); buckets as usize];
        for (sig, rule) in signatures {
            assert_eq!(sig.len(), SIGNATURE_BYTES, "signatures are {SIGNATURE_BYTES} bytes");
            assert_ne!(*rule, EMPTY_RULE, "rule id {EMPTY_RULE:#x} is reserved");
            let w = pack(sig);
            bloom.insert(w);
            // linear probing over buckets
            let mut b = splitmix64(w) % buckets;
            let mut placed = false;
            for _ in 0..buckets {
                if table[b as usize].len() < entries_per_cell {
                    table[b as usize].push((w, *rule));
                    placed = true;
                    break;
                }
                b = (b + 1) % buckets;
            }
            assert!(placed, "verification table overflow");
        }

        // serialize into memory cells
        for (b, bucket) in table.iter().enumerate() {
            let mut data = Vec::with_capacity(cell_bytes);
            for e in 0..entries_per_cell {
                let (w, rule) = bucket.get(e).copied().unwrap_or((0, EMPTY_RULE));
                data.extend_from_slice(&w.to_le_bytes());
                data.extend_from_slice(&rule.to_le_bytes());
                data.extend_from_slice(&[0u8; TABLE_ENTRY_BYTES - 12]);
            }
            loop {
                let out = mem.tick(Some(Request::write(LineAddr(b as u64), data.clone())));
                if out.stall.is_none() {
                    break;
                }
            }
        }

        InspectionEngine {
            mem,
            bloom,
            buckets,
            entries_per_cell,
            in_flight: VecDeque::new(),
            ready: VecDeque::new(),
            to_issue: VecDeque::new(),
            matches: Vec::new(),
            suspects: 0,
            windows: 0,
            stall_retries: 0,
        }
    }

    /// Windows scanned so far.
    pub fn windows_scanned(&self) -> u64 {
        self.windows
    }

    /// Prefilter positives (→ memory lookups) so far.
    pub fn suspects(&self) -> u64 {
        self.suspects
    }

    /// Interface cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.mem.now().as_u64()
    }

    /// Cycles retried on controller stalls.
    pub fn stall_retries(&self) -> u64 {
        self.stall_retries
    }

    fn bucket_of(&self, window: u64, probe: u32) -> LineAddr {
        LineAddr((splitmix64(window) + u64::from(probe)) % self.buckets)
    }

    /// One memory cycle; any due response is banked for interpretation.
    fn tick_mem(&mut self, req: Option<Request>) -> bool {
        let out = self.mem.tick(req);
        if let Some(r) = out.response {
            self.ready.push_back(r);
        }
        out.stall.is_some()
    }

    /// Interprets banked responses (pure bookkeeping — no ticking, so the
    /// in-flight FIFO order can never invert).
    fn resolve_ready(&mut self) {
        'responses: while let Some(r) = self.ready.pop_front() {
            let s = self.in_flight.pop_front().expect("response implies in-flight suspect");
            let mut bucket_full = true;
            for e in 0..self.entries_per_cell {
                let off = e * TABLE_ENTRY_BYTES;
                let w = u64::from_le_bytes(r.data[off..off + 8].try_into().expect("entry"));
                let rule = u32::from_le_bytes(r.data[off + 8..off + 12].try_into().expect("entry"));
                if rule == EMPTY_RULE {
                    bucket_full = false;
                    continue;
                }
                if w == s.window {
                    self.matches.push(SignatureMatch { offset: s.offset, rule });
                    continue 'responses;
                }
            }
            // full bucket without a match: the signature may have
            // overflowed into the next bucket during linear probing —
            // follow the chain; otherwise it was a Bloom false positive
            if bucket_full && s.probe + 1 < self.buckets as u32 {
                self.to_issue.push_back(Suspect { probe: s.probe + 1, ..s });
            }
        }
    }

    /// Issues queued bucket reads, retrying stalled cycles.
    fn pump(&mut self) {
        while let Some(&s) = self.to_issue.front() {
            let addr = self.bucket_of(s.window, s.probe);
            if self.tick_mem(Some(Request::read(addr))) {
                self.stall_retries += 1;
            } else {
                self.in_flight.push_back(s);
                self.to_issue.pop_front();
            }
            self.resolve_ready();
        }
    }

    /// Scans a byte stream: every [`SIGNATURE_BYTES`]-wide sliding window
    /// is prefiltered on chip; positives are verified through the memory.
    /// Returns the confirmed matches for this stream, in offset order.
    pub fn scan(&mut self, stream: &[u8]) -> Vec<SignatureMatch> {
        let start = self.matches.len();
        if stream.len() >= SIGNATURE_BYTES {
            for offset in 0..=(stream.len() - SIGNATURE_BYTES) {
                self.windows += 1;
                let window = pack(&stream[offset..offset + SIGNATURE_BYTES]);
                if self.bloom.contains(window) {
                    self.suspects += 1;
                    self.to_issue.push_back(Suspect { offset: offset as u64, window, probe: 0 });
                    self.pump();
                } else {
                    // clean windows cost zero memory accesses; the stream
                    // clock still advances one cycle per window
                    self.tick_mem(None);
                    self.resolve_ready();
                    self.pump();
                }
            }
        }
        // drain verification reads (chained probes may extend the tail)
        let budget = (self.mem.outstanding() as u64 + 2) * self.mem.delay() * 4;
        for _ in 0..budget {
            if self.in_flight.is_empty() && self.to_issue.is_empty() {
                break;
            }
            self.tick_mem(None);
            self.resolve_ready();
            self.pump();
        }
        let mut out = self.matches[start..].to_vec();
        out.sort_by_key(|m| (m.offset, m.rule));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vpnm_core::{VpnmConfig, VpnmController};

    fn sig(s: &[u8; 8]) -> Vec<u8> {
        s.to_vec()
    }

    fn engine(signatures: &[(Vec<u8>, u32)]) -> InspectionEngine<VpnmController> {
        let cfg = VpnmConfig { cell_bytes: 16, addr_bits: 16, ..VpnmConfig::test_roomy() };
        let mem = VpnmController::new(cfg, 77).unwrap();
        InspectionEngine::new(mem, signatures, 16)
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = BloomFilter::new(1024, 4);
        for w in 0..100u64 {
            b.insert(splitmix64(w));
        }
        for w in 0..100u64 {
            assert!(b.contains(splitmix64(w)));
        }
    }

    #[test]
    fn bloom_rejects_most_non_members() {
        let mut b = BloomFilter::new(4096, 4);
        for w in 0..50u64 {
            b.insert(splitmix64(w));
        }
        let fp = (1000..6000u64).filter(|&w| b.contains(splitmix64(w))).count();
        assert!(fp < 250, "false positives {fp}/5000");
    }

    #[test]
    fn finds_planted_signatures_at_exact_offsets() {
        let sigs = vec![(sig(b"EVILSIG1"), 1), (sig(b"EVILSIG2"), 2)];
        let mut eng = engine(&sigs);
        let mut stream = vec![0x20u8; 500];
        stream[100..108].copy_from_slice(b"EVILSIG1");
        stream[300..308].copy_from_slice(b"EVILSIG2");
        stream[450..458].copy_from_slice(b"EVILSIG1");
        let matches = eng.scan(&stream);
        assert_eq!(
            matches,
            vec![
                SignatureMatch { offset: 100, rule: 1 },
                SignatureMatch { offset: 300, rule: 2 },
                SignatureMatch { offset: 450, rule: 1 },
            ]
        );
    }

    #[test]
    fn clean_traffic_produces_no_matches_and_few_lookups() {
        let sigs = vec![(sig(b"EVILSIG1"), 1)];
        let mut eng = engine(&sigs);
        let mut rng = StdRng::seed_from_u64(5);
        let stream: Vec<u8> = (0..4000).map(|_| rng.gen()).collect();
        let matches = eng.scan(&stream);
        assert!(matches.is_empty());
        // the Bloom prefilter keeps the memory out of the fast path
        assert!(
            eng.suspects() < eng.windows_scanned() / 20,
            "suspects {} of {} windows",
            eng.suspects(),
            eng.windows_scanned()
        );
    }

    #[test]
    fn adversarial_all_positive_traffic_still_verifies_exactly() {
        // An attacker repeating a real signature everywhere forces a
        // memory lookup per window — merging absorbs the redundancy and
        // every window still verifies.
        let sigs = vec![(sig(b"EVILSIG1"), 1)];
        let mut eng = engine(&sigs);
        let mut stream = Vec::new();
        for _ in 0..50 {
            stream.extend_from_slice(b"EVILSIG1");
        }
        let matches = eng.scan(&stream);
        let exact = matches.iter().filter(|m| m.offset % 8 == 0).count();
        assert_eq!(exact, 50, "all aligned repetitions match");
        // misaligned windows (e.g. "VILSIG1E") must NOT match
        assert!(matches.iter().all(|m| m.offset % 8 == 0));
        let merged = eng.mem.metrics().reads_merged;
        assert!(merged > 0, "redundant suspect lookups should merge");
    }

    #[test]
    fn many_signatures_collision_chains_resolve() {
        // enough signatures to force multi-entry buckets and probe chains
        let mut rng = StdRng::seed_from_u64(9);
        let mut sigs = Vec::new();
        for i in 0..200u32 {
            let mut s = [0u8; 8];
            rng.fill(&mut s);
            sigs.push((s.to_vec(), i + 1));
        }
        let mut eng = engine(&sigs);
        // plant five of them
        let mut stream = vec![0xAAu8; 600];
        for (slot, idx) in [(50usize, 3usize), (150, 77), (250, 111), (350, 160), (450, 199)] {
            stream[slot..slot + 8].copy_from_slice(&sigs[idx].0);
        }
        let matches = eng.scan(&stream);
        let rules: Vec<u32> = matches.iter().map(|m| m.rule).collect();
        for idx in [3usize, 77, 111, 160, 199] {
            assert!(rules.contains(&sigs[idx].1), "rule {} missing", sigs[idx].1);
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_rule_id_rejected() {
        let _ = engine(&[(sig(b"AAAAAAAA"), u32::MAX)]);
    }
}
