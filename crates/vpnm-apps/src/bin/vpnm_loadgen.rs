//! `vpnm-loadgen`: generate arrival traces for `vpnm-serve --trace`.
//!
//! Synthesizes an offered-traffic trace — one optional arrival per
//! interface cycle — from the `vpnm-workloads` pattern families and
//! writes it in the binary `VPNMTRC1` format `vpnm-serve` replays.
//! Splitting generation from serving makes a traffic mix a reproducible
//! artifact: generate once, replay against any engine topology, worker
//! count, or pacing rate.
//!
//! ```text
//! vpnm-loadgen --out PATH [flags]
//!
//!   --out PATH      trace file to write (required)
//!   --cycles N      offered interface cycles (2000000)
//!   --load F        offered packets/cycle (0.45)
//!   --mix uniform|heavy-tail|stride|multi-tenant
//!                   flow-ID distribution (heavy-tail)
//!                   (`stride` is the bank-conflict adversary of paper
//!                   Section 3.4, mapped onto flow IDs; `multi-tenant`
//!                   blends N-1 heavy-tailed tenants with one stride
//!                   adversary, writing a tenant-tagged VPNMTRC2 trace)
//!   --skew F        heavy-tail exponent (1.0)
//!   --flows N       flow-ID space (2097152)
//!   --tenants N     multi-tenant: total tenant count (4)
//!   --adversary-pct P  multi-tenant: adversary's packet share (25)
//!   --banks N       multi-tenant: bank count the adversary strides (32)
//!   --burst ON:OFF  on/off burst shaping in cycles (none; e.g. 512:1536
//!                   offers `load` during ON windows and nothing in OFF,
//!                   quartering the average rate but keeping the peak)
//!   --seed N        root seed (42)
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpnm_apps::serve::{write_trace, Arrival};
use vpnm_workloads::burst::BurstShaper;
use vpnm_workloads::{
    HeavyTailFlows, MultiTenantMix, StrideAdversary, Tagged, TenantFlowGen, UniformAddresses,
};

fn usage_exit(error: &str) -> ! {
    eprintln!(
        "error: {error}\n\
         usage: vpnm-loadgen --out PATH [--cycles N] [--load F]\n\
         [--mix uniform|heavy-tail|stride|multi-tenant] [--skew F] [--flows N]\n\
         [--tenants N] [--adversary-pct P] [--banks N]\n\
         [--burst ON:OFF] [--seed N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut out: Option<String> = None;
    let mut cycles: u64 = 2_000_000;
    let mut load = 0.45f64;
    let mut mix = "heavy-tail".to_string();
    let mut skew = 1.0f64;
    let mut flows: u64 = 1 << 21;
    let mut burst: Option<(u64, u64)> = None;
    let mut seed: u64 = 42;
    let mut tenants: u16 = 4;
    let mut adversary_pct: u32 = 25;
    let mut banks: u64 = 32;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--cycles" => {
                cycles = value("--cycles")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--cycles needs a number"));
            }
            "--load" => {
                load =
                    value("--load").parse().unwrap_or_else(|_| usage_exit("--load needs a number"));
            }
            "--mix" => mix = value("--mix"),
            "--skew" => {
                skew =
                    value("--skew").parse().unwrap_or_else(|_| usage_exit("--skew needs a number"));
            }
            "--flows" => {
                flows = value("--flows")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--flows needs a number"));
            }
            "--burst" => {
                let v = value("--burst");
                let (on, off) =
                    v.split_once(':').unwrap_or_else(|| usage_exit("--burst needs ON:OFF cycles"));
                burst = Some((
                    on.parse().unwrap_or_else(|_| usage_exit("--burst ON must be a number")),
                    off.parse().unwrap_or_else(|_| usage_exit("--burst OFF must be a number")),
                ));
            }
            "--seed" => {
                seed =
                    value("--seed").parse().unwrap_or_else(|_| usage_exit("--seed needs a number"));
            }
            "--tenants" => {
                tenants = value("--tenants")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--tenants needs a number"));
            }
            "--adversary-pct" => {
                adversary_pct = value("--adversary-pct")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--adversary-pct needs a number"));
            }
            "--banks" => {
                banks = value("--banks")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--banks needs a number"));
            }
            other => usage_exit(&format!("unrecognized argument '{other}'")),
        }
    }
    let out = out.unwrap_or_else(|| usage_exit("--out is required"));
    if !(0.0..=1.0).contains(&load) {
        usage_exit("--load must be in [0, 1]");
    }

    let mut gen: Box<dyn TenantFlowGen> = match mix.as_str() {
        "uniform" => Box::new(Tagged::new(0, UniformAddresses::new(flows, seed ^ 0x10AD))),
        "heavy-tail" => Box::new(Tagged::new(0, HeavyTailFlows::new(flows, skew, seed ^ 0x10AD))),
        // The paper's stride attacker walks bank-conflicting addresses;
        // as flow IDs it concentrates all traffic on B colliding flows.
        "stride" => Box::new(Tagged::new(0, StrideAdversary::new(32, flows))),
        "multi-tenant" => {
            Box::new(MultiTenantMix::new(tenants, flows, banks, adversary_pct, seed ^ 0x10AD))
        }
        other => usage_exit(&format!("unknown mix '{other}'")),
    };
    let mut shaper = burst.map(|(on, off)| BurstShaper::new(on, off));
    let mut rng = StdRng::seed_from_u64(seed);

    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut distinct = std::collections::HashSet::new();
    for cycle in 0..cycles {
        let on = shaper.as_mut().is_none_or(|s| s.tick());
        // Consume the coin flip every cycle so --burst changes *when*
        // packets land, not which flows they belong to.
        let fire = rng.gen::<f64>() < load;
        if on && fire {
            let (tenant, flow) = gen.next_tagged();
            distinct.insert(flow);
            arrivals.push(Arrival { cycle, flow, tenant });
        }
    }

    write_trace(&out, cycles, &arrivals).unwrap_or_else(|e| {
        eprintln!("vpnm-loadgen: {e}");
        std::process::exit(1)
    });
    let duty = burst.map_or(1.0, |(on, off)| on as f64 / (on + off) as f64);
    eprintln!(
        "vpnm-loadgen: wrote {} arrivals over {} cycles to {} \
         ({} distinct flows, mix {}, load {:.3}, duty {:.3})",
        arrivals.len(),
        cycles,
        out,
        distinct.len(),
        mix,
        load,
        duty
    );
}
