//! `vpnm-serve`: the live serving front-end over a VPNM engine/fabric.
//!
//! Drives the fabric-backed packet buffer from N concurrent producers
//! through bounded ingress queues, optionally paced against the wall
//! clock, and prints the engine's metrics snapshot — with the serving
//! section attached — as JSON on stdout (human summary on stderr).
//!
//! ```text
//! vpnm-serve [engine flags] [serving flags]
//!
//!   engine:  --engine fast|reference  --channels N
//!            --select low-bits|high-bits|universal-hash  --workers N
//!   qos:     --tenants N        tenants sharing the fabric (1)
//!            --regulator off|global|per-bank   ingress token buckets (off)
//!            --tenant-rate N/D  per-tenant budget, requests/cycle (1/4)
//!            --tenant-burst N   bucket depth in requests (16)
//!   serving: --producers N      concurrent producer threads (4)
//!            --cycles N         offered interface cycles (2000000)
//!            --epoch N          cycles per epoch batch (4096)
//!            --load F           offered packets/cycle (0.45; stable <= 0.5)
//!            --mix uniform|heavy-tail|multi-tenant
//!                               flow-ID distribution (heavy-tail;
//!                               multi-tenant blends --tenants - 1
//!                               heavy-tailed tenants with one stride
//!                               adversary)
//!            --adversary-pct P  multi-tenant: adversary's share (25)
//!            --skew F           heavy-tail exponent (1.0)
//!            --flows N          flow-ID space (2097152)
//!            --queue-depth N    ingress bound in packets (512)
//!            --cells-per-queue N  per-flow ring depth (16)
//!            --cell-bytes N     payload bytes per cell (64)
//!            --rate N           pace: interface cycles per wall second
//!                               (0 = unpaced, as fast as possible)
//!            --trace PATH       replay a vpnm-loadgen trace instead of
//!                               synthesizing (overrides --load/--mix/...)
//!            --seed N           root seed (42)
//!            --no-verify        skip payload verification
//! ```
//!
//! For a fixed seed and config the JSON is byte-identical at any
//! `--workers` count and `--rate`, once the measurement-domain fields
//! (`wall_nanos`, `mpps`, `producer_parks`, and `paced_rate`) are set
//! aside — see `ServingMetrics::canonical`.

use std::sync::Arc;

use vpnm_apps::serve::{read_trace, run_serve, Arrival, ArrivalSource, FlowMix, ServeConfig};
use vpnm_apps::EngineOpts;
use vpnm_core::VpnmConfig;

fn usage_exit(error: &str) -> ! {
    eprintln!(
        "error: {error}\n\
         usage: vpnm-serve [engine flags] [qos flags] [--producers N] [--cycles N]\n\
         [--epoch N] [--load F] [--mix uniform|heavy-tail|multi-tenant]\n\
         [--adversary-pct P] [--skew F] [--flows N]\n\
         [--queue-depth N] [--cells-per-queue N] [--cell-bytes N] [--rate N]\n\
         [--trace PATH] [--seed N] [--no-verify]"
    );
    std::process::exit(2)
}

fn main() {
    let (engine, rest) = match EngineOpts::parse(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => usage_exit(&e),
    };

    let mut cfg = ServeConfig {
        engine,
        cycles: 2_000_000,
        source: ArrivalSource::Synthetic {
            load: 0.45,
            mix: FlowMix::HeavyTail { space: 1 << 21, skew: 1.0 },
        },
        ..ServeConfig::demo()
    };
    let mut load = 0.45f64;
    let mut mix_name = "heavy-tail".to_string();
    let mut skew = 1.0f64;
    let mut flows: u64 = 1 << 21;
    let mut adversary_pct: u32 = 25;
    let mut trace_path: Option<String> = None;

    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        let parse_u64 = |flag: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| usage_exit(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--producers" => cfg.producers = parse_u64("--producers", value("--producers")) as u32,
            "--cycles" => cfg.cycles = parse_u64("--cycles", value("--cycles")),
            "--epoch" => cfg.epoch_len = parse_u64("--epoch", value("--epoch")),
            "--load" => {
                load =
                    value("--load").parse().unwrap_or_else(|_| usage_exit("--load needs a number"));
            }
            "--mix" => mix_name = value("--mix"),
            "--skew" => {
                skew =
                    value("--skew").parse().unwrap_or_else(|_| usage_exit("--skew needs a number"));
            }
            "--flows" => flows = parse_u64("--flows", value("--flows")),
            "--adversary-pct" => {
                adversary_pct = parse_u64("--adversary-pct", value("--adversary-pct")) as u32;
            }
            "--queue-depth" => {
                cfg.queue_depth = parse_u64("--queue-depth", value("--queue-depth")) as usize;
            }
            "--cells-per-queue" => {
                cfg.cells_per_queue = parse_u64("--cells-per-queue", value("--cells-per-queue"));
            }
            "--cell-bytes" => {
                cfg.cell_bytes = parse_u64("--cell-bytes", value("--cell-bytes")) as usize;
            }
            "--rate" => {
                cfg.pace = match parse_u64("--rate", value("--rate")) {
                    0 => None,
                    r => Some(r),
                };
            }
            "--trace" => trace_path = Some(value("--trace")),
            "--seed" => cfg.seed = parse_u64("--seed", value("--seed")),
            "--no-verify" => cfg.verify = false,
            other => usage_exit(&format!("unrecognized argument '{other}'")),
        }
    }

    cfg.source = match trace_path {
        Some(path) => {
            let (cycles, arrivals): (u64, Vec<Arrival>) =
                read_trace(&path).unwrap_or_else(|e| usage_exit(&e));
            eprintln!(
                "vpnm-serve: replaying {} arrivals over {cycles} cycles from {path}",
                arrivals.len()
            );
            cfg.cycles = cycles;
            ArrivalSource::Trace(Arc::new(arrivals))
        }
        None => {
            let mix = match mix_name.as_str() {
                "uniform" => FlowMix::Uniform { space: flows },
                "heavy-tail" => FlowMix::HeavyTail { space: flows, skew },
                "multi-tenant" => FlowMix::MultiTenant {
                    space: flows,
                    tenants: cfg.engine.tenants,
                    adversary_pct,
                    banks: u64::from(cfg.engine.channels)
                        * u64::from(VpnmConfig::paper_optimal().banks),
                },
                other => usage_exit(&format!("unknown mix '{other}'")),
            };
            ArrivalSource::Synthetic { load, mix }
        }
    };
    cfg.base = VpnmConfig::paper_optimal();

    eprintln!(
        "vpnm-serve: engine {} | {} producers, {} cycles (epoch {}), queue bound {}, {}",
        cfg.engine.describe(),
        cfg.producers,
        cfg.cycles,
        cfg.epoch_len,
        cfg.queue_depth,
        match cfg.pace {
            Some(r) => format!("paced at {r} cycles/s"),
            None => "unpaced".to_string(),
        }
    );

    let report = run_serve(&cfg).unwrap_or_else(|e| {
        eprintln!("vpnm-serve: {e}");
        std::process::exit(1)
    });
    let s = &report.serving;
    eprintln!(
        "vpnm-serve: offered {} | admitted {} | transmitted {} | {} distinct flows",
        s.offered, s.admitted, s.transmitted, s.flows
    );
    eprintln!(
        "vpnm-serve: drops: ingress {} flow-queue {} flow-table {} stall {} | parks {}",
        s.ingress_drops, s.flow_queue_drops, s.flow_table_drops, s.stall_drops, s.producer_parks
    );
    eprintln!(
        "vpnm-serve: latency p50 {} p99 {} p999 {} max {} cycles | {:.3} Mpps over {:.3} s",
        s.latency.quantile(0.50).unwrap_or(0),
        s.latency.quantile(0.99).unwrap_or(0),
        s.latency.quantile(0.999).unwrap_or(0),
        s.latency.max().unwrap_or(0),
        s.mpps,
        s.wall_nanos as f64 / 1e9
    );
    if report.residual > 0 {
        eprintln!("vpnm-serve: WARNING {} packets unaccounted after drain", report.residual);
    }
    if let Some(section) = report.snapshot.as_ref().and_then(|s| s.tenants.as_ref()) {
        for (i, t) in section.per_tenant.iter().enumerate() {
            eprintln!(
                "vpnm-serve: t{i}: issued {} deferred {} dropped {} transmitted {} p99 {}",
                t.issued,
                t.deferred,
                t.dropped,
                t.transmitted,
                t.latency.quantile(0.99).unwrap_or(0),
            );
        }
    }
    match report.snapshot {
        Some(snap) => print!("{}", snap.to_json()),
        None => eprintln!("vpnm-serve: engine exposes no metrics snapshot"),
    }
}
